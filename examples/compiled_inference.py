"""Compiled inference tour: trace once, replay graph-free.

The serving hot path never needs gradients, yet eager inference pays
the full autograd machinery per batch — Tensor wrappers, graph
bookkeeping, fresh allocations for every op.  Captured inference plans
remove all of it: the first batch of each shape bucket runs once under
a recorder, and what it records — kernel, argument slots, output slot
per op — replays on later batches as a flat loop over preallocated
buffers.  No Tensors, no graph, no allocation churn.  Five stops:

1. trace: the first ``predict_batch`` of a shape bucket records a plan
   (watch the cache counters move);
2. what a plan is: steps, folded constants, buffer bytes, inputs —
   ``describe()`` on the cached plan;
3. the guarantee: float64 replay is *bit-identical* to eager — same
   ranked tiles, same ranked POIs, every sample;
4. the payoff: float32 plans run the same steps end-to-end in float32
   with dtype-specialised kernels — compare samples/sec yourself;
5. the lifecycle: new weights bump ``weights_version``, the next batch
   re-traces; ``compile=False`` (CLI: ``repro serve --no-compile``)
   opts out entirely.

The same plans serve every tier: ``InferenceServer`` workers share one
plan cache (``GET /stats`` has a ``plans`` section) and cluster shard
processes each carry their own.

Runs in under a minute on a laptop CPU:

    python examples/compiled_inference.py
"""

import time

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.serve import Predictor
from repro.utils import spawn


def main() -> None:
    # An untrained (seeded, deterministic) model ranks just as well for
    # this tour — identity and speed are properties of the execution
    # strategy, not the weights.
    dataset = build_dataset("nyc", seed=7, scale=0.3, imagery_resolution=32)
    splits = split_samples(make_samples(dataset), seed=7)
    model = TSPNRA.from_dataset(
        dataset,
        TSPNRAConfig(dim=32, fusion_layers=1, hgat_layers=1, top_k=10),
        rng=spawn(7),
    )
    model.eval()
    batch = list(splits.test[:16])

    # 1. Trace once.  The first batch of this shape bucket runs eagerly
    #    under a recorder and verifies the captured plan against its own
    #    eager output before caching it; the second batch replays.
    compiled = Predictor(model, compile=True)  # compile=True is the default
    compiled.predict_batch(batch)
    cache = compiled.plan_cache
    print(f"after first batch:  traces={cache.traces} hits={cache.hits} misses={cache.misses}")
    compiled.predict_batch(batch)
    print(f"after second batch: traces={cache.traces} hits={cache.hits} misses={cache.misses}")

    # 2. What got captured: a flat step list (kernels + buffer slots),
    #    with everything that does not depend on the request — weights,
    #    normalised embedding tables, positional codes — folded into
    #    constants at trace time.
    plan_info = cache.stats()["plans"][0]
    print(
        "plan for bucket", plan_info["bucket"], "—",
        plan_info["steps"], "live steps,",
        plan_info["folded_steps"], "folded into constants,",
        f"{plan_info['buffer_bytes'] / 1024:.0f} KiB of reused buffers,",
        "feeds:", ", ".join(plan_info["inputs"][:4]), "...",
    )

    # 3. The guarantee: float64 replay is bit-identical to eager.
    eager = Predictor(model, compile=False)
    want = eager.predict_batch(batch)
    got = compiled.predict_batch(batch)
    assert all(
        g.ranked_tiles == w.ranked_tiles and g.ranked_pois == w.ranked_pois
        for g, w in zip(got, want)
    )
    print("float64 replay: ranked lists bit-identical to eager on", len(batch), "samples")

    # 4. The payoff: float32 end-to-end.  Constants are baked to
    #    float32 at trace time, feeds are cast on the way in, and the
    #    replay kernels use float32-safe fast paths (a clipped softmax,
    #    matmul row-sums).  Rankings may legitimately swap near-ties,
    #    so float32 plans are tolerance-verified instead of bit-checked
    #    — which is why float64 stays the correctness surface and
    #    float32 the speed surface.
    f32 = Predictor(model, compile=True, plan_dtype="float32")
    f32.predict_batch(batch)  # warm: trace + buffer allocation

    def passes(predictor, n=20):
        start = time.perf_counter()
        for _ in range(n):
            predictor.predict_batch(batch)
        return n * len(batch) / (time.perf_counter() - start)

    eager_sps = passes(eager)
    f32_sps = passes(f32)
    print(
        f"eager {eager_sps:7.0f} samples/s | compiled float32 {f32_sps:7.0f} "
        f"samples/s | {f32_sps / eager_sps:.2f}x"
    )
    heads_agree = sum(
        f.ranked_pois[0] == w.ranked_pois[0]
        for f, w in zip(f32.predict_batch(batch), want)
    )
    print(f"float32 top-1 agreement with eager: {heads_agree}/{len(batch)}")

    # 5. The lifecycle: touching the weights bumps ``weights_version``;
    #    cached plans are keyed by it, so the next batch re-traces
    #    against the new parameters instead of replaying stale ones.
    model.load_state_dict(model.state_dict())
    before = cache.traces
    compiled.predict_batch(batch)
    print(f"after reload: re-traced {cache.traces - before} plan(s) for the new weights")


if __name__ == "__main__":
    main()
