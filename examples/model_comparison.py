"""Compare TSPN-RA against three baselines on one dataset.

A miniature version of the paper's Table II pipeline with full control
over the knobs — useful as a template for benchmarking your own
variants.

    python examples/model_comparison.py
"""

from dataclasses import replace

from repro.experiments import (
    QUICK,
    format_results,
    prepare,
    run_one,
)


def main() -> None:
    profile = replace(QUICK, dataset_scale=0.4, eval_samples=120)
    print(f"profile: scale={profile.dataset_scale} dim={profile.dim} epochs={profile.epochs}")

    data = prepare("tky", profile)
    print(
        f"tky-like dataset: {data.num_pois} POIs, "
        f"{len(data.dataset.quadtree.leaves())} leaf tiles, "
        f"splits={data.splits.sizes()}"
    )

    results = {}
    for model_name in ("MC", "GRU", "LSTPM", "TSPN-RA"):
        print(f"training {model_name}...")
        metrics, _ = run_one(model_name, data, profile)
        results[model_name] = metrics

    print()
    print(format_results(results, highlight="TSPN-RA", title="TKY mini-comparison"))


if __name__ == "__main__":
    main()
