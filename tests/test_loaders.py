"""Tests for the real-data check-in loader."""

import numpy as np
import pytest

from repro.data.loaders import load_checkins, parse_checkin_lines

LINES = [
    "# user\tvenue\tcategory\tlat\tlon\ttimestamp",
    "alice\tv1\tcafe\t40.70\t-74.00\t2014-01-01T09:00:00",
    "alice\tv2\tpark\t40.71\t-74.01\t2014-01-01T11:00:00",
    "alice\tv1\tcafe\t40.70\t-74.00\t2014-01-02T09:30:00",
    "alice\tv3\tbar\t40.72\t-73.99\t2014-01-02T21:00:00",
    "alice\tv2\tpark\t40.71\t-74.01\t2014-01-03T10:00:00",
    "bob\tv1\tcafe\t40.70\t-74.00\t1388571200",
    "bob\tv3\tbar\t40.72\t-73.99\t1388574800",
    "bob\tv1\tcafe\t40.70\t-74.00\t1388578400",
    "bob\tv2\tpark\t40.71\t-74.01\t1388582000",
    "bob\tv3\tbar\t40.72\t-73.99\t1388585600",
]


class TestParsing:
    def test_skips_comments_and_blanks(self):
        records = parse_checkin_lines(["# header", "", LINES[1]])
        assert len(records) == 1
        assert records[0].user == "alice"

    def test_iso_and_unix_timestamps(self):
        records = parse_checkin_lines([LINES[1], LINES[6]])
        assert records[0].timestamp_hours > 0
        assert records[1].timestamp_hours == pytest.approx(1388571200 / 3600.0)

    def test_short_line_raises(self):
        with pytest.raises(ValueError):
            parse_checkin_lines(["a\tb\tc"])


class TestLoading:
    def test_reindexing(self):
        loaded = load_checkins(LINES, min_user_checkins=1)
        assert loaded.num_users == 2
        assert len(loaded.pois) == 3
        assert set(loaded.pois.category_names) == {"cafe", "park", "bar"}

    def test_coordinates_projected_to_km(self):
        loaded = load_checkins(LINES, min_user_checkins=1)
        # ~0.02 deg lat span -> ~2.2 km
        span = loaded.pois.xy[:, 1].max() - loaded.pois.xy[:, 1].min()
        assert 1.5 < span < 3.0
        for x, y in loaded.pois.xy:
            assert loaded.bbox.contains_closed(x, y)

    def test_min_user_filter(self):
        lines = LINES[1:6] + ["carol\tv1\tcafe\t40.70\t-74.00\t2014-01-01T12:00:00"]
        loaded = load_checkins(lines, min_user_checkins=5)
        assert loaded.num_users == 1  # carol dropped

    def test_all_filtered_raises(self):
        with pytest.raises(ValueError):
            load_checkins(LINES[1:3], min_user_checkins=50)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            load_checkins(["# only a comment"])

    def test_pipeline_compatibility(self):
        """Loaded data must drive the full quad-tree + samples pipeline."""
        from repro.data import split_into_trajectories
        from repro.spatial import RegionQuadTree

        loaded = load_checkins(LINES, min_user_checkins=1)
        tree = RegionQuadTree.build(loaded.bbox, loaded.pois.xy, max_depth=4, max_pois=2)
        assert len(tree.leaves()) >= 1
        for user in loaded.checkins.users():
            trajectories = split_into_trajectories(loaded.checkins.of_user(user))
            assert trajectories
