"""Tests for the async serving runtime: micro-batch scheduler, worker
pool, HTTP front-end, and the thread-safety substrate underneath it
(thread-local grad mode, locked caches and stats)."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad
from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.data.trajectory import PredictionSample, Visit
from repro.serve import (
    HttpFrontend,
    InferenceServer,
    MicroBatchScheduler,
    Predictor,
    PredictorBase,
    PredictorResult,
    QueueFullError,
    SchedulerClosedError,
    ServeStats,
    ServerConfig,
    interpolated_percentile,
    result_to_json,
    sample_from_json,
    save_checkpoint,
)
from repro.serve.protocol import target_poi_of
from repro.utils import LRUCache, spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)


@pytest.fixture(scope="module")
def tiny():
    dataset = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=0)
    return dataset, splits


@pytest.fixture(scope="module")
def model(tiny):
    """An untrained TSPN-RA: identity checks don't need trained weights."""
    dataset, _ = tiny
    model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    model.eval()
    return model


def _edge_case_batch(splits):
    """Mixed lengths, no-history, length-1 prefix, and target-less."""
    batch = list(splits.test[:8])
    with_history = next(s for s in splits.test if s.history)
    batch.append(
        PredictionSample(
            user_id=with_history.user_id,
            history=[],
            prefix=with_history.prefix,
            target=with_history.target,
            history_key=(with_history.user_id, -1),
        )
    )
    batch.append(
        PredictionSample(
            user_id=with_history.user_id,
            history=with_history.history,
            prefix=with_history.prefix[:1],
            target=with_history.target,
            history_key=with_history.history_key,
        )
    )
    batch.append(
        PredictionSample(
            user_id=with_history.user_id,
            history=with_history.history,
            prefix=with_history.prefix,
            target=None,
            history_key=with_history.history_key,
        )
    )
    assert len({len(s.prefix) for s in batch}) > 1
    return batch


# ----------------------------------------------------------------------
# thread-safety substrate
# ----------------------------------------------------------------------
class TestGradModeThreadLocal:
    def test_no_grad_does_not_leak_across_threads(self):
        barrier = threading.Barrier(2)
        seen = {}

        def inside_no_grad():
            with no_grad():
                barrier.wait()
                time.sleep(0.02)  # hold no_grad while the peer checks
                seen["inside"] = is_grad_enabled()
            seen["after"] = is_grad_enabled()

        def peer():
            barrier.wait()
            seen["peer"] = is_grad_enabled()
            x = Tensor(np.ones(2), requires_grad=True)
            seen["peer_op_tracks"] = (x * 2.0).requires_grad

        threads = [threading.Thread(target=f) for f in (inside_no_grad, peer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {
            "inside": False,
            "after": True,
            "peer": True,
            "peer_op_tracks": True,
        }

    def test_concurrent_no_grad_restores_per_thread(self):
        failures = []

        def worker():
            for _ in range(50):
                with no_grad():
                    if is_grad_enabled():
                        failures.append("enabled inside no_grad")
                if not is_grad_enabled():
                    failures.append("stuck disabled after no_grad")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures


class TestInterpolatedPercentile:
    def test_midpoint(self):
        assert interpolated_percentile([10.0, 20.0], 50) == 15.0

    def test_endpoints_and_degenerate(self):
        assert interpolated_percentile([], 99) == 0.0
        assert interpolated_percentile([7.0], 99) == 7.0
        assert interpolated_percentile([1.0, 2.0, 3.0], 0) == 1.0
        assert interpolated_percentile([1.0, 2.0, 3.0], 100) == 3.0

    def test_small_sample_p99_not_quantised(self):
        # nearest-rank would return 20.0 for both; interpolation must not
        values = [10.0, 20.0]
        assert 10.0 < interpolated_percentile(values, 95) < 20.0
        assert interpolated_percentile(values, 95) != interpolated_percentile(values, 99)

    def test_matches_numpy_linear_method(self):
        rng = np.random.default_rng(3)
        values = sorted(rng.uniform(0, 100, size=37).tolist())
        for p in (50, 90, 95, 99):
            assert interpolated_percentile(values, p) == pytest.approx(
                float(np.percentile(values, p)), abs=1e-12
            )


class TestServeStatsThreadSafe:
    def test_concurrent_record_batch_exact_totals(self):
        stats = ServeStats()
        threads_n, per_thread = 8, 250

        def hammer():
            for _ in range(per_thread):
                stats.record_batch(0.001, 2)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.requests == threads_n * per_thread * 2
        assert stats.batches == threads_n * per_thread
        assert stats.total_seconds == pytest.approx(threads_n * per_thread * 0.001)
        as_dict = stats.as_dict()
        assert as_dict["requests"] == stats.requests
        assert as_dict["p50_ms"] == pytest.approx(1.0)

    def test_reads_during_writes(self):
        stats = ServeStats()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                stats.record_batch(0.0005, 1)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                snapshot = stats.as_dict()
                # counters are striped (per-instrument locks), so a read
                # can land mid-record: with one single-request writer the
                # counters may be skewed by at most the one in-flight
                # record, never torn or lost
                assert abs(snapshot["requests"] - snapshot["batches"]) <= 1
                stats.latency_percentiles()
        finally:
            stop.set()
            thread.join()


class TestLRUCacheThreadSafe:
    def test_bound_holds_under_concurrent_inserts(self):
        cache = LRUCache(maxsize=8)
        errors = []

        def insert(base):
            try:
                for i in range(300):
                    cache.put((base, i), i)
                    cache.get((base, i - 1))
                    assert len(cache) <= 8
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=insert, args=(b,)) for b in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
        assert cache.hits + cache.misses == 6 * 300


# ----------------------------------------------------------------------
# micro-batch scheduler
# ----------------------------------------------------------------------
class TestMicroBatchScheduler:
    def test_flush_on_batch_size(self):
        scheduler = MicroBatchScheduler(max_batch_size=3, max_wait_ms=10_000)
        futures = [scheduler.submit(i) for i in range(5)]
        batch = scheduler.next_batch()
        assert [r.sample for r in batch] == [0, 1, 2]  # full, FIFO, no wait
        batch = scheduler.next_batch()  # deadline flush on the remainder
        assert [r.sample for r in batch] == [3, 4]
        assert all(not f.done() for f in futures)  # consumers resolve them

    def test_flush_on_deadline(self):
        scheduler = MicroBatchScheduler(max_batch_size=64, max_wait_ms=40)
        scheduler.submit("a")
        scheduler.submit("b")
        start = time.monotonic()
        batch = scheduler.next_batch()
        elapsed = time.monotonic() - start
        assert [r.sample for r in batch] == ["a", "b"]
        assert elapsed < 5.0  # returned via deadline, not a hang

    def test_deadline_counts_queue_wait(self):
        # enqueue, sit past the deadline, then ask: must flush immediately
        scheduler = MicroBatchScheduler(max_batch_size=64, max_wait_ms=20)
        scheduler.submit("late")
        time.sleep(0.05)
        start = time.monotonic()
        batch = scheduler.next_batch()
        assert [r.sample for r in batch] == ["late"]
        assert time.monotonic() - start < 0.02

    def test_idle_timeout_returns_none(self):
        scheduler = MicroBatchScheduler()
        assert scheduler.next_batch(timeout=0.01) is None
        assert not scheduler.closed

    def test_bounded_queue_rejects(self):
        scheduler = MicroBatchScheduler(max_queue=2)
        scheduler.submit(1)
        scheduler.submit(2)
        with pytest.raises(QueueFullError):
            scheduler.submit(3)
        assert scheduler.stats()["rejected"] == 1
        assert scheduler.depth() == 2

    def test_close_drains_queue(self):
        scheduler = MicroBatchScheduler(max_batch_size=2)
        futures = [scheduler.submit(i) for i in range(3)]
        scheduler.close(drain=True)
        with pytest.raises(SchedulerClosedError):
            scheduler.submit(99)
        assert [r.sample for r in scheduler.next_batch()] == [0, 1]
        assert [r.sample for r in scheduler.next_batch()] == [2]
        assert scheduler.next_batch() is None  # drained
        assert all(not f.done() for f in futures)

    def test_close_without_drain_fails_pending(self):
        scheduler = MicroBatchScheduler()
        future = scheduler.submit("pending")
        scheduler.close(drain=False)
        with pytest.raises(SchedulerClosedError):
            future.result(timeout=1.0)
        assert scheduler.next_batch() is None

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_wait_ms=-1)
        with pytest.raises(ValueError):
            MicroBatchScheduler(max_queue=0)

    def test_cancelled_requests_are_skipped(self):
        scheduler = MicroBatchScheduler(max_batch_size=4, max_wait_ms=0.0)
        abandoned = scheduler.submit("gone")
        kept = scheduler.submit("kept")
        assert abandoned.cancel()  # client gave up before dispatch
        batch = scheduler.next_batch()
        assert [r.sample for r in batch] == ["kept"]
        assert not kept.done()
        assert scheduler.stats()["cancelled"] == 1

    def test_all_cancelled_leaves_queue_empty(self):
        scheduler = MicroBatchScheduler(max_wait_ms=0.0)
        future = scheduler.submit("gone")
        future.cancel()
        assert scheduler.next_batch(timeout=0.01) is None
        assert scheduler.depth() == 0


# ----------------------------------------------------------------------
# a deterministic stub model for runtime-behaviour tests
# ----------------------------------------------------------------------
class GatedModel(PredictorBase):
    """Blocks inside predict until released; records batch sizes."""

    name = "stub"
    num_pois = 10
    training = False

    def __init__(self):
        self.gate = threading.Event()
        self.batch_sizes = []

    def eval(self):
        return self

    def train(self, mode=True):
        return self

    def predict(self, sample, *shared, k=None):
        return PredictorResult(
            ranked_pois=list(range(self.num_pois)),
            target_poi=target_poi_of(sample),
            num_pois=self.num_pois,
        )

    def predict_batch(self, samples, *shared, k=None):
        self.batch_sizes.append(len(samples))
        assert self.gate.wait(10.0), "gate never released"
        return [self.predict(s, k=k) for s in samples]


def _stub_sample(i=0):
    return PredictionSample(
        user_id=0, history=[], prefix=[Visit(poi_id=i % 10, timestamp=float(i))],
        target=None, history_key=("stub", i),
    )


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestInferenceServerRuntime:
    def test_busy_worker_backpressure_then_recovery(self):
        stub = GatedModel()
        config = ServerConfig(workers=1, max_batch_size=1, max_wait_ms=0.0, max_queue=2)
        server = InferenceServer(stub, config=config).start()
        try:
            first = server.submit(_stub_sample(0))
            assert _wait_until(lambda: server.scheduler.depth() == 0)  # in flight
            queued = [server.submit(_stub_sample(i)) for i in (1, 2)]
            with pytest.raises(QueueFullError):
                server.submit(_stub_sample(3))
            stats = server.stats()
            assert stats["requests"]["rejected"] == 1
            assert stats["scheduler"]["queue_depth"] == 2
            stub.gate.set()  # recovery: everything admitted completes
            for future in [first, *queued]:
                assert future.result(timeout=10.0).ranked_pois == list(range(10))
        finally:
            stub.gate.set()
            server.stop(drain=True)

    def test_graceful_shutdown_drains_in_flight_and_queued(self):
        stub = GatedModel()
        config = ServerConfig(workers=1, max_batch_size=2, max_wait_ms=0.0)
        server = InferenceServer(stub, config=config).start()
        first = server.submit(_stub_sample(0))
        assert _wait_until(lambda: server.scheduler.depth() == 0)
        queued = [server.submit(_stub_sample(i)) for i in (1, 2)]
        stopper = threading.Thread(target=server.stop, kwargs={"drain": True})
        stopper.start()
        with pytest.raises(SchedulerClosedError):  # admissions closed...
            server.submit(_stub_sample(9))
        stub.gate.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        for future in [first, *queued]:  # ...but the backlog was served
            assert future.result(timeout=1.0).ranked_pois == list(range(10))
        assert stub.batch_sizes == [1, 2]  # queued pair coalesced into one batch
        assert server.stats()["requests"]["completed"] == 3

    def test_stop_without_drain_fails_backlog(self):
        stub = GatedModel()
        config = ServerConfig(workers=1, max_batch_size=1, max_wait_ms=0.0)
        server = InferenceServer(stub, config=config).start()
        first = server.submit(_stub_sample(0))
        assert _wait_until(lambda: server.scheduler.depth() == 0)
        abandoned = server.submit(_stub_sample(1))
        server.scheduler.close(drain=False)
        with pytest.raises(SchedulerClosedError):
            abandoned.result(timeout=1.0)
        stub.gate.set()
        assert first.result(timeout=10.0) is not None  # in-flight still served
        server.stop(drain=True)

    def test_failing_batch_poisons_only_itself(self):
        class FlakyModel(GatedModel):
            def predict_batch(self, samples, *shared, k=None):
                if any(s.user_id == 666 for s in samples):
                    raise RuntimeError("bad batch")
                return [self.predict(s, k=k) for s in samples]

        stub = FlakyModel()
        stub.gate.set()
        config = ServerConfig(workers=1, max_batch_size=1, max_wait_ms=0.0)
        server = InferenceServer(stub, config=config).start()
        try:
            bad_sample = PredictionSample(
                user_id=666, history=[], prefix=[Visit(0, 0.0)], target=None,
                history_key=("stub", 666),
            )
            bad = server.submit(bad_sample)
            good = server.submit(_stub_sample(1))
            with pytest.raises(RuntimeError, match="bad batch"):
                bad.result(timeout=10.0)
            assert good.result(timeout=10.0).ranked_pois == list(range(10))
            stats = server.stats()
            assert stats["requests"]["failed"] == 1
            assert stats["requests"]["completed"] == 1
        finally:
            server.stop(drain=True)

    def test_submit_validates_before_batching(self):
        stub = GatedModel()
        stub.gate.set()
        server = InferenceServer(stub, config=ServerConfig(workers=1))
        with pytest.raises(ValueError, match="non-empty"):
            server.submit(
                PredictionSample(user_id=0, history=[], prefix=[], target=None,
                                 history_key=("stub", 0))
            )
        with pytest.raises(ValueError, match="outside"):
            server.submit(
                PredictionSample(user_id=0, history=[], prefix=[Visit(99, 0.0)],
                                 target=None, history_key=("stub", 1))
            )
        with pytest.raises(ValueError, match="outside"):  # history checked too
            from repro.data.trajectory import Trajectory

            server.submit(
                PredictionSample(
                    user_id=0,
                    history=[Trajectory(user_id=0, visits=[Visit(99, 0.0)])],
                    prefix=[Visit(1, 1.0)], target=None, history_key=("stub", 2),
                )
            )

    def test_pool_shares_one_embedding_refresh_per_version(self, model):
        server = InferenceServer(
            model, config=ServerConfig(workers=3, max_batch_size=1, max_wait_ms=0.0)
        )
        # drive every replica directly: each must hit the shared store
        sample = PredictionSample(
            user_id=0, history=[], prefix=[Visit(0, 0.0)], target=None,
            history_key=("stub", "shared"),
        )
        states = [predictor.shared_state() for predictor in server.predictors]
        assert all(state is states[0] for state in states)  # one copy, shared
        refreshes = sum(p.stats.embedding_refreshes for p in server.predictors)
        hits = sum(p.stats.embedding_cache_hits for p in server.predictors)
        assert refreshes == 1 and hits == 2
        results = [p.predict(sample).ranked_pois for p in server.predictors]
        assert results[0] == results[1] == results[2]


# ----------------------------------------------------------------------
# end-to-end equivalence on the real model
# ----------------------------------------------------------------------
class TestServedEquivalence:
    def test_concurrent_clients_match_direct_predict_batch(self, tiny, model):
        _, splits = tiny
        batch = _edge_case_batch(splits)
        direct = {id(s): r for s, r in zip(batch, model.predict_batch(batch))}

        config = ServerConfig(workers=2, max_batch_size=4, max_wait_ms=2.0)
        server = InferenceServer(model, config=config).start()
        failures = []
        try:
            def client(offset):
                try:
                    for sample in batch[offset::2]:
                        served = server.predict(sample, timeout=30.0)
                        expected = direct[id(sample)]
                        assert served.ranked_pois == expected.ranked_pois
                        assert served.ranked_tiles == expected.ranked_tiles
                        assert served.target_poi == expected.target_poi
                        assert served.poi_rank == expected.poi_rank
                except Exception as error:
                    failures.append(repr(error))

            threads = [threading.Thread(target=client, args=(o,)) for o in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            server.stop(drain=True)
        assert not failures

    def test_hot_reload_propagates_to_every_worker(self, tiny, model, tmp_path):
        dataset, splits = tiny
        other = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(9))
        other.eval()
        checkpoint = save_checkpoint(other, tmp_path / "other.npz")
        probes = splits.test[:4]
        expected = [r.ranked_pois for r in other.predict_batch(probes)]
        before = [r.ranked_pois for r in model.predict_batch(probes)]
        assert expected != before, "fixture models must rank differently"

        server = InferenceServer(model, config=ServerConfig(workers=2)).start()
        try:
            version_before = model.weights_version()
            served_before = [server.predict(s, timeout=30.0).ranked_pois for s in probes]
            assert served_before == before
            new_version = server.reload_weights(str(checkpoint))
            assert new_version > version_before
            # every replica shares the swapped parameters (zero-copy)
            for predictor in server.predictors:
                replica_ranks = [
                    r.ranked_pois for r in predictor.predict_batch(probes)
                ]
                assert replica_ranks == expected
            served_after = [server.predict(s, timeout=30.0).ranked_pois for s in probes]
            assert served_after == expected
        finally:
            server.stop(drain=True)

    def test_reload_rejects_other_models_checkpoint(self, tiny, model, tmp_path):
        from repro.baselines import make_baseline

        dataset, splits = tiny
        locations = np.array(
            [dataset.spec.bbox.normalize(x, y) for x, y in dataset.city.pois.xy]
        )
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        checkpoint = save_checkpoint(mc, tmp_path / "mc.npz")
        server = InferenceServer(model, config=ServerConfig(workers=1))
        with pytest.raises(ValueError, match="MC"):
            server.reload_weights(str(checkpoint))


class TestCompiledServing:
    """The compiled-plan path through the async runtime (satellite of
    the trace/plan refactor): identity vs eager, the shared pool-wide
    plan cache, the ``/stats`` plans section, and the escape hatch."""

    def test_async_compiled_matches_eager(self, tiny, model):
        _, splits = tiny
        batch = _edge_case_batch(splits)
        eager = Predictor(model, graph_cache_size=None, compile=False)
        expected = {id(s): r for s, r in zip(batch, eager.predict_batch(batch))}

        config = ServerConfig(workers=2, max_batch_size=4, max_wait_ms=2.0)
        server = InferenceServer(model, config=config).start()
        try:
            assert server.plan_cache is not None
            for sample in batch:
                served = server.predict(sample, timeout=30.0)
                want = expected[id(sample)]
                assert served.ranked_pois == want.ranked_pois
                assert served.ranked_tiles == want.ranked_tiles
                assert served.poi_rank == want.poi_rank
            # every worker replica shares the one plan cache
            assert all(
                p.plan_cache is server.plan_cache for p in server.predictors
            )
        finally:
            server.stop(drain=True)

    def test_stats_reports_plans_section(self, tiny, model):
        _, splits = tiny
        config = ServerConfig(workers=2, max_batch_size=4, max_wait_ms=2.0)
        server = InferenceServer(model, config=config).start()
        try:
            for sample in splits.test[:8]:
                server.predict(sample, timeout=30.0)
            plans = server.stats()["plans"]
        finally:
            server.stop(drain=True)
        assert plans["enabled"] is True
        assert plans["dtype"] == "float64"
        assert plans["traces"] >= 1
        assert plans["misses"] >= plans["traces"]
        assert plans["hits"] >= 0 and plans["fallbacks"] == 0
        assert plans["plans"], "at least one live plan after serving"
        for entry in plans["plans"]:
            assert len(entry["bucket"]) == 4
            assert entry["steps"] > 0
            assert entry["buffer_bytes"] >= 0

    def test_compile_false_escape_hatch(self, tiny, model):
        _, splits = tiny
        batch = list(splits.test[:4])
        eager = Predictor(model, graph_cache_size=None, compile=False)
        expected = [r.ranked_pois for r in eager.predict_batch(batch)]
        config = ServerConfig(workers=1, compile=False)
        server = InferenceServer(model, config=config).start()
        try:
            assert server.plan_cache is None
            served = [server.predict(s, timeout=30.0).ranked_pois for s in batch]
            assert server.stats()["plans"] == {"enabled": False}
        finally:
            server.stop(drain=True)
        assert served == expected

    def test_plan_dtype_float32_served(self, tiny, model):
        _, splits = tiny
        batch = list(splits.test[:4])
        config = ServerConfig(workers=1, plan_dtype="float32")
        server = InferenceServer(model, config=config).start()
        try:
            results = [server.predict(s, timeout=30.0) for s in batch]
            plans = server.stats()["plans"]
        finally:
            server.stop(drain=True)
        assert plans["dtype"] == "float32"
        assert all(r.ranked_pois for r in results)


class TestConcurrentPredictor:
    def test_parallel_predicts_match_serial(self, tiny, model):
        _, splits = tiny
        test = splits.test[:12]
        serial = [model.predict(s).ranked_pois for s in test]

        predictor = Predictor(model)
        results = {}
        failures = []

        def client(indices):
            try:
                for i in indices:
                    results[i] = predictor.predict(test[i]).ranked_pois
            except Exception as error:
                failures.append(repr(error))

        threads = [
            threading.Thread(target=client, args=(range(o, len(test), 4),))
            for o in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert [results[i] for i in range(len(test))] == serial
        # the shared-state lock collapsed concurrent refreshes into one
        assert predictor.stats.embedding_refreshes == 1
        assert predictor.stats.requests == len(test)

    def test_graph_cache_stays_bounded_under_concurrency(self, tiny, model):
        _, splits = tiny
        by_key = {}
        for sample in splits.test + splits.train:
            by_key.setdefault(sample.history_key, sample)
        distinct = [s for s in by_key.values() if s.history][:8]
        assert len(distinct) >= 4, "fixture needs several distinct histories"

        predictor = Predictor(model, graph_cache_size=2)
        failures = []

        def client(samples):
            try:
                for sample in samples:
                    predictor.predict(sample)
                    assert len(predictor.graph_cache) <= 2
            except Exception as error:
                failures.append(repr(error))

        threads = [
            threading.Thread(target=client, args=(distinct[o::2],)) for o in (0, 1)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert len(predictor.graph_cache) <= 2


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_sample_round_trip_fields(self):
        sample = sample_from_json(
            {
                "user_id": 3,
                "prefix": [{"poi_id": 1, "timestamp": 2.5}, 4],
                "history": [[0, 1], [{"poi_id": 2, "timestamp": 9.0}]],
                "target": {"poi_id": 5, "timestamp": 3.0},
            },
            num_pois=10,
        )
        assert sample.user_id == 3
        assert [v.poi_id for v in sample.prefix] == [1, 4]
        assert sample.prefix[1].timestamp == 1.0  # bare ids index-timestamped
        assert [t.poi_ids for t in sample.history] == [[0, 1], [2]]
        assert sample.target.poi_id == 5
        assert sample.history_key[0] == "serve"

    def test_equal_histories_share_cache_key(self):
        a = sample_from_json({"user_id": 1, "prefix": [1], "history": [[2, 3]]})
        b = sample_from_json({"user_id": 1, "prefix": [4], "history": [[2, 3]]})
        c = sample_from_json({"user_id": 1, "prefix": [4], "history": [[3, 2]]})
        assert a.history_key == b.history_key
        assert a.history_key != c.history_key

    @pytest.mark.parametrize(
        "payload, message",
        [
            ([], "JSON object"),
            ({"prefix": []}, "non-empty"),
            ({"prefix": "nope"}, "non-empty"),
            ({"prefix": [1.5]}, "integer"),
            ({"prefix": [{"timestamp": 1.0}]}, "poi_id"),
            ({"prefix": [{"poi_id": 1, "timestamp": "late"}]}, "number"),
            ({"prefix": [1], "history": [[]]}, "history"),
            ({"prefix": [1], "user_id": "me"}, "user_id"),
            ({"prefix": [99]}, "universe"),
            ({"prefix": [1], "target": {"poi_id": -2}}, "universe"),
        ],
    )
    def test_validation_errors(self, payload, message):
        with pytest.raises(ValueError, match=message):
            sample_from_json(payload, num_pois=10)

    def test_result_to_json_shapes(self):
        with_target = PredictorResult(
            ranked_pois=[3, 1, 2], target_poi=1, ranked_tiles=[7, 8],
            target_tile=7, num_pois=50,
        )
        body = result_to_json(with_target, k=2)
        assert body == {
            "top_pois": [3, 1],
            "num_pois": 50,
            "top_tiles": [7, 8],
            "target_poi": 1,
            "poi_rank": 2,
        }
        live = PredictorResult(ranked_pois=[3, 1, 2], target_poi=-1)
        assert result_to_json(live, k=2) == {"top_pois": [3, 1], "num_pois": None}


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def http_stack(model):
    config = ServerConfig(workers=2, max_batch_size=4, max_wait_ms=2.0)
    server = InferenceServer(model, config=config).start()
    front = HttpFrontend(server, port=0).start()
    yield server, front
    front.stop()
    server.stop(drain=True)


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHttpFrontend:
    def test_healthz(self, http_stack):
        _, front = http_stack
        status, body = _get(front.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 2

    def test_predict_matches_direct_model(self, tiny, model, http_stack):
        _, splits = tiny
        _, front = http_stack
        sample = next(s for s in splits.test if s.history)
        payload = {
            "user_id": sample.user_id,
            "prefix": [{"poi_id": v.poi_id, "timestamp": v.timestamp} for v in sample.prefix],
            "history": [
                [{"poi_id": v.poi_id, "timestamp": v.timestamp} for v in t.visits]
                for t in sample.history
            ],
            "target": {"poi_id": sample.target.poi_id, "timestamp": sample.target.timestamp},
            "k": 5,
        }
        status, body = _post(front.url + "/predict", payload)
        assert status == 200
        direct = model.predict(sample)
        assert body["top_pois"] == direct.top_k(5)
        assert body["poi_rank"] == direct.poi_rank
        assert body["target_poi"] == sample.target.poi_id
        assert body["num_pois"] == model.num_pois

    def test_recommend_strips_target(self, tiny, http_stack):
        _, splits = tiny
        _, front = http_stack
        sample = splits.test[0]
        payload = {
            "user_id": sample.user_id,
            "prefix": [v.poi_id for v in sample.prefix],
            "target": {"poi_id": 0, "timestamp": 0.0},
            "k": 3,
        }
        status, body = _post(front.url + "/recommend", payload)
        assert status == 200
        assert len(body["recommendations"]) == 3
        assert "poi_rank" not in body and "target_poi" not in body

    def test_concurrent_http_clients_all_succeed(self, tiny, http_stack):
        _, splits = tiny
        _, front = http_stack
        outcomes = []
        lock = threading.Lock()

        def client(index):
            sample = splits.test[index % len(splits.test)]
            status, body = _post(
                front.url + "/predict",
                {"user_id": sample.user_id,
                 "prefix": [v.poi_id for v in sample.prefix], "k": 4},
            )
            with lock:
                outcomes.append((status, len(body.get("top_pois", []))))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == [(200, 4)] * 8

    @pytest.mark.parametrize(
        "path, payload, expected_status, fragment",
        [
            ("/predict", {"prefix": []}, 400, "non-empty"),
            ("/predict", {"prefix": [10 ** 9]}, 400, "universe"),
            ("/predict", {"prefix": [1], "k": 0}, 400, "k must be"),
            ("/reload", {}, 400, "checkpoint"),
            ("/reload", {"checkpoint": "/nonexistent.npz"}, 400, "not found"),
            ("/nope", {"prefix": [1]}, 404, "unknown path"),
        ],
    )
    def test_error_statuses(self, http_stack, path, payload, expected_status, fragment):
        _, front = http_stack
        status, body = _post(front.url + path, payload)
        assert status == expected_status
        assert fragment in body["error"]

    def test_malformed_json_is_400(self, http_stack):
        _, front = http_stack
        request = urllib.request.Request(
            front.url + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_stats_shape(self, http_stack):
        _, front = http_stack
        status, stats = _get(front.url + "/stats")
        assert status == 200
        assert stats["workers"] == 2
        assert {"scheduler", "batches", "requests"} <= set(stats)
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(stats["requests"])
        assert stats["scheduler"]["max_batch_size"] == 4

    def test_unknown_get_is_404(self, http_stack):
        _, front = http_stack
        status, body = _get(front.url + "/nope")
        assert status == 404

    def test_reload_corrupt_checkpoint_is_400_not_dropped(self, http_stack, tmp_path):
        _, front = http_stack
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"this is not an npz archive")
        status, body = _post(front.url + "/reload", {"checkpoint": str(corrupt)})
        assert status == 400
        assert "error" in body


# ----------------------------------------------------------------------
# checkpoint recipe bugfix + CLI guards
# ----------------------------------------------------------------------
class TestCheckpointRecipeErrors:
    def _tampered_checkpoint(self, tiny, model, tmp_path, mutate):
        dataset, _ = tiny
        path = save_checkpoint(model, tmp_path / "good.npz", dataset=dataset)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(data["__meta__"].item())
            arrays = {k: data[k] for k in data.files if k != "__meta__"}
        mutate(meta)
        tampered = tmp_path / "tampered.npz"
        np.savez_compressed(tampered, __meta__=np.array(json.dumps(meta)), **arrays)
        return tampered

    def test_unknown_preset_surfaces_clear_error(self, tiny, model, tmp_path):
        def rename(meta):
            meta["dataset"]["name"] = "atlantis"

        tampered = self._tampered_checkpoint(tiny, model, tmp_path, rename)
        with pytest.raises(ValueError, match="atlantis"):
            Predictor.from_checkpoint(tampered)

    def test_unknown_recipe_argument_surfaces_clear_error(self, tiny, model, tmp_path):
        def add_arg(meta):
            meta["dataset"]["from_the_future"] = 1

        tampered = self._tampered_checkpoint(tiny, model, tmp_path, add_arg)
        with pytest.raises(ValueError, match="cannot rebuild its dataset"):
            Predictor.from_checkpoint(tampered)


class TestServeCLI:
    def test_serve_requires_preset_or_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["serve"]) == 2
        assert "preset or --checkpoint" in capsys.readouterr().err

    def test_serve_missing_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["serve", "--checkpoint", "/nonexistent.npz"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_serve_bench_rejects_bad_batch_sizes(self, capsys):
        from repro.cli import main

        assert main(["serve-bench", "nyc", "--batch-sizes", "4,zero"]) == 2
        assert main(["serve-bench", "nyc", "--batch-sizes", "0"]) == 2
