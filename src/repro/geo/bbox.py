"""Axis-aligned bounding boxes.

All synthetic city spaces in this reproduction live in a planar
coordinate system (kilometres or the unit square); a bounding box is
the fundamental region abstraction shared by the quad-tree, the grid
index, the imagery renderer and the road network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class BoundingBox:
    """Half-open rectangle ``[min_x, max_x) x [min_y, max_y)``.

    Half-open semantics guarantee that a point on an interior split line
    belongs to exactly one quadrant, which is what gives the quad-tree
    its "any POI is in exactly one leaf" invariant (paper Sec. II-A).
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self):
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ValueError(f"degenerate bounding box: {self}")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (self.min_x + self.width / 2.0, self.min_y + self.height / 2.0)

    def contains(self, x: float, y: float) -> bool:
        return self.min_x <= x < self.max_x and self.min_y <= y < self.max_y

    def contains_closed(self, x: float, y: float) -> bool:
        """Closed-interval containment, for boundary-inclusive queries."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            other.min_x >= self.max_x
            or other.max_x <= self.min_x
            or other.min_y >= self.max_y
            or other.max_y <= self.min_y
        )

    def quadrants(self) -> Iterator["BoundingBox"]:
        """Yield SW, SE, NW, NE quadrants (the quad-tree split)."""
        cx, cy = self.center
        yield BoundingBox(self.min_x, self.min_y, cx, cy)
        yield BoundingBox(cx, self.min_y, self.max_x, cy)
        yield BoundingBox(self.min_x, cy, cx, self.max_y)
        yield BoundingBox(cx, cy, self.max_x, self.max_y)

    def clamp(self, x: float, y: float) -> Tuple[float, float]:
        """Project a point onto the box (used to keep walkers in bounds)."""
        cx = min(max(x, self.min_x), self.max_x - 1e-9 * self.width)
        cy = min(max(y, self.min_y), self.max_y - 1e-9 * self.height)
        return cx, cy

    def normalize(self, x: float, y: float) -> Tuple[float, float]:
        """Map a point into unit-square coordinates relative to this box."""
        return ((x - self.min_x) / self.width, (y - self.min_y) / self.height)
