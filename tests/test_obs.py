"""repro.obs: metrics core, Prometheus exposition, request tracing.

Three tiers of coverage, matching the three hand-offs tracing has to
survive: unit (instruments, render/parse/diff, span trees), single
process end-to-end (one trace id from the HTTP handler through the
scheduler's future into the model's encode/rank spans, visible at
``/debug/slow``), and cross-process (router-sampled traces whose shard
spans come back over the pipe re-parented under the routing span).
The sampling-off legs pin the "near-free when off" contract with the
``Span`` allocation probe — not a timing assertion, an allocation one.
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterConfig, ClusterHttpFrontend, ClusterRouter
from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    SlowRing,
    Trace,
    activate,
    current_trace,
    diff_scrapes,
    format_report,
    maybe_trace,
    merge_histogram_snapshots,
    parse_prometheus,
    render_prometheus,
    snapshot_percentile,
    span,
    span_creation_count,
)
from repro.serve import HttpFrontend, InferenceServer, ServerConfig, save_checkpoint
from repro.utils import spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


# ======================================================================
# metrics core
# ======================================================================
class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("events", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_stored_and_callback(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == pytest.approx(3)
        live = registry.gauge("live", fn=lambda: 42.0)
        assert live.value == 42.0
        with pytest.raises(RuntimeError):
            live.set(1)

    def test_histogram_observe_and_bounds(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.05, 0.5):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(0.5555)
        assert snap["counts"] == [1, 1, 1, 1]  # one per bucket + overflow
        assert snap["min"] == pytest.approx(0.0005)
        assert snap["max"] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(0.1, 0.1))

    def test_percentile_degenerate_is_exact(self):
        # every observation identical: the clamp makes interpolation
        # collapse to the true value, not the bucket midpoint
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for _ in range(1000):
            h.observe(0.001)
        assert h.percentile(50) == pytest.approx(0.001)
        assert h.percentile(99) == pytest.approx(0.001)

    def test_percentiles_are_ordered(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for i in range(1, 101):
            h.observe(i / 1000.0)
        p = h.percentiles((50, 95, 99))
        assert p["p50"] <= p["p95"] <= p["p99"]
        assert 0.001 <= p["p50"] <= 0.1

    def test_merge_equals_union(self):
        registry = MetricsRegistry()
        a = registry.histogram("a")
        b = registry.histogram("b")
        both = registry.histogram("both")
        for i in range(50):
            a.observe(i / 1000.0)
            both.observe(i / 1000.0)
        for i in range(50, 100):
            b.observe(i / 1000.0)
            both.observe(i / 1000.0)
        merged = merge_histogram_snapshots([a.snapshot(), b.snapshot()])
        assert merged["count"] == both.snapshot()["count"]
        assert merged["counts"] == both.snapshot()["counts"]
        assert snapshot_percentile(merged, 95) == pytest.approx(
            both.percentile(95)
        )

    def test_registry_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        first = registry.counter("x", labels={"w": "0"})
        again = registry.counter("x", labels={"w": "0"})
        other = registry.counter("x", labels={"w": "1"})
        assert first is again
        assert first is not other
        with pytest.raises(ValueError):
            registry.gauge("x", labels={"w": "0"})

    def test_adopt_shares_instruments(self):
        private = MetricsRegistry()
        counter = private.counter("orphan")
        counter.inc(7)
        host = MetricsRegistry()
        host.adopt(private)
        assert host.counter("orphan") is counter
        assert host.counter("orphan").value == 7


# ======================================================================
# exposition
# ======================================================================
class TestExposition:
    def _sample_registry(self):
        registry = MetricsRegistry()
        registry.counter("requests", "served", labels={"worker": "0"}).inc(10)
        registry.gauge("queue_depth", "waiting").set(3)
        h = registry.histogram("latency_seconds", "per request")
        for v in (0.002, 0.004, 0.008, 0.5):
            h.observe(v)
        return registry

    def test_render_parse_round_trip(self):
        text = render_prometheus(self._sample_registry().snapshot())
        parsed = parse_prometheus(text)
        assert parsed[("requests_total", (("worker", "0"),))] == 10.0
        assert parsed[("queue_depth", ())] == 3.0
        assert parsed[("latency_seconds_count", ())] == 4.0
        assert parsed[("latency_seconds_sum", ())] == pytest.approx(0.514)
        # the scrape stamps its own wall time for obs-report intervals
        assert ("repro_scrape_timestamp_seconds", ()) in parsed

    def test_text_format_shape(self):
        """Line-level checks independent of our own parser."""
        text = render_prometheus(self._sample_registry().snapshot())
        lines = text.splitlines()
        assert "# TYPE requests_total counter" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert any(
            re.match(r'latency_seconds_bucket\{le="\+Inf"\} 4$', line)
            for line in lines
        )
        # cumulative: every bucket count <= the next one
        bucket_values = [
            float(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("latency_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert all(" " in line for line in lines if not line.startswith("#"))

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd", labels={"path": 'a"b\\c'}).inc()
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        assert parsed[("odd_total", (("path", 'a"b\\c'),))] == 1.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not prometheus {{{")

    def test_label_escaping_hostile_values(self):
        """Escaped newline vs literal backslash-n must survive a full
        render -> parse round trip as *distinct* label values."""
        hostile = {
            "newline": "a\nb",
            "literal": "a\\nb",  # backslash + 'n', not a newline
            "quote_mix": '\\"',
            "trailing": "tail\\",
        }
        registry = MetricsRegistry()
        for key, value in hostile.items():
            registry.counter("hostile", labels={"case": key, "v": value}).inc()
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        for key, value in hostile.items():
            label = (("case", key), ("v", value))
            assert parsed[("hostile_total", label)] == 1.0, key

    def test_diff_scrapes_rates_and_quantiles(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        h = registry.histogram("latency_seconds")
        counter.inc(5)
        h.observe(0.004)
        before = render_prometheus(registry.snapshot(), timestamp=100.0)
        counter.inc(20)
        for _ in range(10):
            h.observe(0.004)
        after = render_prometheus(registry.snapshot(), timestamp=110.0)

        diff = diff_scrapes(before, after)
        assert diff["interval_seconds"] == pytest.approx(10.0)
        (row,) = [c for c in diff["counters"] if c["name"] == "requests_total"]
        assert row["delta"] == pytest.approx(20.0)
        assert row["per_second"] == pytest.approx(2.0)
        (hist,) = diff["histograms"]
        assert hist["count"] == pytest.approx(10.0)
        assert 0.002 <= hist["p50"] <= 0.005  # interval-only observations
        report = format_report(diff)
        assert "requests_total" in report
        assert "interval: 10.00s" in report

    def test_diff_scrapes_survives_mismatched_series(self):
        """A series present on only one side is a note, not a KeyError."""
        registry = MetricsRegistry()
        gone = registry.counter("gone", labels={"shard": "0"})
        gone.inc(3)
        before = render_prometheus(registry.snapshot(), timestamp=100.0)

        fresh = MetricsRegistry()  # "restart": gone vanished, new appeared
        fresh.counter("appeared").inc(7)
        after = render_prometheus(fresh.snapshot(), timestamp=160.0)

        diff = diff_scrapes(before, after)
        (row,) = [c for c in diff["counters"] if c["name"] == "appeared_total"]
        assert row["absent_before"] is True
        assert row["delta"] == 7.0  # counts from zero, not KeyError
        assert {"name": "gone_total", "labels": {"shard": "0"}} in diff["absent"]
        report = format_report(diff)
        assert "gone_total" in report
        assert "absent" in report

    def test_diff_scrapes_without_timestamp_gauge(self):
        """Foreign / hand-edited scrapes lack our timestamp gauge:
        the diff degrades to rate-less with an actionable note."""
        before = "# TYPE requests_total counter\nrequests_total 5\n"
        after = "# TYPE requests_total counter\nrequests_total 25\n"
        diff = diff_scrapes(before, after)
        assert diff["interval_seconds"] is None
        (row,) = diff["counters"]
        assert row["delta"] == 20.0
        assert row["per_second"] is None
        assert any("repro_scrape_timestamp_seconds" in n for n in diff["notes"])
        report = format_report(diff)
        assert "per-second rates omitted" in report or "missing" in report

    def test_diff_scrapes_routes_quality_series_to_their_own_section(self):
        registry = MetricsRegistry()
        recall = registry.gauge(
            "repro_quality_recall", labels={"k": "10", "stratum": "all"}
        )
        psi = registry.gauge("repro_drift_psi", labels={"dist": "poi"})
        plain = registry.gauge("queue_depth")
        recall.set(0.25)
        psi.set(0.1)
        plain.set(3)
        before = render_prometheus(registry.snapshot(), timestamp=100.0)
        recall.set(0.5)
        psi.set(0.4)
        plain.set(9)
        after = render_prometheus(registry.snapshot(), timestamp=200.0)

        diff = diff_scrapes(before, after)
        quality_names = {row["name"] for row in diff["quality"]}
        assert quality_names == {"repro_quality_recall", "repro_drift_psi"}
        assert {row["name"] for row in diff["gauges"]} == {"queue_depth"}
        report = format_report(diff)
        assert "model quality / drift" in report
        assert "repro_quality_recall" in report


# ======================================================================
# tracing core
# ======================================================================
class TestTracing:
    def test_span_nesting_and_tags(self):
        trace = Trace()
        with activate(trace):
            with span("outer"):
                with span("inner", kind="test"):
                    trace.tag_current(deep=True)
        exported = trace.export_spans()
        assert [s["name"] for s in exported] == ["outer", "inner"]
        assert exported[0]["parent"] is None
        assert exported[1]["parent"] == 0
        assert exported[1]["tags"] == {"kind": "test", "deep": True}

    def test_span_noop_without_active_trace(self):
        before = span_creation_count()
        with span("ignored"):
            assert current_trace() is None
        assert span_creation_count() == before

    def test_carrier_round_trip(self):
        parent = Trace()
        child = Trace.from_carrier(parent.carrier())
        assert child is not None
        assert child.trace_id == parent.trace_id
        assert Trace.from_carrier(None) is None
        assert Trace.from_carrier({"sampled": False}) is None

    def test_graft_reparents_and_rebases(self):
        remote = Trace()
        with activate(remote):
            with span("shard.op"):
                with span("encode"):
                    pass
        local = Trace()
        root = local.begin("route")
        local.graft(remote.export_spans(), parent=root, anchor=local.started_at)
        local.finish(root)
        exported = local.export_spans()
        names = {s["name"]: s for s in exported}
        assert names["shard.op"]["parent"] == 0  # remote root under route
        assert names["encode"]["parent"] == 1  # remote structure intact
        tree = local.as_dict()
        assert tree["spans"][0]["name"] == "route"
        assert tree["spans"][0]["children"][0]["name"] == "shard.op"

    def test_maybe_trace_rates(self):
        assert maybe_trace(0.0) is None
        assert maybe_trace(-1.0) is None
        assert isinstance(maybe_trace(1.0), Trace)

    def test_trace_bounded(self):
        trace = Trace()
        for i in range(Trace.MAX_SPANS + 10):
            trace.add_span(f"s{i}", 0.0, 1.0)
        assert len(trace.export_spans()) == Trace.MAX_SPANS

    def test_slow_ring_keeps_worst(self):
        ring = SlowRing(capacity=3)
        for ms in (5, 1, 9, 3, 7):
            trace = Trace()
            trace.add_span("work", trace.started_at, trace.started_at + ms / 1000.0)
            ring.offer(trace)
        ring.offer(None)  # unsampled requests are a no-op
        assert ring.observed == 5
        worst = ring.slow(3)
        durations = [t["duration_ms"] for t in worst]
        assert durations == sorted(durations, reverse=True)
        assert durations[0] == pytest.approx(9.0, abs=0.5)
        assert len(ring.slow(100)) == 3

    def test_trace_is_thread_safe(self):
        trace = Trace()

        def contribute(tag):
            with activate(trace):
                for i in range(20):
                    with span(f"{tag}.{i}"):
                        pass

        threads = [
            threading.Thread(target=contribute, args=(f"t{n}",)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.export_spans()) == 80


# ======================================================================
# end-to-end: single process
# ======================================================================
@pytest.fixture(scope="module")
def tiny():
    dataset = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=0)
    return dataset, splits


@pytest.fixture(scope="module")
def model(tiny):
    dataset, _ = tiny
    model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    model.eval()
    return model


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url, parse=True):
    with urllib.request.urlopen(url, timeout=30) as response:
        raw = response.read()
        return response.status, (json.loads(raw) if parse else raw.decode())


def _span_names(node, into):
    into.add(node["name"])
    for child in node.get("children", ()):
        _span_names(child, into)


class TestServeTracing:
    @pytest.fixture(scope="class")
    def traced_stack(self, model):
        config = ServerConfig(
            workers=1, max_batch_size=4, max_wait_ms=1.0, trace_sample=1.0
        )
        server = InferenceServer(model, config=config).start()
        front = HttpFrontend(server, port=0).start()
        yield server, front
        front.stop()
        server.stop(drain=True)

    def test_one_trace_spans_queue_to_ranking(self, tiny, traced_stack):
        """The acceptance trace: >= 5 distinct named stages, one id."""
        _, splits = tiny
        server, front = traced_stack
        sample = splits.test[0]
        status, _ = _post(
            f"{front.url}/predict",
            {
                "user_id": sample.user_id,
                "prefix": [v.poi_id for v in sample.prefix],
            },
        )
        assert status == 200
        status, body = _get(f"{front.url}/debug/slow")
        assert status == 200
        assert body["slow"], "a fully-sampled request must reach the ring"
        trace = body["slow"][0]
        assert re.match(r"[0-9a-f]+-[0-9a-f]+-[0-9a-f]{8}", trace["trace_id"])
        names = set()
        for root in trace["spans"]:
            _span_names(root, names)
        assert {"http.parse", "validate", "queue.wait", "infer.batch"} <= names
        assert names & {"encode", "plan.replay"}
        assert "rank.two_step" in names
        assert len(names) >= 5
        assert trace["duration_ms"] > 0

    def test_metrics_endpoint_is_valid_prometheus(self, traced_stack):
        server, front = traced_stack
        status, text = _get(f"{front.url}/metrics", parse=False)
        assert status == 200
        parsed = parse_prometheus(text)
        names = {name for name, _ in parsed}
        assert "serve_request_requests_total" in names
        assert "scheduler_batch_size_bucket" in names
        assert "serve_batch_latency_seconds_bucket" in names
        assert "plan_cache_hits_total" in names
        assert "serve_traces_sampled_total" in names

    def test_stats_reports_tracing_section(self, traced_stack):
        server, front = traced_stack
        status, body = _get(f"{front.url}/stats")
        assert status == 200
        assert body["tracing"]["sample_rate"] == 1.0
        assert body["tracing"]["sampled"] >= 1

    def test_sampling_off_allocates_no_spans(self, tiny, model):
        _, splits = tiny
        config = ServerConfig(
            workers=1, max_batch_size=4, max_wait_ms=1.0, trace_sample=0.0
        )
        server = InferenceServer(model, config=config).start()
        front = HttpFrontend(server, port=0).start()
        try:
            sample = splits.test[0]
            payload = {
                "user_id": sample.user_id,
                "prefix": [v.poi_id for v in sample.prefix],
            }
            _post(f"{front.url}/predict", payload)  # warm every lazy path
            before = span_creation_count()
            for _ in range(5):
                status, _ = _post(f"{front.url}/predict", payload)
                assert status == 200
            assert span_creation_count() == before
            assert len(server.slow_ring) == 0
        finally:
            front.stop()
            server.stop(drain=True)


# ======================================================================
# end-to-end: cluster
# ======================================================================
@pytest.fixture(scope="module")
def checkpoint(tiny, tmp_path_factory):
    dataset, _ = tiny
    model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    path = tmp_path_factory.mktemp("ckpt") / "tiny.npz"
    return save_checkpoint(model, path, dataset=dataset)


@pytest.fixture(scope="module")
def traced_cluster(tiny, checkpoint, tmp_path_factory):
    """A 2-shard cluster sampling every routed request."""
    dataset, _ = tiny
    config = ClusterConfig(
        num_shards=2,
        snapshot_interval=50,
        heartbeat_interval_s=0.5,
        auto_restart=False,
        trace_sample=1.0,
    )
    router = ClusterRouter(
        checkpoint, tmp_path_factory.mktemp("persist"), config=config
    )
    router.start()
    from repro.stream.events import events_from_checkins

    events = [
        {"user_id": e.user_id, "poi_id": e.poi_id, "timestamp": e.timestamp}
        for e in events_from_checkins(dataset.checkins)
    ][:40]
    for event in events:
        reply = router.checkin(event)
        assert reply["ok"], reply
    yield router, events
    router.stop()


@pytest.mark.slow
class TestClusterTracing:
    def test_shard_spans_reparented_under_router_span(self, traced_cluster):
        router, events = traced_cluster
        reply = router.predict_user(events[0]["user_id"], k=5)
        assert reply["ok"], reply
        assert "spans" not in reply  # grafted into the trace, not leaked
        predict_traces = [
            t
            for t in router.slow_requests(router.slow_ring.capacity)
            if any(s["name"] == "route.predict" for s in t["spans"])
        ]
        assert predict_traces
        trace = predict_traces[0]
        route = next(s for s in trace["spans"] if s["name"] == "route.predict")
        child_names = set()
        for child in route.get("children", ()):
            _span_names(child, child_names)
        # the shard's op envelope plus its serving stages, re-parented
        assert "shard.predict" in child_names
        assert "queue.wait" in child_names
        assert "infer.batch" in child_names
        assert child_names & {"encode", "plan.replay"}

    def test_checkin_trace_carries_wal_span(self, traced_cluster):
        router, events = traced_cluster
        reply = router.checkin(
            {**events[-1], "timestamp": events[-1]["timestamp"] + 9999.0}
        )
        assert reply["ok"], reply
        checkin_traces = [
            t
            for t in router.slow_requests(router.slow_ring.capacity)
            if any(s["name"] == "route.checkin" for s in t["spans"])
        ]
        assert checkin_traces
        names = set()
        for root in checkin_traces[0]["spans"]:
            _span_names(root, names)
        assert "shard.checkin" in names
        assert "wal.append" in names

    def test_cluster_metrics_aggregates_shard_labels(self, traced_cluster):
        router, _ = traced_cluster
        text = router.metrics_text()
        parsed = parse_prometheus(text)
        shard_up = {
            dict(labels)["shard"]: value
            for (name, labels), value in parsed.items()
            if name == "repro_shard_up"
        }
        assert shard_up == {"00": 1.0, "01": 1.0}
        shard_series = {
            name
            for (name, labels), _ in parsed.items()
            if dict(labels).get("shard") in ("00", "01")
        }
        assert "serve_request_requests_total" in shard_series
        assert "wal_appended" in shard_series
        assert ("router_requests_total", ()) in parsed

    def test_cluster_http_metrics_and_slow(self, traced_cluster):
        router, _ = traced_cluster
        with ClusterHttpFrontend(router, port=0) as front:
            status, text = _get(f"{front.url}/metrics", parse=False)
            assert status == 200
            assert parse_prometheus(text)
            status, body = _get(f"{front.url}/debug/slow?n=3")
            assert status == 200
            assert body["slow"]
            assert len(body["slow"]) <= 3
