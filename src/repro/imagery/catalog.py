"""Imagery catalog: the tile-id -> image store D_I (paper phase 1).

Renders each quad-tree tile's bounding box once and caches the result,
standing in for the paper's folder of cropped Google-Maps tiles.
Supports the 20%-noise corruption used in the Fig. 12(b) ablation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..spatial import GridIndex, RegionQuadTree
from .renderer import TileRenderer, add_noise


class ImageryCatalog:
    """Lazy cache of rendered tile images keyed by tile id."""

    def __init__(
        self,
        renderer: TileRenderer,
        noise_fraction: float = 0.0,
        noise_seed: int = 1234,
    ):
        self.renderer = renderer
        self.noise_fraction = noise_fraction
        self._noise_rng = np.random.default_rng(noise_seed)
        self._cache: Dict[int, np.ndarray] = {}
        self._bbox_of = None  # set by bind()

    def bind(self, index) -> "ImageryCatalog":
        """Attach a spatial index (quad-tree or grid) providing tile bboxes."""
        if isinstance(index, RegionQuadTree):
            self._bbox_of = lambda tile_id: index.node(tile_id).bbox
        elif isinstance(index, GridIndex):
            self._bbox_of = index.bbox_of
        else:
            raise TypeError(f"unsupported spatial index: {type(index)!r}")
        return self

    def image_for(self, tile_id: int) -> np.ndarray:
        """Rendered (and possibly corrupted) image for one tile, cached."""
        if self._bbox_of is None:
            raise RuntimeError("catalog not bound to a spatial index; call bind()")
        if tile_id not in self._cache:
            image = self.renderer.render(self._bbox_of(tile_id))
            if self.noise_fraction > 0.0:
                image = add_noise(image, self.noise_fraction, self._noise_rng)
            self._cache[tile_id] = image
        return self._cache[tile_id]

    def images_for(self, tile_ids: Iterable[int]) -> np.ndarray:
        """Stack of CHW images for a batch of tiles (CNN input layout)."""
        images = [self.image_for(t) for t in tile_ids]
        return np.stack([img.transpose(2, 0, 1) for img in images], axis=0)

    @property
    def resolution(self) -> int:
        return self.renderer.resolution

    def cache_size(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
