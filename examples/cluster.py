"""Cluster tour: durable multi-process serving, crash and recovery.

The scale-out slice of the API tour (streaming.py covers the
single-process stateful path).  Four stops:

1. save a checkpoint and start a 2-shard cluster over it: each shard
   is a separate OS process with its own event log and snapshots under
   ``persist/shard-NN/``, its model weights zero-copy views into one
   shared-memory block, and its users assigned by consistent hashing;
2. stream check-ins through the router and ask for predictions — the
   same ``/checkin`` / ``/predict`` contract as the single-process
   tier, now fanned across processes;
3. SIGKILL a shard mid-flight (a real crash: no atexit, no goodbye
   snapshot) and watch the restarted process recover its exact state —
   every acknowledged ``state_version`` — from snapshot + log fold;
4. the same thing over HTTP, plus the cluster-wide ``/stats`` roll-up.

Everything here also works from the shell::

    repro train nyc --save model.npz
    repro serve --checkpoint model.npz --cluster 2 --persist ./state
    curl -s localhost:8151/checkin -d '{"user_id": 7, "poi_id": 3, "timestamp": 12.5}'
    curl -s localhost:8151/predict -d '{"user_id": 7, "k": 5}'
    curl -s localhost:8151/healthz

Runs in about a minute on a laptop CPU:

    python examples/cluster.py
"""

import json
import os
import signal
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.cluster import ClusterConfig, ClusterHttpFrontend, ClusterRouter
from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset
from repro.serve import save_checkpoint
from repro.stream import events_from_checkins
from repro.utils import spawn


def post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))

    # 0. A checkpoint is the unit of deployment: config + weights +
    #    dataset recipe.  Workers rebuild the (seeded, deterministic)
    #    dataset from the recipe and attach the weights through shared
    #    memory — the .npz is read exactly once, by the router.
    dataset = build_dataset("nyc", seed=7, scale=0.2, imagery_resolution=16)
    model = TSPNRA.from_dataset(
        dataset,
        TSPNRAConfig(dim=16, fusion_layers=1, hgat_layers=1, top_k=8),
        rng=spawn(7),
    )
    checkpoint = save_checkpoint(model, workdir / "model.npz", dataset=dataset)
    events = [
        {"user_id": e.user_id, "poi_id": e.poi_id, "timestamp": e.timestamp}
        for e in events_from_checkins(dataset.checkins)
    ]
    print(f"checkpoint {checkpoint.name}, {len(events)} check-ins to stream")

    # 1. Start the cluster: every shard recovers from its persistence
    #    directory before reporting ready (empty on first boot).
    config = ClusterConfig(
        num_shards=2,
        snapshot_interval=100,   # snapshot every 100 acknowledged events
        fsync="rotate",          # fsync at segment bounds; "always" per ack
        auto_restart=False,      # in production the supervisor thread
                                 # heartbeats and restarts crashed shards
                                 # itself; off here so the tour can drive
                                 # recovery by hand at stop 3
    )
    router = ClusterRouter(checkpoint, workdir / "persist", config=config)
    router.start()
    print(f"2 shards up: pids {[s.pid for s in router.shards]}")

    # 2. Stream the first half through the consistent-hash router.
    half = len(events) // 2
    outcome = router.stream_events(events[:half], predict_every=25)
    print(f"ingested {outcome['acks']} events, "
          f"{outcome['predictions']} inline predictions")
    user = events[0]["user_id"]
    reply = router.predict_user(user, k=5)
    print(f"user {user} top-5 -> {reply['result']['top_pois']}")

    # 3. Crash a shard for real.  Acknowledged events are on disk (WAL
    #    + snapshots), so the restart folds back to the exact pre-crash
    #    state — compare the version map before and after.
    versions_before = router.user_versions()
    victim = router.shards[1]
    print(f"\nSIGKILL shard 1 (pid {victim.pid})...")
    os.kill(victim.pid, signal.SIGKILL)
    victim._process.join(5.0)
    victim._mark_dead("killed by example")
    started = time.perf_counter()
    ready = router.restart_shard(1)
    print(f"shard 1 back in {time.perf_counter() - started:.2f}s "
          f"(recovery: {ready['recovery']})")
    assert router.user_versions() == versions_before
    print("every user's state_version identical after recovery")

    # ...and the stream keeps going where it left off.
    outcome = router.stream_events(events[half:], predict_every=25)
    print(f"second half: {outcome['acks']} events, 0 lost")

    # 4. The HTTP face of the same thing.  409 on out-of-order
    #    check-ins survives the router hop; /stats aggregates the pool.
    with ClusterHttpFrontend(router, port=0) as front:
        print(f"\ncluster HTTP on {front.url}")
        body = post(front.url + "/predict", {"user_id": user, "k": 3})
        print(f"POST /predict -> top-3 {body['top_pois']}")
        stats = json.loads(urllib.request.urlopen(front.url + "/stats").read())
        totals = stats["cluster"]["totals"]
        print(f"/stats cluster totals: users={totals['users']} "
              f"events={totals['events']}")
        for shard in stats["cluster"]["shards"]:
            durability = shard["durability"]
            print(f"  shard {shard['shard']}: {shard['users']} users, "
                  f"log seq {durability['last_seq']}, "
                  f"{durability['snapshots_taken']} snapshots, "
                  f"restarts {shard['restarts']}")
        health = json.loads(urllib.request.urlopen(front.url + "/healthz").read())
        print(f"/healthz: {health['status']}")

    router.stop()
    print("\ncluster stopped (final snapshots written)")


if __name__ == "__main__":
    main()
