"""Synthetic stream scenarios: controlled distribution shifts on a tape.

The drift detector (:mod:`repro.obs.drift`) and the prequential quality
monitor need adversarial inputs to prove they *fire* — a stationary
replay only proves they stay quiet.  :func:`popularity_shift_events`
manufactures the canonical failure mode of a next-POI model: the venue
popularity ranking changes under it mid-stream.

The shift is a seeded random permutation of the POI id space applied to
every event from the cut point on.  Permuting ids (rather than, say,
re-sampling) keeps the *shape* of the stream — users, timestamps,
session structure, per-user event counts — byte-identical to the
original tape, so anything that changes downstream (PSI blowing past
its threshold, windowed Recall@K dropping) is attributable to the
popularity shift alone.  It degrades the model for the same reason it
trips the detector: transition statistics learned for POI ``a`` now
describe a venue the stream calls ``perm[a]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from .events import CheckinEvent

__all__ = ["ShiftScenario", "popularity_shift_events"]


@dataclass(frozen=True)
class ShiftScenario:
    """A shifted tape plus the bookkeeping the asserting test needs."""

    events: List[CheckinEvent]
    shift_index: int  # first event index with remapped POI ids
    permutation: List[int] = field(repr=False)

    @property
    def pre_shift(self) -> List[CheckinEvent]:
        return self.events[: self.shift_index]

    @property
    def post_shift(self) -> List[CheckinEvent]:
        return self.events[self.shift_index :]


def popularity_shift_events(
    events: Sequence[CheckinEvent],
    num_pois: int,
    *,
    shift_at: float = 0.5,
    seed: int = 0,
) -> ShiftScenario:
    """Remap POI ids by a seeded permutation from ``shift_at`` onwards.

    ``shift_at`` is the fraction of the tape that stays stationary
    (0 < shift_at < 1).  Timestamps and user order are untouched, so
    the shifted tape ingests wherever the original would — session
    rolls included.
    """
    events = list(events)
    if not 0.0 < shift_at < 1.0:
        raise ValueError("shift_at must be inside (0, 1)")
    if num_pois < 2:
        raise ValueError("a permutation needs at least 2 POIs")
    if any(e.poi_id < 0 or e.poi_id >= num_pois for e in events):
        raise ValueError("events reference POIs outside [0, num_pois)")
    cut = int(len(events) * shift_at)
    permutation = list(range(num_pois))
    random.Random(seed).shuffle(permutation)
    shifted = [
        event
        if index < cut
        else CheckinEvent(
            user_id=event.user_id,
            poi_id=permutation[event.poi_id],
            timestamp=event.timestamp,
        )
        for index, event in enumerate(events)
    ]
    return ShiftScenario(events=shifted, shift_index=cut, permutation=permutation)
