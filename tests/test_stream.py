"""Tests for ``repro.stream``: event codec, sharded user-state store,
ingest-side cache invalidation, stateful serving, and prequential
replay identity against the offline evaluation protocol."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples
from repro.data.checkin import Checkin, CheckinDataset
from repro.data.trajectory import DEFAULT_GAP_HOURS, Visit
from repro.serve import (
    HttpFrontend,
    InferenceServer,
    Predictor,
    ServerConfig,
)
from repro.serve.protocol import serve_history_key
from repro.stream import (
    CheckinEvent,
    StoreConfig,
    StreamIngest,
    UserStateStore,
    compare_replay,
    event_from_json,
    event_to_json,
    events_from_checkins,
    offline_reference,
    prequential_replay,
    serialised_rebuild_baseline,
    stream_history_key,
)
from repro.utils import LRUCache, spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)


@pytest.fixture(scope="module")
def model(tiny_dataset):
    """Untrained TSPN-RA: identity checks don't need trained weights."""
    model = TSPNRA.from_dataset(tiny_dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    model.eval()
    return model


def ev(user, poi, t):
    return CheckinEvent(user_id=user, poi_id=poi, timestamp=float(t))


# ----------------------------------------------------------------------
# wire model
# ----------------------------------------------------------------------
class TestEventCodec:
    def test_round_trip(self):
        event = ev(7, 3, 12.5)
        assert event_from_json(event_to_json(event)) == event

    @pytest.mark.parametrize(
        "payload, message",
        [
            ([1, 2, 3], "JSON object"),
            ({"poi_id": 1, "timestamp": 0.0}, "user_id"),
            ({"user_id": True, "poi_id": 1, "timestamp": 0.0}, "user_id"),
            ({"user_id": 1, "timestamp": 0.0}, "poi_id"),
            ({"user_id": 1, "poi_id": "3", "timestamp": 0.0}, "poi_id"),
            ({"user_id": 1, "poi_id": -2, "timestamp": 0.0}, "POI universe"),
            ({"user_id": 1, "poi_id": 1}, "timestamp"),
            ({"user_id": 1, "poi_id": 1, "timestamp": "now"}, "timestamp"),
            ({"user_id": 1, "poi_id": 1, "timestamp": float("nan")}, "finite"),
        ],
    )
    def test_validation_messages(self, payload, message):
        with pytest.raises(ValueError, match=message):
            event_from_json(payload)

    def test_poi_bounded_by_universe(self):
        with pytest.raises(ValueError, match=r"\[0, 10\)"):
            event_from_json({"user_id": 1, "poi_id": 10, "timestamp": 0.0}, num_pois=10)

    def test_events_from_checkins_globally_ordered(self, tiny_dataset):
        events = events_from_checkins(tiny_dataset.checkins)
        assert len(events) == len(tiny_dataset.checkins)
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        # per-user relative order survives the merge
        for user in tiny_dataset.checkins.users():
            mine = [e for e in events if e.user_id == user]
            assert [e.poi_id for e in mine] == [
                c.poi_id for c in tiny_dataset.checkins.of_user(user)
            ]


# ----------------------------------------------------------------------
# state store
# ----------------------------------------------------------------------
class TestUserStateStore:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            StoreConfig(num_shards=0)
        with pytest.raises(ValueError):
            StoreConfig(max_sessions=0)
        with pytest.raises(ValueError):
            StoreConfig(max_session_visits=1)
        with pytest.raises(ValueError):
            StoreConfig(gap_hours=0.0)

    def test_state_version_monotonic_and_prefix_grows(self):
        store = UserStateStore(StoreConfig(num_shards=2))
        versions = [store.append(ev(1, p, t)).state_version for p, t in ((3, 0), (4, 1), (5, 2))]
        assert versions == [1, 2, 3]
        snapshot = store.snapshot(1)
        assert [v.poi_id for v in snapshot.prefix] == [3, 4, 5]
        assert snapshot.history == []
        assert snapshot.state_version == 3

    def test_gap_rule_matches_split_into_trajectories(self):
        """Roll at >= gap_hours exactly, like the offline Δt rule."""
        store = UserStateStore(StoreConfig(gap_hours=72.0))
        store.append(ev(1, 3, 0.0))
        just_under = store.append(ev(1, 4, 71.9999))
        assert not just_under.session_rolled
        at_boundary = store.append(ev(1, 5, 71.9999 + 72.0))
        assert at_boundary.session_rolled and not at_boundary.forced_roll
        snapshot = store.snapshot(1)
        assert [v.poi_id for v in snapshot.prefix] == [5]
        assert [t.poi_ids for t in snapshot.history] == [[3, 4]]

    def test_rollover_retires_exactly_the_old_graph_key(self):
        store = UserStateStore(StoreConfig())
        store.append(ev(1, 3, 0.0))
        old_key = store.snapshot(1).history_key
        assert old_key == stream_history_key(1, 0)
        rolled = store.append(ev(1, 4, 100.0))
        assert rolled.invalidated_key == old_key
        assert store.snapshot(1).history_key == stream_history_key(1, rolled.state_version)

    def test_history_bounded_oldest_session_falls_off(self):
        store = UserStateStore(StoreConfig(max_sessions=2))
        for i in range(4):  # 4 rollovers -> sessions 0..2 completed
            store.append(ev(1, i, i * 100.0))
        snapshot = store.snapshot(1)
        assert [t.poi_ids for t in snapshot.history] == [[1], [2]]  # [0] evicted
        assert [v.poi_id for v in snapshot.prefix] == [3]

    def test_forced_roll_bounds_open_session(self):
        store = UserStateStore(StoreConfig(max_session_visits=3))
        results = [store.append(ev(1, i, float(i))) for i in range(5)]
        forced = results[3]
        assert forced.session_rolled and forced.forced_roll
        snapshot = store.snapshot(1)
        assert [t.poi_ids for t in snapshot.history] == [[0, 1, 2]]
        assert [v.poi_id for v in snapshot.prefix] == [3, 4]

    def test_out_of_order_append_rejected(self):
        store = UserStateStore(StoreConfig())
        store.append(ev(1, 3, 10.0))
        with pytest.raises(ValueError, match="out-of-order"):
            store.append(ev(1, 4, 9.0))
        # equal timestamps are fine (the sorted invariant is non-strict)
        assert store.append(ev(1, 4, 10.0)).session_length == 2

    def test_snapshot_is_immune_to_later_appends(self):
        store = UserStateStore(StoreConfig())
        store.append(ev(1, 3, 0.0))
        snapshot = store.snapshot(1)
        store.append(ev(1, 4, 1.0))
        store.append(ev(1, 5, 200.0))  # rolls the session
        assert [v.poi_id for v in snapshot.prefix] == [3]
        assert snapshot.history == []

    def test_unknown_user(self):
        store = UserStateStore(StoreConfig())
        with pytest.raises(KeyError):
            store.snapshot(42)
        with pytest.raises(KeyError):
            store.sample_for(42)
        assert store.get_snapshot(42) is None
        assert store.state_version(42) == 0

    def test_sample_for_carries_stream_key_and_target(self):
        store = UserStateStore(StoreConfig())
        store.append(ev(7, 3, 0.0))
        store.append(ev(7, 4, 1.0))
        sample = store.sample_for(7, target=Visit(poi_id=9, timestamp=2.0))
        assert sample.history_key == ("stream", 7, 0)
        assert sample.prefix_poi_ids == [3, 4]
        assert sample.target.poi_id == 9

    def test_users_spread_across_shards(self):
        store = UserStateStore(StoreConfig(num_shards=4))
        for user in range(16):
            store.append(ev(user, 0, 0.0))
        assert len(store) == 16
        assert store.users() == list(range(16))
        occupied = sum(1 for shard in store._shards if shard.users)
        assert occupied == 4  # 16 consecutive ids land on all 4 stripes

    def test_stats_roll_up(self):
        store = UserStateStore(StoreConfig(num_shards=2))
        store.append(ev(1, 3, 0.0))
        store.append(ev(1, 4, 100.0))
        store.append(ev(2, 5, 0.0))
        stats = store.stats()
        assert stats["users"] == 2
        assert stats["events"] == 3
        assert stats["sessions_rolled"] == 1
        assert stats["open_visits"] == 2
        assert stats["sessions_held"] == 1

    def test_incremental_occupancy_matches_recount(self):
        """stats() occupancy is maintained on append (O(shards), never
        walking the user maps); it must stay equal to a brute-force
        recount through rollovers, forced rolls and deque evictions."""
        rng = np.random.default_rng(7)
        store = UserStateStore(
            StoreConfig(num_shards=2, max_sessions=3, max_session_visits=4)
        )
        clocks = {}
        for _ in range(400):
            user = int(rng.integers(0, 6))
            step = float(rng.choice([1.0, 200.0]))  # continue or gap-roll
            clocks[user] = clocks.get(user, 0.0) + step
            store.append(ev(user, int(rng.integers(0, 30)), clocks[user]))
        stats = store.stats()
        open_visits = held = 0
        for user in store.users():
            snapshot = store.snapshot(user)
            open_visits += len(snapshot.prefix)
            held += len(snapshot.history)
        assert stats["open_visits"] == open_visits
        assert stats["sessions_held"] == held

    def test_state_version_probe(self):
        store = UserStateStore(StoreConfig())
        assert store.state_version(1) == 0
        store.append(ev(1, 3, 0.0))
        store.append(ev(1, 4, 1.0))
        assert store.state_version(1) == 2


class TestConcurrentStore:
    def test_parallel_ingest_matches_sequential(self):
        """Per-user event order is the only ordering the store needs:
        interleaving users arbitrarily across threads must converge to
        the same state as a sequential ingest."""
        rng = np.random.default_rng(0)
        per_user = {
            user: [ev(user, int(rng.integers(0, 50)), float(t) * 30.0) for t in range(40)]
            for user in range(12)
        }

        sequential = UserStateStore(StoreConfig(num_shards=4))
        for user in sorted(per_user):
            for event in per_user[user]:
                sequential.append(event)

        parallel = UserStateStore(StoreConfig(num_shards=4))
        errors = []

        def worker(users):
            try:
                for user in users:
                    for event in per_user[user]:
                        parallel.append(event)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=([u] ,)) for u in per_user
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert parallel.stats() == sequential.stats()
        for user in per_user:
            a, b = parallel.snapshot(user), sequential.snapshot(user)
            assert [t.poi_ids for t in a.history] == [t.poi_ids for t in b.history]
            assert [v.poi_id for v in a.prefix] == [v.poi_id for v in b.prefix]
            assert a.state_version == b.state_version
            assert a.history_key == b.history_key

    def test_concurrent_snapshot_during_ingest(self):
        store = UserStateStore(StoreConfig(num_shards=2))
        store.append(ev(1, 0, 0.0))
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                snapshot = store.snapshot(1)
                try:
                    # a torn snapshot would break these invariants
                    assert snapshot.prefix, "open session never empty"
                    times = [v.timestamp for v in snapshot.prefix]
                    assert times == sorted(times)
                except AssertionError as error:  # pragma: no cover
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for i in range(1, 400):
            store.append(ev(1, i % 50, i * 10.0))
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors


# ----------------------------------------------------------------------
# ingest pipeline
# ----------------------------------------------------------------------
class TestStreamIngest:
    def test_invalidation_exactly_once_per_history_bump(self):
        store = UserStateStore(StoreConfig())
        caches = [LRUCache(8), LRUCache(8)]
        ingest = StreamIngest(store, caches=caches + [None])  # None ignored
        ingest.ingest(ev(1, 3, 0.0))
        stale_key = store.snapshot(1).history_key
        for cache in caches:
            cache.put(stale_key, "graph")
        result = ingest.ingest(ev(1, 4, 100.0))  # rolls -> retires stale_key
        assert result.session_rolled
        assert all(stale_key not in cache for cache in caches)
        assert ingest.invalidations == 2  # one per cache, once per bump
        # a non-rolling append must not touch the caches
        fresh_key = store.snapshot(1).history_key
        for cache in caches:
            cache.put(fresh_key, "graph")
        ingest.ingest(ev(1, 5, 101.0))
        assert all(fresh_key in cache for cache in caches)
        assert ingest.invalidations == 2

    def test_deque_eviction_invalidates_every_cache_exactly_once(self):
        # max_sessions=1: every rollover both retires the old history key
        # AND evicts the oldest session from the deque.  The eviction must
        # not produce a second retirement — one bump, one pop per cache.
        store = UserStateStore(StoreConfig(max_sessions=1))
        caches = [LRUCache(8), LRUCache(8), LRUCache(8)]
        ingest = StreamIngest(store, caches=caches)
        ingest.ingest(ev(1, 3, 0.0))
        ingest.ingest(ev(1, 4, 100.0))  # rolls; deque now full
        for bump in range(1, 4):
            stale_key = store.snapshot(1).history_key
            for cache in caches:
                cache.put(stale_key, "graph")
            result = ingest.ingest(ev(1, 5 + bump, 100.0 * (bump + 1)))
            assert result.session_rolled  # every roll past here evicts
            assert all(stale_key not in cache for cache in caches)
            assert ingest.invalidations == bump * len(caches)
        stats = ingest.stats()
        assert stats["sessions_held"] == 1  # the deque bound really fired
        assert stats["cache_invalidations"] == 3 * len(caches)

    def test_counters_and_stats(self):
        ingest = StreamIngest()
        ingest.ingest_many([ev(1, 3, 0.0), ev(1, 4, 1.0), ev(1, 5, 200.0)])
        stats = ingest.stats()
        assert stats["ingested"] == 3
        assert stats["rollovers"] == 1
        assert stats["users"] == 1

    def test_register_predictor_picks_up_graph_cache(self, model):
        predictor = Predictor(model, graph_cache_size=16)
        ingest = StreamIngest()
        ingest.register_predictor(predictor)
        ingest.ingest(ev(1, 3, 0.0))
        predictor.graph_cache.put(stream_history_key(1, 0), "stale")
        ingest.ingest(ev(1, 4, 100.0))
        assert stream_history_key(1, 0) not in predictor.graph_cache
        assert ingest.invalidations == 1


# ----------------------------------------------------------------------
# stateful serving
# ----------------------------------------------------------------------
def _events_of_user(dataset, user):
    return [
        CheckinEvent.from_checkin(record) for record in dataset.checkins.of_user(user)
    ]


class TestStatefulServing:
    def test_stateless_server_refuses_stateful_calls(self, model):
        server = InferenceServer(model, config=ServerConfig(workers=1))
        with pytest.raises(RuntimeError, match="stateless"):
            server.checkin(ev(1, 3, 0.0))
        with pytest.raises(RuntimeError, match="stateless"):
            server.submit_user(1)
        assert not server.stateful

    def test_stateful_predict_matches_stateless_shipped_history(self, tiny_dataset, model):
        """The acceptance identity: a stored user's history-less predict
        equals a stateless request shipping the identical history."""
        user = max(
            tiny_dataset.trajectories,
            key=lambda u: len(tiny_dataset.trajectories[u]),
        )
        events = _events_of_user(tiny_dataset, user)[:24]
        store = UserStateStore(StoreConfig(num_shards=4))
        config = ServerConfig(workers=2, max_batch_size=4, max_wait_ms=1.0)
        with InferenceServer(model, config=config, state_store=store) as server:
            for event in events:
                server.checkin(event)
            stateful = server.predict_user(user, timeout=30.0)

            snapshot = store.snapshot(user)
            stateless_sample = snapshot.sample()
            # rebuild the wire-equivalent stateless request: same
            # history content, but the content-digest cache key
            stateless_sample.history_key = serve_history_key(user, snapshot.history)
            stateless = server.predict(stateless_sample, timeout=30.0)
        assert stateful.ranked_pois == stateless.ranked_pois
        assert stateful.ranked_tiles == stateless.ranked_tiles

    def test_concurrent_checkins_and_predicts(self, tiny_dataset, model):
        """Ingest and predict racing across users must neither deadlock
        nor produce invalid results."""
        users = tiny_dataset.checkins.users()[:6]
        store = UserStateStore(StoreConfig(num_shards=4))
        config = ServerConfig(workers=2, max_batch_size=8, max_wait_ms=2.0)
        num_pois = len(tiny_dataset.city.pois)
        errors = []
        with InferenceServer(model, config=config, state_store=store) as server:
            for user in users:  # seed one visit so predicts never 404
                server.checkin(_events_of_user(tiny_dataset, user)[0])

            def client(user):
                try:
                    for event in _events_of_user(tiny_dataset, user)[1:12]:
                        server.checkin(event)
                        result = server.predict_user(user, timeout=30.0)
                        assert len(result.ranked_pois) > 0
                        assert all(0 <= p < num_pois for p in result.top_k(5))
                except Exception as error:  # pragma: no cover - failure path
                    errors.append((user, error))

            threads = [threading.Thread(target=client, args=(u,)) for u in users]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        stats = store.stats()
        assert stats["users"] == len(users)

    def test_stats_expose_backpressure_gauges(self, model):
        store = UserStateStore(StoreConfig(num_shards=2))
        with InferenceServer(
            model, config=ServerConfig(workers=2), state_store=store
        ) as server:
            server.checkin(ev(1, 3, 0.0))
            stats = server.stats()
        assert stats["queue_depth"] == 0
        assert stats["in_flight"] == 0
        assert [w["worker"] for w in stats["workers_detail"]] == [0, 1]
        assert {"in_flight", "requests", "batches"} <= set(stats["workers_detail"][0])
        assert stats["stream"]["users"] == 1
        assert stats["stream"]["registered_caches"] == 2


class TestStatefulHttp:
    @pytest.fixture()
    def front(self, model):
        store = UserStateStore(StoreConfig(num_shards=2))
        server = InferenceServer(
            model,
            config=ServerConfig(workers=1, max_batch_size=4, max_wait_ms=1.0),
            state_store=store,
        ).start()
        frontend = HttpFrontend(server, port=0).start()
        yield frontend
        frontend.stop()
        server.stop(drain=True)

    @staticmethod
    def _post(url, payload):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_checkin_then_historyless_predict(self, front):
        url = front.url
        status, body = self._post(url + "/checkin", {"user_id": 3, "poi_id": 5, "timestamp": 1.0})
        assert (status, body["state_version"], body["session_rolled"]) == (200, 1, False)
        status, body = self._post(url + "/checkin", {"user_id": 3, "poi_id": 6, "timestamp": 2.0})
        assert status == 200 and body["session_length"] == 2
        status, body = self._post(url + "/predict", {"user_id": 3, "k": 5})
        assert status == 200
        assert len(body["top_pois"]) == 5
        assert "poi_rank" not in body  # no ground truth shipped
        status, body = self._post(url + "/recommend", {"user_id": 3, "k": 3})
        assert status == 200 and len(body["recommendations"]) == 3

    def test_http_error_matrix(self, front):
        url = front.url
        # seed user 3 so the broken-stateless-request cases below would
        # really serve stored state (200) if routing regressed
        assert self._post(url + "/checkin", {"user_id": 3, "poi_id": 1, "timestamp": 0.0})[0] == 200
        cases = [
            ("/checkin", {"user_id": 3, "poi_id": -1, "timestamp": 0.0}, 400),
            ("/checkin", {"poi_id": 1, "timestamp": 0.0}, 400),
            ("/predict", {"user_id": 12345}, 404),  # never checked in
            ("/predict", {"user_id": "three"}, 400),
            ("/predict", {}, 400),  # neither prefix nor valid user_id
            # a broken *stateless* request (ships trajectory data but no
            # prefix) must keep its 400, not silently serve stored state
            ("/predict", {"user_id": 3, "history": [[1]]}, 400),
            ("/predict", {"user_id": 3, "target": {"poi_id": 1, "timestamp": 9.0}}, 400),
            # /recommend must classify the as-shipped body the same way
            # /predict does, even though it drops targets before serving
            ("/recommend", {"user_id": 3, "target": {"poi_id": 1, "timestamp": 9.0}}, 400),
            ("/recommend", {"user_id": 3, "history": [[1]]}, 400),
        ]
        for path, payload, expected in cases:
            status, body = self._post(url + path, payload)
            assert status == expected, (path, payload, body)
        # out-of-order arrival conflicts with ingested state -> 409
        assert self._post(url + "/checkin", {"user_id": 9, "poi_id": 1, "timestamp": 5.0})[0] == 200
        status, body = self._post(url + "/checkin", {"user_id": 9, "poi_id": 1, "timestamp": 4.0})
        assert status == 409 and "out-of-order" in body["error"]

    def test_checkin_rolls_session_and_reports_it(self, front):
        url = front.url
        self._post(url + "/checkin", {"user_id": 5, "poi_id": 1, "timestamp": 0.0})
        status, body = self._post(
            url + "/checkin",
            {"user_id": 5, "poi_id": 2, "timestamp": DEFAULT_GAP_HOURS + 1.0},
        )
        assert status == 200
        assert body["session_rolled"] and body["num_sessions"] == 1
        stats = json.loads(urllib.request.urlopen(front.url + "/stats", timeout=10).read())
        assert stats["stream"]["sessions_rolled"] == 1

    def test_stateless_server_historyless_predict_400(self, model):
        server = InferenceServer(model, config=ServerConfig(workers=1)).start()
        try:
            with HttpFrontend(server, port=0) as front:
                status, body = self._post(front.url + "/predict", {"user_id": 3})
                assert status == 400 and "--stateful" in body["error"]
                status, body = self._post(
                    front.url + "/checkin", {"user_id": 3, "poi_id": 1, "timestamp": 0.0}
                )
                assert status == 400 and "--stateful" in body["error"]
        finally:
            server.stop(drain=True)


# ----------------------------------------------------------------------
# prequential replay
# ----------------------------------------------------------------------
class TestPrequentialReplay:
    @pytest.fixture(scope="class")
    def replay_setup(self, tiny_dataset, model):
        predictor = Predictor(model, graph_cache_size=256)
        events = events_from_checkins(tiny_dataset.checkins)[:300]
        return predictor, events

    def test_replay_matches_offline_evaluation(self, tiny_dataset, model, replay_setup):
        """Acceptance identity: replayed predictions equal the offline
        protocol's results over identical prefixes."""
        predictor, events = replay_setup
        report = prequential_replay(
            predictor,
            events,
            store_config=StoreConfig(max_sessions=10_000, max_session_visits=10_000),
            keep_results=True,
        )
        assert report.predictions > 20

        by_key = {
            (s.user_id, len(s.history), len(s.prefix)): s
            for s in make_samples(tiny_dataset)
        }
        matched = {key: by_key[key] for key in (r.key for r in report.records)}
        assert len(matched) == report.predictions  # every replay step exists offline
        reference = offline_reference(predictor, list(matched.values()))
        for record in report.records:
            offline = reference[record.key]
            assert record.result.ranked_pois == offline.ranked_pois, record.key
            assert record.rank == offline.poi_rank, record.key

    def test_batched_flush_equals_serial_flush(self, replay_setup):
        predictor, events = replay_setup
        serial = prequential_replay(predictor, events, batch_size=1)
        batched = prequential_replay(predictor, events, batch_size=32)
        assert serial.ranks == batched.ranks
        assert serial.metrics == batched.metrics

    def test_baseline_agrees_with_stream(self, replay_setup):
        predictor, events = replay_setup
        comparison = compare_replay(predictor, events[:150], batch_size=16)
        assert comparison["ranked_lists_identical"]
        assert comparison["stream"]["predictions"] == comparison["baseline"]["predictions"]
        assert comparison["stream"]["metrics"] == comparison["baseline"]["metrics"]

    def test_no_label_leakage_prediction_precedes_ingest(self, model):
        """A replayed prediction must not see its own event: with a
        2-event stream the single prediction's history/prefix is the
        state before event 2."""
        predictor = Predictor(model, graph_cache_size=16)
        report = prequential_replay(
            predictor,
            [ev(1, 3, 0.0), ev(1, 4, 1.0)],
            keep_results=True,
        )
        assert report.predictions == 1
        record = report.records[0]
        assert (record.history_len, record.prefix_len) == (0, 1)
        assert record.target_poi == 4

    def test_session_openers_are_not_predicted(self, model):
        predictor = Predictor(model, graph_cache_size=16)
        report = prequential_replay(
            predictor,
            [ev(1, 3, 0.0), ev(1, 4, 500.0), ev(1, 5, 501.0)],
        )
        # event 2 opens a new session (gap) -> only event 3 is a test
        assert report.predictions == 1

    def test_rejects_bad_batch_size(self, model):
        with pytest.raises(ValueError):
            prequential_replay(Predictor(model, graph_cache_size=None), [], batch_size=0)

    def test_baseline_rejects_out_of_order(self, model):
        predictor = Predictor(model, graph_cache_size=None)
        with pytest.raises(ValueError, match="out-of-order"):
            serialised_rebuild_baseline(predictor, [ev(1, 3, 5.0), ev(1, 4, 1.0)])


# ----------------------------------------------------------------------
# sorted-invariant regression (satellite)
# ----------------------------------------------------------------------
class TestCheckinSortedInvariant:
    def test_of_user_sorts_out_of_order_input(self):
        shuffled = [
            Checkin(user_id=1, poi_id=3, timestamp=50.0),
            Checkin(user_id=1, poi_id=1, timestamp=10.0),
            Checkin(user_id=2, poi_id=9, timestamp=1.0),
            Checkin(user_id=1, poi_id=2, timestamp=30.0),
        ]
        dataset = CheckinDataset(shuffled)
        assert [c.poi_id for c in dataset.of_user(1)] == [1, 2, 3]
        times = [c.timestamp for c in dataset.of_user(1)]
        assert times == sorted(times)

    def test_stream_store_accepts_any_of_user_output(self):
        """The store's ordered-append requirement is satisfied by
        construction for every CheckinDataset, however unsorted the
        raw input was."""
        rng = np.random.default_rng(3)
        records = [
            Checkin(user_id=int(u), poi_id=int(p), timestamp=float(t))
            for u, p, t in zip(
                rng.integers(0, 5, 200), rng.integers(0, 40, 200), rng.uniform(0, 500, 200)
            )
        ]
        dataset = CheckinDataset(records)
        store = UserStateStore(StoreConfig(num_shards=2))
        for user in dataset.users():
            for record in dataset.of_user(user):
                store.append(CheckinEvent.from_checkin(record))  # must not raise
        assert store.stats()["events"] == 200
