"""MC: first-order Markov chain baseline [refs 1, 2 in the paper].

Predicts the next POI from a stationary transition matrix estimated by
counting consecutive visits in the training trajectories, backing off
to global popularity for unseen source POIs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.trajectory import PredictionSample
from ..serve.protocol import PredictorBase, PredictorResult, target_poi_of


class MarkovChain(PredictorBase):
    """Count-based model; no gradients."""

    name = "MC"
    requires_gradient_training = False

    def __init__(self, num_pois: int, smoothing: float = 0.1):
        self.num_pois = num_pois
        self.smoothing = smoothing
        self.transitions = np.zeros((num_pois, num_pois), dtype=np.float64)
        self.popularity = np.zeros(num_pois, dtype=np.float64)
        self._fitted = False
        self._version = 0

    def fit(self, samples: Sequence[PredictionSample]) -> "MarkovChain":
        """Count transitions along every (prefix, target) chain."""
        for sample in samples:
            chain = sample.prefix_poi_ids + [sample.target.poi_id]
            for src, dst in zip(chain, chain[1:]):
                self.transitions[src, dst] += 1.0
            for poi in chain:
                self.popularity[poi] += 1.0
        self._fitted = True
        self._version += 1
        return self

    def scores_batch(self, last_poi_ids: Sequence[int]) -> np.ndarray:
        """Score rows for a batch of current POIs: ``(batch, num_pois)``.

        One gather over the transition matrix; unseen source POIs (an
        all-zero count row) back off to global popularity, seen ones
        get the normalised row plus smoothed popularity.
        """
        if not self._fitted:
            raise RuntimeError("MarkovChain.fit() must run before prediction")
        rows = self.transitions[np.asarray(last_poi_ids, dtype=np.int64)]
        row_sums = rows.sum(axis=1, keepdims=True)
        pop = self.popularity / max(self.popularity.sum(), 1.0)
        return np.where(
            row_sums == 0,
            pop[None, :],
            rows / np.where(row_sums == 0, 1.0, row_sums) + self.smoothing * pop[None, :],
        )

    def scores(self, sample: PredictionSample) -> np.ndarray:
        return self.scores_batch([sample.prefix[-1].poi_id])[0]

    def predict(
        self, sample: PredictionSample, *shared, k: Optional[int] = None
    ) -> PredictorResult:
        order = np.argsort(-self.scores(sample), kind="stable")
        return PredictorResult(
            ranked_pois=[int(i) for i in order],
            target_poi=target_poi_of(sample),
            num_pois=self.num_pois,
        )

    def predict_batch(
        self, samples: Sequence[PredictionSample], *shared, k: Optional[int] = None
    ) -> List[PredictorResult]:
        """Vectorised: one row gather + one batched argsort."""
        if not samples:
            return []
        scored = self.scores_batch([s.prefix[-1].poi_id for s in samples])
        orders = np.argsort(-scored, axis=1, kind="stable")
        return [
            PredictorResult(
                ranked_pois=[int(i) for i in order],
                target_poi=target_poi_of(sample),
                num_pois=self.num_pois,
            )
            for order, sample in zip(orders, samples)
        ]

    def score_candidates(
        self, sample: PredictionSample, candidate_ids: Sequence[int], *shared
    ) -> np.ndarray:
        return self.scores(sample)[np.asarray(candidate_ids, dtype=np.int64)]

    # interface parity with Module-based baselines
    def eval(self):
        return self

    def train(self, mode: bool = True):
        return self

    def num_parameters(self) -> int:
        return 0

    def weights_version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    # persistence (the count tables ARE the weights)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {
            "transitions": self.transitions.copy(),
            "popularity": self.popularity.copy(),
            "fitted": np.array([1.0 if self._fitted else 0.0]),
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.transitions = np.asarray(state["transitions"], dtype=np.float64).copy()
        self.popularity = np.asarray(state["popularity"], dtype=np.float64).copy()
        self._fitted = bool(np.asarray(state["fitted"]).ravel()[0] > 0)
        self._version += 1
