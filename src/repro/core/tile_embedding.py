"""Tile embedding module Me1 (paper Sec. IV-A, Fig. 6).

Three successive stride-2 CNN layers compress each remote-sensing tile
image — the paper's memory-saving replacement for 2x2 max pooling —
then the compressed hyper-image is flattened, pushed through a
feed-forward layer to dimension d_m, and L2-normalised.

The ablation variant (``use_imagery=False``, Table IV "No Imagery")
swaps the CNN for a plain learnable per-tile table.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor, conv2d, l2_normalize
from ..autograd.functional import im2col
from ..imagery import ImageryCatalog
from ..nn import Conv2d, Embedding, Linear, Module
from ..utils.rng import default_rng


class ImageTileEmbedder(Module):
    """CNN image encoder producing E_T from the imagery catalog."""

    def __init__(
        self,
        catalog: ImageryCatalog,
        num_tiles: int,
        dim: int,
        channels: Sequence[int] = (8, 16, 32),
        rng=None,
    ):
        super().__init__()
        rng = rng or default_rng()
        self.catalog = catalog
        self.num_tiles = num_tiles
        self.dim = dim
        resolution = catalog.resolution
        if resolution % 8 != 0:
            raise ValueError("imagery resolution must be divisible by 8 (three stride-2 layers)")
        c1, c2, c3 = channels
        # Paper Fig. 6: three stride-2 convolutions replace pooling.
        self.conv1 = Conv2d(3, c1, kernel_size=3, stride=2, padding=1, rng=rng)
        self.conv2 = Conv2d(c1, c2, kernel_size=3, stride=2, padding=1, rng=rng)
        self.conv3 = Conv2d(c2, c3, kernel_size=3, stride=2, padding=1, rng=rng)
        flat = c3 * (resolution // 8) ** 2
        self.project = Linear(flat, dim, rng=rng)
        # static-input fast path for all_embeddings: the full-tile image
        # stack and its first-layer im2col columns never change, so the
        # per-training-batch re-encode of E_T skips both
        self._all_images: Optional[Tensor] = None
        self._all_cols: Optional[np.ndarray] = None

    def forward(self, tile_ids: Sequence[int]) -> Tensor:
        """Embeddings for a list of tile ids, shape ``(len(ids), dim)``.

        The final step normalises "across the feature space" (paper
        Fig. 6): embeddings are centred over the tile set before L2
        normalisation.  Without the centring, untrained ReLU features
        live in a narrow positive cone (pairwise cosine near 1) and
        cosine ranking over tiles is ill-conditioned.
        """
        images = self.catalog.images_for(tile_ids)  # (n, 3, R, R)
        return self._encode(Tensor(images), cols=None)

    def _encode(self, x: Tensor, cols) -> Tensor:
        x = conv2d(
            x, self.conv1.weight, self.conv1.bias,
            stride=self.conv1.stride, padding=self.conv1.padding, cols=cols,
        ).relu()
        x = self.conv2(x).relu()
        x = self.conv3(x).relu()
        x = x.reshape(x.shape[0], -1)
        x = self.project(x)
        if x.shape[0] > 1:
            x = x - x.mean(axis=0, keepdims=True)
        return l2_normalize(x, axis=-1)

    def all_embeddings(self) -> Tensor:
        """E_T for every tile (leaves and internal nodes)."""
        if self._all_images is None:
            images = self.catalog.images_for(list(range(self.num_tiles)))
            self._all_images = Tensor(images)
            self._all_cols, _, _ = im2col(
                images, self.conv1.weight.shape[-1], self.conv1.stride, self.conv1.padding
            )
        return self._encode(self._all_images, cols=self._all_cols)


class TableTileEmbedder(Module):
    """Learnable per-tile table: the "No Imagery" ablation stand-in."""

    def __init__(self, num_tiles: int, dim: int, rng=None):
        super().__init__()
        self.num_tiles = num_tiles
        self.table = Embedding(num_tiles, dim, rng=rng or default_rng())

    def forward(self, tile_ids: Sequence[int]) -> Tensor:
        return l2_normalize(self.table(np.asarray(tile_ids, dtype=np.int64)), axis=-1)

    def all_embeddings(self) -> Tensor:
        return self.forward(list(range(self.num_tiles)))
