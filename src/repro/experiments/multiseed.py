"""Multi-seed experiment support.

The paper reports "the average value of five experiments with
different random seeds" (Sec. VI-B).  These helpers run any
model/dataset combination across seeds and aggregate mean and standard
deviation per metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import TSPNRAConfig
from .harness import prepare, run_one
from .profile import ExperimentProfile


@dataclass
class AggregatedMetrics:
    """Mean and standard deviation per metric across seeds."""

    mean: Dict[str, float]
    std: Dict[str, float]
    seeds: List[int]

    def summary(self, columns: Sequence[str]) -> str:
        return "  ".join(
            f"{c}={self.mean.get(c, float('nan')):.4f}±{self.std.get(c, 0.0):.4f}"
            for c in columns
        )


def run_multiseed(
    model_name: str,
    dataset_name: str,
    profile: ExperimentProfile,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    config: Optional[TSPNRAConfig] = None,
) -> AggregatedMetrics:
    """Train/evaluate one model across several seeds.

    Each seed regenerates the dataset, the split, the parameter init
    and the training shuffle — the full stochastic pipeline, as in the
    paper's protocol.
    """
    rows: List[Dict[str, float]] = []
    for seed in seeds:
        data = prepare(dataset_name, profile, seed=seed)
        metrics, _ = run_one(model_name, data, profile, config=config, seed=seed)
        rows.append(metrics)
    keys = rows[0].keys()
    mean = {k: float(np.mean([r[k] for r in rows])) for k in keys}
    std = {k: float(np.std([r[k] for r in rows])) for k in keys}
    return AggregatedMetrics(mean=mean, std=std, seeds=list(seeds))
