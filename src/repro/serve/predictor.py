"""Serving facade: cached shared state, batched inference, stats.

:class:`Predictor` wraps any :class:`~repro.serve.protocol.PredictorProtocol`
model as a long-lived recommendation service:

* shared embedding tables are computed once and reused across requests,
  invalidated automatically when the model's ``weights_version`` moves
  (optimiser steps and ``load_state_dict`` both bump it);
* per-user QR-P graphs are bounded by an LRU cache instead of the
  model's default unbounded dict;
* every request batch is timed, so latency/throughput roll up in
  :class:`ServeStats`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..autograd import no_grad
from ..data.trajectory import PredictionSample, Trajectory, Visit
from ..utils.cache import LRUCache
from .checkpoint import load_checkpoint
from .protocol import PredictorResult


@dataclass
class ServeStats:
    """Rolling counters for one predictor instance."""

    requests: int = 0
    batches: int = 0
    total_seconds: float = 0.0
    embedding_refreshes: int = 0
    embedding_cache_hits: int = 0

    @property
    def mean_latency_ms(self) -> float:
        return 1000.0 * self.total_seconds / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Requests served per second of inference time."""
        return self.requests / self.total_seconds if self.total_seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = dict(asdict(self))
        out["mean_latency_ms"] = self.mean_latency_ms
        out["throughput"] = self.throughput
        return out


class Predictor:
    """A trained model, served.

    Unless ``graph_cache_size=None``, the model's per-user graph cache
    is replaced by an LRU of that size (warm entries migrated) — a
    deliberate, lasting adoption for long-lived serving; pass ``None``
    for throwaway measurement facades.
    """

    def __init__(self, model, graph_cache_size: Optional[int] = 256):
        self.model = model
        self.dataset = None  # set by from_checkpoint
        self.stats = ServeStats()
        self._shared: Optional[Tuple[Any, ...]] = None
        self._shared_version: Optional[int] = None
        self.graph_cache: Optional[LRUCache] = None
        if graph_cache_size is not None:
            cache = LRUCache(graph_cache_size)
            if model.set_graph_cache(cache):
                self.graph_cache = cache

    @classmethod
    def from_checkpoint(cls, path, dataset=None, **kwargs) -> "Predictor":
        """Serve a checkpoint without retraining."""
        loaded = load_checkpoint(path, dataset=dataset)
        predictor = cls(loaded.model, **kwargs)
        predictor.dataset = loaded.dataset
        return predictor

    # ------------------------------------------------------------------
    # shared-state cache
    # ------------------------------------------------------------------
    def shared_state(self) -> Tuple[Any, ...]:
        """Cached ``compute_embeddings()``, refreshed on weight updates."""
        version = self.model.weights_version()
        if self._shared is None or version != self._shared_version:
            self._shared = self.model.compute_embeddings()
            self._shared_version = version
            self.stats.embedding_refreshes += 1
        else:
            self.stats.embedding_cache_hits += 1
        return self._shared

    def invalidate(self) -> None:
        """Drop cached shared state (forced refresh on the next request)."""
        self._shared = None
        self._shared_version = None

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict(self, sample: PredictionSample, k: Optional[int] = None) -> PredictorResult:
        return self.predict_batch([sample], k=k)[0]

    def predict_batch(
        self, samples: Sequence[PredictionSample], k: Optional[int] = None
    ) -> List[PredictorResult]:
        """Serve a batch, reusing the cached shared embeddings.

        The model runs in eval mode for the batch and its prior
        train/eval mode is restored afterwards, so a mid-training
        evaluation hook can wrap the live model safely.
        """
        start = time.perf_counter()
        was_training = getattr(self.model, "training", False)
        self.model.eval()
        try:
            with no_grad():
                shared = self.shared_state()
                results = [self.model.predict(sample, *shared, k=k) for sample in samples]
        finally:
            self.model.train(was_training)
        self.stats.total_seconds += time.perf_counter() - start
        self.stats.requests += len(results)
        self.stats.batches += 1
        return results

    def target_rank(self, sample: PredictionSample) -> int:
        return self.predict(sample).poi_rank

    def recommend(
        self,
        visits: Sequence[Visit],
        history: Sequence[Trajectory] = (),
        user_id: int = -1,
        k: int = 10,
    ) -> List[int]:
        """Top-k next-POI recommendations for a live user history.

        ``visits`` is the in-progress trajectory; ``history`` the user's
        earlier trajectories (feeds QR-P graph construction).  There is
        no ground-truth target, so the sample is built with
        ``target=None``.
        """
        visits = list(visits)
        if not visits:
            raise ValueError("recommend() needs at least one visit")
        history = list(history)
        # key by history content so equal requests share one cached graph
        key = (user_id, hash(tuple(v.poi_id for t in history for v in t.visits)))
        sample = PredictionSample(
            user_id=user_id, history=history, prefix=visits, target=None, history_key=key
        )
        return self.predict(sample).top_k(k)


def compare_throughput(model, samples: Sequence[PredictionSample], repeats: int = 1) -> Dict[str, float]:
    """Samples/sec served with vs without the shared-embedding cache.

    The uncached loop recomputes ``compute_embeddings()`` per request —
    exactly what the pre-serve research loop did when callers used bare
    ``model.predict(sample)``.
    """
    samples = list(samples)
    model.eval()
    start = time.perf_counter()
    with no_grad():
        for _ in range(repeats):
            for sample in samples:
                model.predict(sample, *model.compute_embeddings())
    uncached_seconds = time.perf_counter() - start

    # graph_cache_size=None: a measurement facade must not swap the
    # caller's model cache out from under it
    predictor = Predictor(model, graph_cache_size=None)
    start = time.perf_counter()
    for _ in range(repeats):
        predictor.predict_batch(samples)
    cached_seconds = time.perf_counter() - start

    count = len(samples) * repeats
    return {
        "samples": float(count),
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "uncached_sps": count / uncached_seconds if uncached_seconds > 0 else float("inf"),
        "cached_sps": count / cached_seconds if cached_seconds > 0 else float("inf"),
        "speedup": uncached_seconds / cached_seconds if cached_seconds > 0 else float("inf"),
    }
