"""Figure 11 — interaction between the two prediction steps.

Paper shape to reproduce: (a) tile accuracy rises monotonically with
inference-time K while POI Recall@5 peaks at a moderate K; (b) the
candidate-set size grows steeply with K; (c) the two selection-rate
curves cross near the Recall@5 peak.
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.figures import fig11_crossover, run_fig11


def bench_fig11(benchmark, profile, save_report):
    points = benchmark.pedantic(run_fig11, args=(profile,), rounds=1, iterations=1)
    rows = [
        [
            str(p.k),
            f"{p.tile_accuracy:.3f}",
            f"{p.poi_recall5:.3f}",
            f"{p.mean_candidates:.1f}",
            f"{p.tile_selection_rate:.1f}",
            f"{p.poi_selection_rate:.1f}",
        ]
        for p in points
    ]
    report = format_table(
        ["K", "TileAcc@K", "POI R@5", "Candidates", "TileSelRate", "POISelRate"],
        rows,
        title="Fig. 11 — impact of top-K tiles at inference",
    )
    crossover = fig11_crossover(points)
    report += f"\nselection-rate crossover at K ~= {crossover}"
    save_report("fig11", report)

    accs = [p.tile_accuracy for p in points]
    assert all(b >= a - 1e-9 for a, b in zip(accs, accs[1:])), "tile accuracy must rise with K"
    cands = [p.mean_candidates for p in points]
    assert cands[-1] > cands[0], "candidate count must grow with K"
    assert crossover is not None
