"""Model-quality observability: windowed counters, the prequential
quality monitor, drift detection, shift scenarios, and the end-to-end
HTTP identity between scraped quality metrics and offline accounting."""

import json
import math
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset
from repro.obs import (
    DriftDetector,
    MetricsRegistry,
    QualityMonitor,
    WindowedCounter,
    cold_start_stratum,
    merge_windowed_snapshots,
    parse_prometheus,
    render_prometheus,
)
from repro.cluster import ClusterConfig, ClusterHttpFrontend, ClusterRouter
from repro.serve import HttpFrontend, InferenceServer, ServerConfig, save_checkpoint
from repro.stream import (
    CheckinEvent,
    StoreConfig,
    StreamIngest,
    UserStateStore,
    events_from_checkins,
    popularity_shift_events,
)
from repro.utils import spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)


@pytest.fixture(scope="module")
def model(tiny_dataset):
    model = TSPNRA.from_dataset(tiny_dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    model.eval()
    return model


def ev(user, poi, t):
    return CheckinEvent(user_id=user, poi_id=poi, timestamp=float(t))


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class Sample:
    """Duck-typed PredictionSample: just what the monitor reads."""

    def __init__(self, user_id, history=(), prefix=(), target=None,
                 history_key=None):
        self.user_id = user_id
        self.history = history
        self.prefix = prefix
        self.target = target
        self.history_key = history_key


class Result:
    def __init__(self, ranked_pois):
        self.ranked_pois = list(ranked_pois)


class Visit:
    def __init__(self, poi_id, timestamp):
        self.poi_id = poi_id
        self.timestamp = timestamp


# ----------------------------------------------------------------------
# windowed counters
# ----------------------------------------------------------------------
class TestWindowedCounter:
    def test_sums_within_window_and_forgets(self):
        clock = FakeClock(0.0)
        counter = WindowedCounter("w", window_seconds=60.0, slots=6, clock=clock)
        counter.inc(2.0)
        clock.now = 30.0
        counter.inc(3.0)
        assert counter.value == 5.0
        clock.now = 59.0  # first cell still inside the window
        assert counter.value == 5.0
        clock.now = 65.0  # first cell (slot 0) aged out; second survives
        assert counter.value == 3.0
        clock.now = 200.0
        assert counter.value == 0.0

    def test_rejects_negative_and_bad_shape(self):
        counter = WindowedCounter("w", window_seconds=10.0, slots=5)
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        with pytest.raises(ValueError):
            WindowedCounter("w", window_seconds=0.0)
        with pytest.raises(ValueError):
            WindowedCounter("w", window_seconds=10.0, slots=0)

    def test_memory_bounded_by_slots(self):
        clock = FakeClock(0.0)
        counter = WindowedCounter("w", window_seconds=10.0, slots=5, clock=clock)
        for step in range(50):
            clock.now = float(step * 2)  # a new slot every inc
            counter.inc()
        assert len(counter._cells) <= 5

    def test_inc_at_matches_inc(self):
        clock = FakeClock(100.0)
        a = WindowedCounter("a", window_seconds=60.0, slots=6, clock=clock)
        b = WindowedCounter("b", window_seconds=60.0, slots=6, clock=clock)
        a.inc(1.5)
        b.inc_at(b._now_slot(), 1.5)
        assert a.snapshot()["cells"] == b.snapshot()["cells"]

    def test_merge_aligns_by_absolute_slot(self):
        clock = FakeClock(0.0)
        kwargs = dict(window_seconds=60.0, slots=6, clock=clock)
        a = WindowedCounter("w", **kwargs)
        b = WindowedCounter("w", **kwargs)
        a.inc(1.0)
        clock.now = 30.0
        b.inc(10.0)
        merged = merge_windowed_snapshots([a.snapshot(), b.snapshot()])
        assert merged["value"] == 11.0
        # cells stay keyed by absolute slot index, not per-process age
        assert set(merged["cells"]) == {"0", "3"}

    def test_merge_rejects_mismatched_windows(self):
        a = WindowedCounter("w", window_seconds=60.0, slots=6)
        b = WindowedCounter("w", window_seconds=30.0, slots=6)
        with pytest.raises(ValueError):
            merge_windowed_snapshots([a.snapshot(), b.snapshot()])

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.windowed("w", "h", {"s": "0"}, window_seconds=60.0)
        again = registry.windowed("w", "h", {"s": "0"}, window_seconds=60.0)
        other = registry.windowed("w", "h", {"s": "1"}, window_seconds=60.0)
        assert first is again and first is not other


# ----------------------------------------------------------------------
# the quality monitor
# ----------------------------------------------------------------------
class TestQualityMonitor:
    def test_cold_start_stratum(self):
        assert cold_start_stratum(0) == "0"
        assert cold_start_stratum(1) == "1"
        assert cold_start_stratum(2) == "2+"
        assert cold_start_stratum(99) == "2+"

    def test_labelled_sample_joins_immediately_with_exact_ranks(self):
        q = QualityMonitor(MetricsRegistry(), top_k=20)
        ranked = Result(range(100, 140))
        # rank 1 hit, rank 7 hit, and a miss
        assert q.record(Sample(1, target=Visit(100, 0.0)), ranked) == "joined"
        assert q.record(Sample(2, target=Visit(106, 0.0)), ranked) == "joined"
        assert q.record(Sample(3, target=Visit(999, 0.0)), ranked) == "joined"
        s = q.summary()["strata"]["0"]
        assert s["window"]["joins"] == 3
        assert s["window"]["hits"] == {"5": 1, "10": 2, "20": 2}
        assert s["window"]["mrr_sum"] == pytest.approx(1.0 + 1.0 / 7.0)
        assert s["window"]["ndcg_sum"]["10"] == pytest.approx(
            1.0 + 1.0 / math.log2(8)
        )
        assert s["recall"]["10"] == pytest.approx(2.0 / 3.0)
        assert q.pending_count() == 0

    def test_unlabelled_prediction_joins_on_next_checkin_exactly_once(self):
        q = QualityMonitor(MetricsRegistry(), top_k=10)
        assert q.record(Sample(7), Result([4, 5, 6])) == "pending"
        assert q.pending_count() == 1
        assert q.observe_checkin(ev(7, 5, 1.0)) == "joined"  # rank 2
        # exactly once: the second check-in finds nothing pending
        assert q.observe_checkin(ev(7, 5, 2.0)) is None
        summary = q.summary()
        assert summary["joins"]["0"] == 1
        assert summary["strata"]["0"]["window"]["mrr_sum"] == pytest.approx(0.5)

    def test_stratum_follows_history_length(self):
        q = QualityMonitor(MetricsRegistry())
        q.record(Sample(1, history=((),), target=Visit(0, 0.0)), Result([0]))
        q.record(Sample(2, history=((), ()), target=Visit(0, 0.0)), Result([0]))
        joins = q.summary()["joins"]
        assert joins == {"0": 0, "1": 1, "2+": 1}

    def test_anonymous_traffic_skipped(self):
        q = QualityMonitor(MetricsRegistry())
        assert q.record(Sample(-1), Result([1])) is None
        assert q.pending_count() == 0

    def test_two_pending_predictions_latest_wins(self):
        """Satellite: a re-served user replaces the stale pending entry;
        the join grades the *latest* answer and counts exactly once."""
        q = QualityMonitor(MetricsRegistry(), top_k=10)
        q.record(Sample(7), Result([1, 2, 3]))       # stale: label would rank 1
        q.record(Sample(7), Result([9, 8, 1]))       # latest: label ranks 3
        assert q.pending_count() == 1
        assert q.summary()["replaced"] == 1
        assert q.observe_checkin(ev(7, 1, 1.0)) == "joined"
        s = q.summary()
        assert s["joins"]["0"] == 1
        assert s["strata"]["0"]["window"]["mrr_sum"] == pytest.approx(1.0 / 3.0)
        assert q.observe_checkin(ev(7, 1, 2.0)) is None

    def test_session_roll_expires_instead_of_joining(self):
        """Satellite: the user's session rolls before they return — the
        prediction's context is stale, so it expires and never joins."""

        class Rolled:
            session_rolled = True

        q = QualityMonitor(MetricsRegistry())
        q.record(Sample(3), Result([1, 2]))
        assert q.observe_checkin(ev(3, 1, 100.0), Rolled()) == "expired"
        s = q.summary()
        assert s["expired"] == 1
        assert sum(s["joins"].values()) == 0
        assert q.pending_count() == 0

    def test_gap_rule_sweeps_stale_pending_entries(self):
        q = QualityMonitor(MetricsRegistry(), gap_hours=72.0)
        q.record(Sample(1, prefix=(Visit(0, 10.0),)), Result([1]))
        q.record(Sample(2, prefix=(Visit(0, 100.0),)), Result([1]))
        # another user's event advances the watermark past user 1's gap
        assert q.observe_checkin(ev(9, 0, 10.0 + 73.0)) is None
        assert q.pending_count() == 1  # user 1 swept, user 2 survives
        assert q.summary()["expired"] == 1

    def test_ring_bound_evicts_fifo(self):
        q = QualityMonitor(MetricsRegistry(), max_pending=2)
        for user in (1, 2, 3):
            q.record(Sample(user), Result([1]))
        assert q.pending_count() == 2
        assert q.summary()["evicted"] == 1
        assert q.observe_checkin(ev(1, 1, 0.0)) is None  # oldest was dropped
        assert q.observe_checkin(ev(3, 1, 0.0)) == "joined"

    def test_top_k_widened_to_largest_cutoff(self):
        q = QualityMonitor(MetricsRegistry(), top_k=5, ks=(5, 10))
        assert q.top_k == 10

    def test_metrics_ride_prometheus_exposition(self):
        registry = MetricsRegistry()
        q = QualityMonitor(registry, top_k=10)
        q.record(Sample(1, target=Visit(4, 0.0)), Result([4, 5, 6]))
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed[("repro_quality_joins_total", (("stratum", "0"),))] == 1.0
        assert parsed[
            ("repro_quality_recall", (("k", "5"), ("stratum", "0")))
        ] == 1.0
        assert parsed[
            ("repro_quality_recall", (("k", "5"), ("stratum", "all")))
        ] == 1.0
        assert parsed[("repro_quality_pending", ())] == 0.0


# ----------------------------------------------------------------------
# ingest observers
# ----------------------------------------------------------------------
class TestIngestObservers:
    def test_observer_sees_event_and_append_result(self):
        seen = []
        ingest = StreamIngest(UserStateStore(StoreConfig()))
        ingest.add_observer(lambda event, result: seen.append((event, result)))
        ingest.ingest(ev(1, 2, 0.0))
        assert len(seen) == 1
        assert seen[0][0].poi_id == 2
        assert seen[0][1].state_version == 1
        assert ingest.stats()["observers"] == 1

    def test_observer_exceptions_contained(self):
        """Observability must never fail ingestion."""
        ingest = StreamIngest(UserStateStore(StoreConfig()))
        ingest.add_observer(lambda *a: (_ for _ in ()).throw(RuntimeError("boom")))
        result = ingest.ingest(ev(1, 2, 0.0))
        assert result.state_version == 1
        assert ingest.stats()["observer_errors"] == 1

    def test_quality_join_through_real_ingest_roll(self):
        """The 72h rule on the real store expires the pending entry."""
        registry = MetricsRegistry()
        q = QualityMonitor(registry)
        ingest = StreamIngest(UserStateStore(StoreConfig(gap_hours=72.0)))
        ingest.add_observer(q.observe_checkin)
        ingest.ingest(ev(5, 1, 0.0))
        q.record(Sample(5, prefix=(Visit(1, 0.0),)), Result([2, 3]))
        # next check-in is 73h later: the store rolls the session
        ingest.ingest(ev(5, 2, 73.0))
        s = q.summary()
        assert s["expired"] == 1
        assert sum(s["joins"].values()) == 0

    def test_pending_ring_is_ephemeral_across_recovery(self, tmp_path):
        """Satellite: after a crash-and-recover the WAL rebuilds the
        store but the pending ring is gone by design — the recovered
        tier's counters restart clean and no pre-crash prediction can
        mis-join post-recovery traffic."""
        from repro.cluster import DurableIngest, EventLogWriter, recover_store

        store_config = StoreConfig(gap_hours=72.0)
        ingest = DurableIngest(
            UserStateStore(store_config),
            log=EventLogWriter(tmp_path, fsync="never"),
        )
        quality = QualityMonitor(MetricsRegistry())
        ingest.add_observer(quality.observe_checkin)
        ingest.ingest(ev(5, 1, 0.0))
        quality.record(Sample(5, prefix=(Visit(1, 0.0),)), Result([2, 3]))
        assert quality.pending_count() == 1
        ingest.log.close()  # crash: the monitor dies with the process

        recovery = recover_store(tmp_path, config=store_config)
        assert recovery.store.snapshot(5) is not None  # state survived
        recovered = QualityMonitor(MetricsRegistry())
        summary = recovered.summary()
        assert recovered.pending_count() == 0
        assert sum(summary["predictions"].values()) == 0
        assert sum(summary["joins"].values()) == 0
        # the pre-crash user's next check-in joins nothing
        assert recovered.observe_checkin(ev(5, 2, 1.0)) is None


# ----------------------------------------------------------------------
# drift detection
# ----------------------------------------------------------------------
class TestDriftDetector:
    def _feed(self, detector, pois, start_t=0.0):
        for index, poi in enumerate(pois):
            detector.update(ev(index % 7, poi, start_t + index * 0.01))

    def test_quiet_until_reference_frozen_and_window_filled(self):
        d = DriftDetector(MetricsRegistry(), window=20, reference=20)
        self._feed(d, [i % 5 for i in range(10)])
        assert not d.alert() and d.psi() == 0.0
        assert not d.summary()["frozen"]
        self._feed(d, [i % 5 for i in range(10)], start_t=1.0)
        assert d.summary()["frozen"]
        assert not d.alert()  # window still under min_window

    def test_stationary_stream_stays_quiet(self):
        d = DriftDetector(MetricsRegistry(), window=32, reference=32)
        self._feed(d, [i % 6 for i in range(96)])
        assert d.summary()["frozen"]
        assert d.psi("poi") < d.threshold
        assert not d.alert()

    def test_popularity_shift_trips_alert(self):
        d = DriftDetector(MetricsRegistry(), window=32, reference=32)
        self._feed(d, [i % 6 for i in range(64)])
        assert not d.alert()
        self._feed(d, [100 + (i % 6) for i in range(64)], start_t=10.0)
        assert d.psi("poi") > d.threshold
        assert d.alert()
        assert d.summary()["alert"]

    def test_tile_distribution_tracked_when_mapper_given(self):
        d = DriftDetector(
            MetricsRegistry(), window=16, reference=16, tile_of=lambda poi: poi // 10
        )
        self._feed(d, [i % 6 for i in range(48)])
        assert set(d.summary()["distributions"]) == {"poi", "tile"}

    def test_freeze_reference_early(self):
        d = DriftDetector(MetricsRegistry(), window=8, reference=1000, min_window=4)
        self._feed(d, [1, 2, 3, 1, 2, 3])
        d.freeze_reference()
        assert d.summary()["frozen"]
        self._feed(d, [9] * 8, start_t=5.0)
        assert d.alert()

    def test_events_counter_includes_reference_phase(self):
        registry = MetricsRegistry()
        d = DriftDetector(registry, window=16, reference=16)
        self._feed(d, [1] * 4)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed[("repro_drift_events_total", ())] == 4.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(MetricsRegistry(), window=0)
        with pytest.raises(ValueError):
            DriftDetector(MetricsRegistry(), bins=1)
        with pytest.raises(ValueError):
            DriftDetector(MetricsRegistry(), threshold=0.0)


# ----------------------------------------------------------------------
# shift scenarios
# ----------------------------------------------------------------------
class TestShiftScenario:
    def test_permutes_only_after_cut_preserving_shape(self):
        events = [ev(u, u % 5, t) for t, u in enumerate(range(10))]
        scenario = popularity_shift_events(events, 5, shift_at=0.5, seed=3)
        assert scenario.shift_index == 5
        assert scenario.pre_shift == events[:5]
        for before, after in zip(events[5:], scenario.post_shift):
            assert after.user_id == before.user_id
            assert after.timestamp == before.timestamp
            assert after.poi_id == scenario.permutation[before.poi_id]
        assert sorted(scenario.permutation) == list(range(5))

    def test_validation(self):
        events = [ev(1, 0, 0.0)]
        with pytest.raises(ValueError, match="shift_at"):
            popularity_shift_events(events, 5, shift_at=1.0)
        with pytest.raises(ValueError, match="2 POIs"):
            popularity_shift_events(events, 1)
        with pytest.raises(ValueError, match="outside"):
            popularity_shift_events([ev(1, 9, 0.0)], 5)

    def test_seed_determinism(self):
        events = [ev(u, u % 4, float(u)) for u in range(8)]
        one = popularity_shift_events(events, 4, seed=1)
        two = popularity_shift_events(events, 4, seed=1)
        other = popularity_shift_events(events, 4, seed=2)
        assert one.permutation == two.permutation
        assert one.permutation != other.permutation


# ----------------------------------------------------------------------
# end-to-end over HTTP: scraped quality == offline accounting
# ----------------------------------------------------------------------
class TestQualityOverHttp:
    @staticmethod
    def _post(url, payload):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    @staticmethod
    def _get(url):
        with urllib.request.urlopen(url, timeout=30) as response:
            return json.loads(response.read())

    def test_scraped_window_equals_offline_join_accounting(
        self, tiny_dataset, model
    ):
        """The acceptance identity: replay live traffic over real HTTP —
        predict, then check the user in where they actually went — and
        the windowed Recall@K / MRR scraped from ``/metrics`` must equal
        the same window computed offline from the predictions this test
        itself issued.  Exact join accounting, not approximate."""
        events = events_from_checkins(tiny_dataset.checkins)[:160]
        store = UserStateStore(StoreConfig())
        config = ServerConfig(
            workers=2, max_batch_size=8, max_wait_ms=1.0, quality_topk=20
        )
        expected = {
            s: {"joins": 0, "hits": {5: 0, 10: 0, 20: 0}, "mrr": 0.0,
                "ndcg": {5: 0.0, 10: 0.0, 20: 0.0}}
            for s in ("0", "1", "2+")
        }
        predictions = expired = 0
        pending = {}  # user -> (stratum, top-20 list) — mirrors the ring
        sessions = {}  # user -> completed-session count (offline mirror)
        server = InferenceServer(model, config=config, state_store=store).start()
        front = HttpFrontend(server, port=0).start()
        try:
            url = front.url
            for event in events:
                if event.user_id in sessions:
                    # serve before ingest: the prequential test step
                    status, body = self._post(
                        url + "/predict", {"user_id": event.user_id, "k": 20}
                    )
                    assert status == 200, body
                    completed = sessions[event.user_id]
                    stratum = ("0", "1", "2+")[min(completed, 2)]
                    pending[event.user_id] = (stratum, body["top_pois"])
                    predictions += 1
                status, body = self._post(url + "/checkin", {
                    "user_id": event.user_id,
                    "poi_id": event.poi_id,
                    "timestamp": event.timestamp,
                })
                assert status == 200, body
                rolled = body["session_rolled"]
                sessions[event.user_id] = (
                    sessions.get(event.user_id, 0) + (1 if rolled else 0)
                )
                if event.user_id not in pending:
                    continue
                stratum, top_pois = pending.pop(event.user_id)
                if rolled:
                    expired += 1
                    continue
                bucket = expected[stratum]
                bucket["joins"] += 1
                if event.poi_id in top_pois:
                    rank = top_pois.index(event.poi_id) + 1
                    bucket["mrr"] += 1.0 / rank
                    for k in (5, 10, 20):
                        if rank <= k:
                            bucket["hits"][k] += 1
                            bucket["ndcg"][k] += 1.0 / math.log2(rank + 1)

            assert predictions > 20, "tape too short to exercise the monitor"
            assert sum(b["joins"] for b in expected.values()) > 0

            scrape = urllib.request.urlopen(url + "/metrics", timeout=30)
            parsed = parse_prometheus(scrape.read().decode())
            report = self._get(url + "/quality")
        finally:
            front.stop()
            server.stop(drain=True)

        total_joins = sum(b["joins"] for b in expected.values())
        for stratum, bucket in expected.items():
            label = (("stratum", stratum),)
            assert parsed[("repro_quality_window_joins", label)] == bucket["joins"]
            assert parsed[("repro_quality_window_mrr_sum", label)] == pytest.approx(
                bucket["mrr"], rel=1e-12, abs=1e-12
            )
            for k in (5, 10, 20):
                klabel = (("k", str(k)), ("stratum", stratum))
                assert parsed[
                    ("repro_quality_window_hits", klabel)
                ] == bucket["hits"][k]
                if bucket["joins"]:
                    assert parsed[
                        ("repro_quality_recall", klabel)
                    ] == pytest.approx(bucket["hits"][k] / bucket["joins"])
            # the /quality JSON carries the identical raw window
            window = report["strata"][stratum]["window"]
            assert window["joins"] == bucket["joins"]
            assert window["hits"] == {
                str(k): bucket["hits"][k] for k in (5, 10, 20)
            }
            assert window["mrr_sum"] == pytest.approx(
                bucket["mrr"], rel=1e-12, abs=1e-12
            )
        # "all" is the strata sum, recomputed — not a mean of ratios
        assert report["strata"]["all"]["window"]["joins"] == total_joins
        assert parsed[
            ("repro_quality_mrr", (("stratum", "all"),))
        ] == pytest.approx(
            sum(b["mrr"] for b in expected.values()) / total_joins
        )
        assert sum(report["joins"].values()) == total_joins
        assert report["expired"] == expired
        assert sum(report["predictions"].values()) == predictions
        assert report["pending"] == len(pending)
        # drift rides the same report, fed by the same ingest hook
        assert report["drift"]["events"] == len(events)
        assert report["store_strata"]


# ----------------------------------------------------------------------
# cluster: per-shard reports merged by the router, degrading on death
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestClusterQuality:
    @pytest.fixture()
    def cluster(self, tiny_dataset, model, tmp_path):
        checkpoint = save_checkpoint(
            model, tmp_path / "tiny.npz", dataset=tiny_dataset
        )
        config = ClusterConfig(
            num_shards=2,
            snapshot_interval=50,
            heartbeat_interval_s=0.5,
            auto_restart=False,
            quality_topk=20,
        )
        router = ClusterRouter(checkpoint, tmp_path / "persist", config=config)
        router.start()
        try:
            yield router
        finally:
            router.stop()

    def test_merge_sums_windows_and_survives_a_dead_shard(
        self, tiny_dataset, cluster
    ):
        from repro.stream import events_from_checkins

        events = events_from_checkins(tiny_dataset.checkins)[:60]
        seen = set()
        expected_predictions = 0
        for event in events:
            if event.user_id in seen:
                reply = cluster.predict_user(event.user_id, k=20)
                assert reply["ok"], reply
                expected_predictions += 1
            seen.add(event.user_id)
            reply = cluster.checkin({
                "user_id": event.user_id,
                "poi_id": event.poi_id,
                "timestamp": event.timestamp,
            })
            assert reply["ok"], reply

        report = cluster.quality()
        assert report["enabled"] is True
        assert [s["status"] for s in report["shards"]] == ["ok", "ok"]
        merged = report["cluster"]
        shard_reports = [s["quality"] for s in report["shards"]]
        # the cluster section is the shard sum, ratios recomputed
        assert sum(merged["predictions"].values()) == expected_predictions
        total_joins = sum(
            sum(r["joins"].values()) for r in shard_reports
        )
        assert sum(merged["joins"].values()) == total_joins
        window = merged["strata"]["all"]["window"]
        assert window["joins"] == sum(
            r["strata"]["all"]["window"]["joins"] for r in shard_reports
        )
        assert window["hits"]["20"] == sum(
            r["strata"]["all"]["window"]["hits"]["20"] for r in shard_reports
        )
        if window["joins"]:
            assert merged["strata"]["all"]["recall"]["20"] == pytest.approx(
                window["hits"]["20"] / window["joins"]
            )
        assert isinstance(merged["drift_alert"], bool)

        with ClusterHttpFrontend(cluster, port=0) as front:
            with urllib.request.urlopen(front.url + "/quality", timeout=30) as r:
                assert r.status == 200
                http_report = json.loads(r.read())
            assert http_report["enabled"] is True

            # SIGKILL one shard: the report degrades, never fails
            victim = cluster.shards[1]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.time() + 10.0
            degraded = cluster.quality()
            while (
                all(s["status"] == "ok" for s in degraded["shards"])
                and time.time() < deadline
            ):
                time.sleep(0.2)
                degraded = cluster.quality()
            statuses = {s["shard"]: s["status"] for s in degraded["shards"]}
            assert statuses[1] == "down"
            assert statuses[0] == "ok"
            assert degraded["enabled"] is True  # the survivor still reports
            down = next(s for s in degraded["shards"] if s["status"] == "down")
            assert down["error"]
            with urllib.request.urlopen(front.url + "/quality", timeout=30) as r:
                assert r.status == 200  # HTTP scrape degrades too, no 500
