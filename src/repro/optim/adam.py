"""Adam optimiser (Kingma & Ba, 2015) — the paper's optimiser of choice."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class Adam:
    """Adam with optional decoupled weight decay and gradient clipping."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 2e-5,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = None,
    ):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def _clip(self) -> None:
        if self.max_grad_norm is None:
            return
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = np.sqrt(total)
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * scale

    def step(self) -> None:
        self._clip()
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                p.data = p.data * (1.0 - self.lr * self.weight_decay)
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / correction1
            v_hat = self._v[i] / correction2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.version += 1
