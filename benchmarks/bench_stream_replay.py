"""Prequential streaming replay: incremental state vs full rebuild —
BENCH_stream.

Seeds the BENCH trajectory for the ``repro.stream`` subsystem.  A
trained quick-profile NYC model replays the dataset's check-ins in
global time order through three deployments of the same predictor:

* **baseline** — the serialised, stateless cost model: every arrival
  that warrants a prediction first rebuilds the user's sessions from
  the raw log (the server holds no state) and recomputes the per-user
  QR-P graph from scratch, one request at a time;
* **stream** — the :class:`~repro.stream.UserStateStore` path: O(1)
  sharded appends, session rollover at the Δt gap rule, per-user QR-P
  graphs cached under ``("stream", user, history_version)`` keys and
  retired exactly when the history moves, and predictions flushed
  through the vectorised ``predict_batch`` in cross-user chunks
  (sound under prequential order because every sample is an immutable
  pre-ingest snapshot);
* **incremental** — the stream leg plus O(session) QR-P maintenance:
  the store keeps each user's live graph, session rollovers update it
  incrementally (:class:`~repro.graphs.QRPGraphMaintainer`) and push
  the fresh ``(qrp, masks)`` entry into the serving cache, so a
  rollover is cache-neutral instead of an O(history) rebuild on the
  next miss.

All legs make identical prediction decisions from identical inputs, so
their ranked lists must agree (asserted) — the comparison isolates the
*architecture*, not the model.  Legs run interleaved round-robin over
``ROUNDS`` rounds and each speedup is the median of per-round paired
ratios, the same discipline as BENCH_serve.  The acceptance gates
assert the streaming leg sustains >= 2x the baseline's ingest+predict
events/sec and the incremental leg >= 1.5x (it additionally holds off
rebuild-per-rollover).

Two model-quality-observability legs ride along: **quality overhead**
replays the same tape with the prequential
:class:`~repro.obs.QualityMonitor` + :class:`~repro.obs.DriftDetector`
off vs on (paired rounds; gate: watching costs <= 3%), and the **drift
scenario** permutes every POI id from mid-tape on
(:func:`~repro.stream.popularity_shift_events`) and asserts the
detector fires on the shifted tape, stays quiet on the stationary
control, and the prequential Recall@10 curve drops across the shift.
Alongside the human-readable table the run
emits ``benchmarks/results/BENCH_stream.json``.  Run standalone with
``PYTHONPATH=src python benchmarks/bench_stream_replay.py``
(the CI ``serve-smoke`` job does exactly that and uploads the JSON).
"""

import json
import statistics
from pathlib import Path

import pytest

from repro.experiments import format_table, get_profile, prepare, run_one
from repro.obs import DriftDetector, MetricsRegistry, QualityMonitor
from repro.serve import Predictor
from repro.stream import (
    StoreConfig,
    compare_replay,
    events_from_checkins,
    popularity_shift_events,
    prequential_replay,
)

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).parent / "results"

MAX_EVENTS = 1200
BATCH_SIZE = 32
ROUNDS = 3

#: Acceptance gate on the quality monitor's replay overhead: the
#: monitor-on leg may cost at most 3% over the identical monitor-off
#: leg (median of paired per-round ratios).
QUALITY_OVERHEAD_GATE = 0.03

#: Drift-scenario detector shape: the reference freezes over the first
#: 256 events (well inside the stationary half) and the sliding window
#: holds the most recent 256, so by tape end the window is pure
#: post-shift traffic.
DRIFT_WINDOW = 256

_WIDE_STORE = dict(max_sessions=4096, max_session_visits=4096)


def _reset_cache(predictor) -> None:
    cache = getattr(predictor, "graph_cache", None)
    if cache is not None:
        cache.clear()


def quality_overhead(predictor, events, rounds=ROUNDS):
    """Paired replay rounds with the quality monitor off vs on.

    Both passes of a round replay the identical tape through the
    incremental leg; the *on* pass additionally records every
    prediction into a :class:`QualityMonitor` (labelled-sample path —
    replay targets join immediately) and feeds every ingested event to
    a :class:`DriftDetector`.  The overhead is the median paired ratio
    minus one, the same discipline as the leg speedups.
    """
    predictor.shared_state()  # warm-up outside every timed pass

    def one_pass(with_quality):
        _reset_cache(predictor)
        quality = drift = None
        if with_quality:
            registry = MetricsRegistry()
            quality = QualityMonitor(registry, top_k=20)
            drift = DriftDetector(registry)
        report = prequential_replay(
            predictor,
            events,
            store_config=StoreConfig(**_WIDE_STORE),
            batch_size=BATCH_SIZE,
            quality=quality,
            drift=drift,
        )
        return report, quality

    ratios = []
    joins = 0
    for _ in range(rounds):
        off_report, _ = one_pass(False)
        on_report, quality = one_pass(True)
        ratios.append(on_report.seconds / off_report.seconds)
        joins = sum(quality.summary()["joins"].values())
    overhead = statistics.median(ratios) - 1.0
    return {
        "rounds": rounds,
        "joins": joins,
        "paired_ratios": [round(r, 4) for r in ratios],
        "overhead": round(overhead, 4),
        "gate": QUALITY_OVERHEAD_GATE,
    }


def drift_scenario(predictor, events, num_pois):
    """Mid-stream popularity shift: the detector fires, accuracy drops.

    The shifted tape permutes every POI id from the halfway point on
    (:func:`popularity_shift_events`); the stationary control is the
    untouched tape through an identically configured detector.  The
    prequential quality curve is read straight off the replay records:
    Recall@10 over the predictions before vs after the shift.
    """
    scenario = popularity_shift_events(events, num_pois, shift_at=0.5, seed=0)

    def run(tape):
        _reset_cache(predictor)
        drift = DriftDetector(
            MetricsRegistry(), window=DRIFT_WINDOW, reference=DRIFT_WINDOW
        )
        report = prequential_replay(
            predictor,
            tape,
            store_config=StoreConfig(**_WIDE_STORE),
            batch_size=BATCH_SIZE,
            drift=drift,
        )
        return report, drift

    shifted_report, shifted_drift = run(scenario.events)
    control_report, control_drift = run(events)

    def recall_curve(report):
        # records are in prediction order; the shift lands mid-tape, so
        # the halfway split of the record list brackets it
        ranks = [record.rank for record in report.records]
        cut = len(ranks) // 2
        def recall(chunk):
            return sum(1 for r in chunk if r <= 10) / len(chunk) if chunk else 0.0
        return recall(ranks[:cut]), recall(ranks[cut:])

    pre_recall, post_recall = recall_curve(shifted_report)
    control_pre, control_post = recall_curve(control_report)
    return {
        "shift_index": scenario.shift_index,
        "window": DRIFT_WINDOW,
        "shifted": {
            "alert": shifted_drift.alert(),
            "psi_poi": round(shifted_drift.psi("poi"), 4),
            "recall10_pre_shift": round(pre_recall, 4),
            "recall10_post_shift": round(post_recall, 4),
        },
        "control": {
            "alert": control_drift.alert(),
            "psi_poi": round(control_drift.psi("poi"), 4),
            "recall10_first_half": round(control_pre, 4),
            "recall10_second_half": round(control_post, 4),
        },
    }


def run_bench(profile=None, save_report=None):
    profile = (profile or get_profile("quick")).smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)
    events = events_from_checkins(data.dataset.checkins)

    predictor = Predictor(model, graph_cache_size=512)
    comparison = compare_replay(
        predictor,
        events,
        batch_size=BATCH_SIZE,
        max_events=MAX_EVENTS,
        rounds=ROUNDS,
    )
    reports = comparison.pop("_reports")

    rows = [
        [
            report.leg,
            str(report.events),
            str(report.predictions),
            f"{report.seconds:8.2f}",
            f"{report.events_per_second:9.1f}",
            f"{report.metrics['Recall@10']:.4f}",
            f"{report.metrics['MRR']:.4f}",
        ]
        for report in (
            reports["baseline"],
            reports["stream"],
            reports["incremental"],
        )
    ]
    table = format_table(
        ["Leg", "Events", "Predictions", "Seconds", "Events/s", "Recall@10", "MRR"],
        rows,
        title=(
            "Prequential streaming replay — incremental user state vs "
            f"serialised full rebuild (NYC, stream {comparison['speedup']:.2f}x, "
            f"incremental {comparison['incremental_speedup']:.2f}x, "
            f"median of {ROUNDS} paired rounds)"
        ),
    )
    if save_report is not None:
        save_report("stream_replay", table)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "stream_replay.txt").write_text(table + "\n")
        print(table)

    overhead = quality_overhead(predictor, events[:MAX_EVENTS])
    print(f"quality monitor overhead: {overhead['overhead'] * 100:+.2f}% "
          f"(median of {overhead['rounds']} paired rounds, "
          f"{overhead['joins']} joins; gate <= "
          f"{QUALITY_OVERHEAD_GATE * 100:.0f}%)")

    drift = drift_scenario(
        predictor, events[:MAX_EVENTS], data.dataset.num_pois
    )
    print(f"drift scenario: shifted alert={drift['shifted']['alert']} "
          f"(PSI {drift['shifted']['psi_poi']:.2f}), control "
          f"alert={drift['control']['alert']} "
          f"(PSI {drift['control']['psi_poi']:.2f}); recall@10 "
          f"{drift['shifted']['recall10_pre_shift']:.3f} -> "
          f"{drift['shifted']['recall10_post_shift']:.3f} across the shift")

    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_point = {
        "bench": "stream_replay",
        "dataset": "nyc",
        "model": "TSPN-RA",
        **comparison,
        "quality_overhead": overhead,
        "drift_scenario": drift,
    }
    out = RESULTS_DIR / "BENCH_stream.json"
    out.write_text(json.dumps(trajectory_point, indent=2) + "\n")
    print(f"[BENCH trajectory point saved to {out}]")

    # identical inputs + deterministic eval-mode inference => identical
    # ranked lists; a mismatch means the store mis-split a session (or
    # an incremental graph diverged from the rebuild)
    assert comparison["ranked_lists_identical"], trajectory_point
    assert comparison["incremental_ranked_identical"], trajectory_point
    assert comparison["speedup"] >= 2.0, trajectory_point
    assert comparison["incremental_speedup"] >= 1.5, trajectory_point
    # model-quality observability gates: watching must be (nearly)
    # free, and the drift detector must fire on the shift and only there
    assert overhead["overhead"] <= QUALITY_OVERHEAD_GATE, trajectory_point
    assert drift["shifted"]["alert"], trajectory_point
    assert not drift["control"]["alert"], trajectory_point
    assert (drift["shifted"]["recall10_post_shift"]
            < drift["shifted"]["recall10_pre_shift"]), trajectory_point
    return trajectory_point


def bench_stream_replay(profile, save_report):
    run_bench(profile=profile, save_report=save_report)


if __name__ == "__main__":
    run_bench()
