"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``            list available experiment ids
``run <id>``               regenerate one paper table/figure
``stats <preset>``         print a dataset preset's statistics
``train <preset>``         train TSPN-RA on a preset and report metrics
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TSPN-RA reproduction (ICDE 2024) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment ids")

    run_parser = sub.add_parser("run", help="run one experiment by id")
    run_parser.add_argument("experiment_id")
    run_parser.add_argument("--profile", default=None, choices=("quick", "full"))

    stats_parser = sub.add_parser("stats", help="dataset statistics (Table I row)")
    stats_parser.add_argument("preset")
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument("--scale", type=float, default=0.5)

    train_parser = sub.add_parser("train", help="train TSPN-RA on a preset")
    train_parser.add_argument("preset")
    train_parser.add_argument("--seed", type=int, default=0)
    train_parser.add_argument("--profile", default="quick", choices=("quick", "full"))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "experiments":
        from .experiments import EXPERIMENTS

        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.command == "run":
        from .experiments import get_profile, run

        profile = get_profile(args.profile) if args.profile else None
        result = run(args.experiment_id, profile=profile)
        print(result)
        return 0

    if args.command == "stats":
        from .data import build_dataset, compute_stats

        dataset = build_dataset(args.preset, seed=args.seed, scale=args.scale)
        stats = compute_stats(dataset)
        for field_name, value in vars(stats).items():
            print(f"{field_name:24s} {value}")
        return 0

    if args.command == "train":
        from .experiments import eval_model, get_profile, prepare, run_one

        profile = get_profile(args.profile)
        data = prepare(args.preset, profile, seed=args.seed)
        metrics, _ = run_one("TSPN-RA", data, profile, seed=args.seed)
        for name, value in metrics.items():
            print(f"{name:12s} {value:.4f}")
        return 0

    return 1  # unreachable: argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
