"""HTTP serving smoke: start the server, hit it concurrently, verify.

The CI ``serve-smoke`` job runs this standalone: it trains the quick
NYC profile (scaled down), starts the full serving stack —
:class:`~repro.serve.InferenceServer` worker pool behind the
:class:`~repro.serve.HttpFrontend` on an ephemeral port — then issues
a handful of concurrent ``/predict`` and ``/recommend`` requests plus
``/healthz`` and ``/stats`` reads, asserting every response is a 200
with well-formed JSON.  It exercises exactly the path a deployment
would: real sockets, real concurrent connections, real micro-batches.

The run serves with 100% trace sampling, then scrapes ``/metrics``,
validates the scrape with the stdlib Prometheus parser (counters match
the request totals the JSON ``/stats`` reports), checks ``/debug/slow``
returns a populated span tree, and archives the raw scrape to
``benchmarks/results/OBS_sample.prom`` for the CI artifact.

Run standalone with
``PYTHONPATH=src python benchmarks/smoke_serve_http.py``.
"""

import json
import threading
import urllib.request
from pathlib import Path

from repro.experiments import get_profile, prepare, run_one
from repro.obs import parse_prometheus
from repro.serve import HttpFrontend, InferenceServer, ServerConfig

CONCURRENT_CLIENTS = 8
REQUESTS_PER_CLIENT = 4
RESULTS_DIR = Path(__file__).parent / "results"


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def main() -> None:
    profile = get_profile("quick").smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)
    samples = data.splits.test[:CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT]

    config = ServerConfig(
        workers=2, max_batch_size=8, max_wait_ms=4.0, trace_sample=1.0
    )
    with InferenceServer(model, config=config) as server:
        with HttpFrontend(server, port=0) as front:
            status, health = _get(front.url + "/healthz")
            assert status == 200 and health["status"] == "ok", health

            failures = []

            def client(index):
                try:
                    for j in range(REQUESTS_PER_CLIENT):
                        sample = samples[(index * REQUESTS_PER_CLIENT + j) % len(samples)]
                        payload = {
                            "user_id": sample.user_id,
                            "prefix": [
                                {"poi_id": v.poi_id, "timestamp": v.timestamp}
                                for v in sample.prefix
                            ],
                            "history": [
                                [
                                    {"poi_id": v.poi_id, "timestamp": v.timestamp}
                                    for v in trajectory.visits
                                ]
                                for trajectory in sample.history
                            ],
                            "k": 5,
                        }
                        endpoint = "/predict" if j % 2 == 0 else "/recommend"
                        status, body = _post(front.url + endpoint, payload)
                        assert status == 200, (endpoint, status, body)
                        key = "top_pois" if endpoint == "/predict" else "recommendations"
                        assert isinstance(body[key], list) and len(body[key]) == 5, body
                        assert all(isinstance(p, int) for p in body[key]), body
                except Exception as error:  # surface per-client failures
                    failures.append((index, repr(error)))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(CONCURRENT_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures

            status, stats = _get(front.url + "/stats")
            assert status == 200, stats
            expected = CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT
            assert stats["requests"]["completed"] == expected, stats
            assert stats["requests"]["failed"] == 0, stats
            assert stats["batches"]["count"] >= 1, stats
            # /metrics: a valid Prometheus scrape that agrees with /stats
            with urllib.request.urlopen(front.url + "/metrics", timeout=30) as response:
                assert response.status == 200, response.status
                content_type = response.headers.get("Content-Type", "")
                assert content_type.startswith("text/plain"), content_type
                scrape = response.read().decode("utf-8")
            parsed = parse_prometheus(scrape)
            assert parsed[("serve_request_requests_total", ())] == expected, parsed
            assert parsed[("serve_request_failed_total", ())] == 0.0
            assert parsed[("serve_traces_sampled_total", ())] >= expected
            bucket_names = {name for name, _ in parsed if name.endswith("_bucket")}
            assert "serve_request_batch_latency_seconds_bucket" in bucket_names
            assert "scheduler_batch_size_bucket" in bucket_names

            # /debug/slow: fully-sampled serving must leave span trees
            status, slow = _get(front.url + "/debug/slow?n=3")
            assert status == 200 and slow["slow"], slow
            stage_names = set()

            def walk(node):
                stage_names.add(node["name"])
                for child in node.get("children", ()):
                    walk(child)

            for root in slow["slow"][0]["spans"]:
                walk(root)
            assert {"queue.wait", "infer.batch"} <= stage_names, stage_names

            RESULTS_DIR.mkdir(exist_ok=True)
            artifact = RESULTS_DIR / "OBS_sample.prom"
            artifact.write_text(scrape)
            print(
                f"smoke OK: {expected} concurrent HTTP requests, "
                f"{stats['batches']['count']} micro-batches "
                f"(mean size {stats['batches']['mean_size']:.1f}), "
                f"request p99 {stats['requests']['p99_ms']:.2f} ms"
            )
            print(
                f"metrics OK: {len(parsed)} series scraped, "
                f"{len(slow['slow'])} slow traces "
                f"({len(stage_names)} distinct stages) "
                f"[scrape archived to {artifact}]"
            )


if __name__ == "__main__":
    main()
