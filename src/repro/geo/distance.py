"""Distance functions.

Synthetic cities use planar kilometres (``euclidean``); the haversine
and equirectangular variants are provided for users feeding real
lat/lon check-in data through the same pipeline.
"""

from __future__ import annotations

import numpy as np

EARTH_RADIUS_KM = 6371.0088


def euclidean(x1, y1, x2, y2):
    """Planar distance; accepts scalars or numpy arrays."""
    return np.sqrt((np.asarray(x2) - x1) ** 2 + (np.asarray(y2) - y1) ** 2)


def haversine_km(lat1, lon1, lat2, lon2):
    """Great-circle distance in kilometres between (lat, lon) pairs in degrees."""
    lat1, lon1, lat2, lon2 = map(np.radians, (lat1, lon1, lat2, lon2))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def equirectangular_km(lat1, lon1, lat2, lon2):
    """Fast flat-earth approximation, adequate at city scale."""
    lat1r, lon1r, lat2r, lon2r = map(np.radians, (lat1, lon1, lat2, lon2))
    x = (lon2r - lon1r) * np.cos((lat1r + lat2r) / 2.0)
    y = lat2r - lat1r
    return EARTH_RADIUS_KM * np.sqrt(x * x + y * y)
