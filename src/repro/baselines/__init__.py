"""The ten comparison baselines from the paper's Sec. VI-A."""

from typing import Dict, Optional

import numpy as np

from .base import BaselineResult, NextPOIBaseline, SequenceEmbedder
from .deepmove import DeepMove
from .graph_flashback import GraphFlashback
from .gru import GRUBaseline
from .hmt_grn import HMTGRN
from .lstpm import LSTPM
from .markov import MarkovChain
from .sae_nad import SAENAD
from .stan import STAN
from .stisan import STiSAN
from .strnn import STRNN

BASELINE_NAMES = (
    "MC",
    "GRU",
    "STRNN",
    "DeepMove",
    "LSTPM",
    "STAN",
    "SAE-NAD",
    "HMT-GRN",
    "Graph-Flashback",
    "STiSAN",
)


def make_baseline(
    name: str,
    num_pois: int,
    locations: np.ndarray,
    dim: int = 64,
    rng=None,
):
    """Factory: construct any baseline by its paper name.

    ``locations`` are unit-square POI coordinates (several baselines
    use spatial intervals or proximity biases).
    """
    builders = {
        "MC": lambda: MarkovChain(num_pois),
        "GRU": lambda: GRUBaseline(num_pois, dim=dim, rng=rng),
        "STRNN": lambda: STRNN(num_pois, locations, dim=dim, rng=rng),
        "DeepMove": lambda: DeepMove(num_pois, dim=dim, rng=rng),
        "LSTPM": lambda: LSTPM(num_pois, dim=dim, rng=rng),
        "STAN": lambda: STAN(num_pois, locations, dim=dim, rng=rng),
        "SAE-NAD": lambda: SAENAD(num_pois, locations, dim=dim, rng=rng),
        "HMT-GRN": lambda: HMTGRN(num_pois, locations, dim=dim, rng=rng),
        "Graph-Flashback": lambda: GraphFlashback(num_pois, locations, dim=dim, rng=rng),
        "STiSAN": lambda: STiSAN(num_pois, locations, dim=dim, rng=rng),
    }
    if name not in builders:
        raise KeyError(f"unknown baseline {name!r}; choose from {BASELINE_NAMES}")
    return builders[name]()


__all__ = [
    "BASELINE_NAMES",
    "BaselineResult",
    "DeepMove",
    "GRUBaseline",
    "GraphFlashback",
    "HMTGRN",
    "LSTPM",
    "MarkovChain",
    "NextPOIBaseline",
    "SAENAD",
    "STAN",
    "STRNN",
    "STiSAN",
    "SequenceEmbedder",
    "make_baseline",
]
