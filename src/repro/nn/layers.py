"""Core layers: Linear, Embedding, Conv2d, LayerNorm, Dropout, activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, conv2d, dropout as dropout_fn, get_default_dtype
from ..utils.rng import default_rng
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = rng or default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = (
            Parameter(np.zeros(out_features, dtype=get_default_dtype())) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng=None, std: float = 0.02):
        super().__init__()
        rng = rng or default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=std))

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"got [{idx.min()}, {idx.max()}]"
            )
        return self.weight[idx]


class Conv2d(Module):
    """2-D convolution; stride-2 variants replace pooling in Me1 (paper Sec. IV-A)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        rng = rng or default_rng()
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=get_default_dtype())) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class LayerNorm(Module):
    """Layer normalisation over the last dimension (paper Sec. V-A, block 2)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=get_default_dtype()))
        self.beta = Parameter(np.zeros(dim, dtype=get_default_dtype()))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout tied to the module train/eval flag."""

    def __init__(self, rate: float = 0.1, rng=None):
        super().__init__()
        self.rate = rate
        self._rng = rng or default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.rate, self._rng, training=self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.01):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all but the leading (batch) dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
