"""Setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; keeping a classic ``setup.py`` lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "TSPN-RA: two-step next-POI prediction with remote sensing "
        "augmentation (ICDE 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
