"""DeepMove baseline [Feng et al., WWW 2018; ref 6].

An attentional recurrent network: a GRU encodes the current prefix,
and an attention layer retrieves relevant historical mobility from the
user's earlier trajectories (what gives DeepMove its edge over plain
RNNs, and the component that made it one of the paper's strongest
baselines).  Current representation and history context are combined
for full-vocabulary scoring.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, concat, softmax
from ..data.trajectory import PredictionSample, concat_history
from ..nn import GRU, Linear
from ..utils.rng import default_rng
from .base import NextPOIBaseline, SequenceEmbedder

_MAX_HISTORY = 120  # cap history length to bound attention cost


class DeepMove(NextPOIBaseline):
    name = "DeepMove"

    def __init__(self, num_pois: int, dim: int = 64, rng=None):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.embedder = SequenceEmbedder(num_pois, dim, rng=rng)
        self.rnn = GRU(dim, dim, rng=rng)
        self.history_rnn = GRU(dim, dim, rng=rng)
        self.query_proj = Linear(dim, dim, rng=rng)
        self.combine = Linear(2 * dim, dim, rng=rng)
        self.head = Linear(dim, num_pois, rng=rng)

    def _history_states(self, sample: PredictionSample) -> Optional[Tensor]:
        visits = concat_history(sample.history)[-_MAX_HISTORY:]
        if not visits:
            return None
        embedded = self.embedder(visits)
        states, _ = self.history_rnn(embedded)
        return states

    def score(self, sample: PredictionSample) -> Tensor:
        sequence = self.embedder(sample)
        _, current = self.rnn(sequence)
        history = self._history_states(sample)
        if history is None:
            context = current
        else:
            query = self.query_proj(current)
            weights = softmax((history @ query) * (1.0 / np.sqrt(self.dim)), axis=0)
            context = (history * weights.reshape(-1, 1)).sum(axis=0)
        merged = self.combine(concat([current, context], axis=0)).relu()
        return self.head(merged)
