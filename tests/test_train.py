"""Tests for the Trainer beyond what the integration tests cover."""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.data.trajectory import PredictionSample, Visit
from repro.nn import Embedding, Linear, Module
from repro.train import TrainConfig, Trainer, TrainHistory
from repro.utils import spawn


class _ToyModel(Module):
    """Predicts the next POI id from the last prefix POI (learnable table)."""

    requires_gradient_training = True

    def __init__(self, num_pois=6, rng=None):
        super().__init__()
        self.table = Embedding(num_pois, 8, rng=rng or spawn(0))
        self.head = Linear(8, num_pois, rng=rng or spawn(1))
        self.seen_samples = 0

    def loss_sample(self, sample):
        self.seen_samples += 1
        emb = self.table(np.array([sample.prefix[-1].poi_id]))
        logits = self.head(emb[0])
        return cross_entropy(logits.reshape(1, -1), np.array([sample.target.poi_id]))


def _samples(n=24):
    # deterministic mapping i -> (i+1) % 6 is learnable by the toy model
    return [
        PredictionSample(
            user_id=0,
            history=[],
            prefix=[Visit(i % 6, float(i))],
            target=Visit((i + 1) % 6, float(i) + 0.5),
            history_key=(0, i),
        )
        for i in range(n)
    ]


class TestTrainer:
    def test_learns_deterministic_mapping(self):
        model = _ToyModel()
        history = Trainer(model, TrainConfig(epochs=30, batch_size=4, lr=0.05)).fit(_samples())
        assert history.epoch_losses[-1] < 0.1

    def test_max_train_samples_cap(self):
        model = _ToyModel()
        Trainer(model, TrainConfig(epochs=1, batch_size=4, max_train_samples=8)).fit(_samples(24))
        assert model.seen_samples == 8

    def test_epoch_callback_invoked(self):
        calls = []
        model = _ToyModel()
        Trainer(model, TrainConfig(epochs=3, batch_size=8)).fit(
            _samples(8), epoch_callback=lambda e, loss: calls.append((e, loss))
        )
        assert [e for e, _ in calls] == [0, 1, 2]

    def test_lr_decays_per_epoch(self):
        model = _ToyModel()
        trainer = Trainer(model, TrainConfig(epochs=3, batch_size=8, lr=1e-2, lr_decay=0.5))
        trainer.fit(_samples(8))
        assert trainer.optimizer.lr == pytest.approx(1e-2 * 0.5 ** 3)

    def test_deterministic_given_seed(self):
        h1 = Trainer(_ToyModel(rng=spawn(3)), TrainConfig(epochs=2, seed=4)).fit(_samples())
        h2 = Trainer(_ToyModel(rng=spawn(3)), TrainConfig(epochs=2, seed=4)).fit(_samples())
        assert h1.epoch_losses == h2.epoch_losses

    def test_history_improved_flag(self):
        assert TrainHistory(epoch_losses=[2.0, 1.0]).improved()
        assert not TrainHistory(epoch_losses=[1.0, 2.0]).improved()
        assert not TrainHistory(epoch_losses=[1.0]).improved()
