"""STiSAN baseline [Wang et al., ICDE 2022; ref 12].

Spatial-Temporal interval Aware Self-Attention Network.  Keeps both
named components: TAPE (Time Aware Position Encoder — sinusoidal
position codes modulated by the visit's time of day) and IAAB
(Interval Aware Attention Block — self-attention whose logits receive
an additive bias built from pairwise spatial and temporal intervals).
Training uses the nearest-POI negative sampling the paper blames for
STiSAN's weakness on sparse state-level data.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, cross_entropy, masked_fill, softmax
from ..data.trajectory import PredictionSample
from ..nn import LayerNorm, Linear, Parameter, causal_mask
from ..utils.rng import default_rng
from .base import NextPOIBaseline, SequenceEmbedder


def _tape(length: int, hours: np.ndarray, dim: int) -> np.ndarray:
    """Time-aware position encoding: sinusoid phase shifted by hour."""
    positions = np.arange(length, dtype=np.float64)[:, None] + (hours[:, None] / 24.0)
    i = np.arange(dim // 2, dtype=np.float64)
    div = 10000.0 ** (2.0 * i / dim)
    out = np.zeros((length, dim))
    out[:, 0::2] = np.sin(positions / div)
    out[:, 1::2] = np.cos(positions / div)
    return out


class STiSAN(NextPOIBaseline):
    name = "STiSAN"

    def __init__(
        self,
        num_pois: int,
        locations: np.ndarray,
        dim: int = 64,
        num_negatives: int = 16,
        max_gap_hours: float = 48.0,
        rng=None,
    ):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.locations = np.asarray(locations, dtype=np.float64)
        self.num_negatives = num_negatives
        self.max_gap = max_gap_hours
        self.embedder = SequenceEmbedder(num_pois, dim, use_time=False, rng=rng)
        self.q = Linear(dim, dim, rng=rng)
        self.k = Linear(dim, dim, rng=rng)
        self.v = Linear(dim, dim, rng=rng)
        self.norm = LayerNorm(dim)
        self.spatial_slope = Parameter(np.array([-1.0]))
        self.temporal_slope = Parameter(np.array([-0.5]))
        self.head = Linear(dim, num_pois, rng=rng)
        # precomputed nearest neighbours for negative sampling
        self._neighbor_cache = {}

    def _interval_bias(self, sample: PredictionSample) -> Tensor:
        ids = np.array(sample.prefix_poi_ids, dtype=np.int64)
        times = np.array([v.timestamp for v in sample.prefix])
        coords = self.locations[ids]
        dists = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
        gaps = np.minimum(np.abs(times[:, None] - times[None, :]), self.max_gap) / self.max_gap
        return Tensor(dists) * self.spatial_slope[0] + Tensor(gaps) * self.temporal_slope[0]

    def _encode(self, sample: PredictionSample) -> Tensor:
        x = self.embedder(sample)
        length = x.shape[0]
        hours = np.array([v.timestamp % 24.0 for v in sample.prefix])
        x = x + Tensor(_tape(length, hours, self.dim))
        scores = (self.q(x) @ self.k(x).transpose()) * (1.0 / np.sqrt(self.dim))
        scores = scores + self._interval_bias(sample)
        weights = softmax(masked_fill(scores, causal_mask(length), -1e9), axis=-1)
        x = self.norm(x + weights @ self.v(x))
        return x[length - 1]

    def score(self, sample: PredictionSample) -> Tensor:
        return self.head(self._encode(sample))

    def _nearest_negatives(self, target: int) -> np.ndarray:
        if target not in self._neighbor_cache:
            d = ((self.locations - self.locations[target]) ** 2).sum(axis=1)
            order = np.argsort(d, kind="stable")
            self._neighbor_cache[target] = order[1:self.num_negatives + 1]
        return self._neighbor_cache[target]

    def loss_sample(self, sample: PredictionSample) -> Tensor:
        """Cross-entropy over target + negatives dominated by *nearest* POIs.

        This is the training detail the paper singles out: on sparse
        datasets the nearest negatives are uninformative, hurting
        discrimination at state scale.  A small random tail keeps the
        global ranking calibrated, as in-batch sampling does in the
        original implementation.
        """
        logits = self.score(sample)
        target = sample.target.poi_id
        random_tail = self._rng.integers(0, self.num_pois, size=max(2, self.num_negatives // 4))
        negatives = np.concatenate([self._nearest_negatives(target), random_tail])
        negatives = negatives[negatives != target]
        candidates = np.concatenate([[target], negatives])
        return cross_entropy(logits[candidates].reshape(1, -1), np.array([0]))
