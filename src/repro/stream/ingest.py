"""Ingestion pipeline: append events, roll sessions, retire stale graphs.

:class:`StreamIngest` is the thin layer between arriving
:class:`~repro.stream.events.CheckinEvent`\\ s and the serving stack:

* every event is appended to the :class:`~repro.stream.state.UserStateStore`
  (which rolls sessions at the Δt gap boundary);
* when an append changes a user's completed-session history, the now-
  stale QR-P graph entry is dropped from every registered serving cache
  — **exactly once per ``history_version`` bump**, because the store
  reports the retired key on precisely the append that moved the
  version.  This rides ``state_version`` the same way the shared
  embedding tables ride ``weights_version``: the version is baked into
  the cache key, so even a missed drop can only waste an LRU slot,
  never serve a stale graph.
* when the store maintains incremental QR-P graphs (a
  :class:`~repro.graphs.QRPGraphMaintainer` attached via
  :meth:`register_predictor`), the same append also carries the
  *replacement* entry — the O(session)-updated ``(qrp, masks)`` under
  the new ``history_version`` key — which is pushed into every
  graph-compatible cache.  Retire-then-push makes a rollover
  cache-neutral: the next predict for that user hits a fresh entry
  instead of paying an O(history) rebuild.

Registered caches are the per-worker QR-P graph LRUs of an
:class:`~repro.serve.InferenceServer` (or a single offline
:class:`~repro.serve.Predictor` during replay).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from ..obs import MetricsRegistry
from ..utils.cache import LRUCache
from .events import CheckinEvent
from .state import AppendResult, StoreConfig, UserStateStore


class StreamIngest:
    """Append check-ins and keep the serving caches coherent.

    Thread-safe: the store serialises per-user appends on shard locks,
    cache drops go through the locked :class:`LRUCache`, and the
    pipeline's counters are per-instrument-locked registry counters
    (a private :class:`~repro.obs.MetricsRegistry` when standalone;
    the server adopts it at wiring time so ``/metrics`` sees them).
    """

    def __init__(
        self,
        store: Optional[UserStateStore] = None,
        caches: Iterable[Optional[LRUCache]] = (),
        registry: Optional[MetricsRegistry] = None,
    ):
        self.store = store if store is not None else UserStateStore(StoreConfig())
        self._caches: List[LRUCache] = [c for c in caches if c is not None]
        self._push_caches: List[LRUCache] = []
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events = self.registry.counter(
            "ingest_events", "Check-in events ingested"
        )
        self._rollovers = self.registry.counter(
            "ingest_rollovers", "Session rollovers observed"
        )
        self._invalidations = self.registry.counter(
            "ingest_cache_invalidations", "Stale graph cache entries removed"
        )
        self._graph_pushes = self.registry.counter(
            "ingest_graph_pushes", "Fresh incremental graph entries installed"
        )
        self._observer_errors = self.registry.counter(
            "ingest_observer_errors", "Exceptions contained from ingest observers"
        )
        self._observers: List = []

    # -- historical counter surface ------------------------------------
    @property
    def events(self) -> int:
        return int(self._events.value)

    @property
    def rollovers(self) -> int:
        return int(self._rollovers.value)

    @property
    def invalidations(self) -> int:
        """Cache entries actually removed."""
        return int(self._invalidations.value)

    @property
    def graph_pushes(self) -> int:
        """Fresh incremental entries installed."""
        return int(self._graph_pushes.value)

    def register_cache(self, cache: Optional[LRUCache]) -> None:
        """Add a serving-layer graph cache to the invalidation set.

        ``None`` is accepted and ignored so callers can pass
        ``predictor.graph_cache`` unconditionally (models without a
        graph stage have no cache).
        """
        if cache is not None:
            self._caches.append(cache)

    def register_predictor(self, predictor, incremental: bool = True) -> None:
        """Register a :class:`~repro.serve.Predictor`'s graph cache.

        When the predictor's model exposes a compatible incremental
        QR-P maintainer (``stream_graph_maintainer``) and the store
        accepts it, this cache also joins the *push* set: each session
        rollover installs the freshly updated graph entry right after
        retiring the stale one.  ``incremental=False`` opts a cache out
        of pushes (invalidation still applies) — the rebuild-per-miss
        baseline the benchmarks compare against.
        """
        cache = getattr(predictor, "graph_cache", None)
        self.register_cache(cache)
        if cache is None or not incremental:
            return
        factory = getattr(predictor, "stream_graph_maintainer", None)
        maintainer = factory() if callable(factory) else None
        if maintainer is None:
            return
        if self.store.attach_graph_maintainer(maintainer):
            self._push_caches.append(cache)

    def add_observer(self, fn) -> None:
        """Subscribe ``fn(event, append_result)`` to every ingested event.

        Observers run *after* the append and cache maintenance, on the
        ingesting thread, in registration order — the quality monitor's
        prequential join and the drift detector's sketches both hang off
        this hook.  An observer exception is contained (counted in
        ``ingest_observer_errors``): observability must never be able to
        fail ingestion.
        """
        self._observers.append(fn)

    def ingest(self, event: CheckinEvent) -> AppendResult:
        """Append one event; retire the stale graph entry, push the new.

        The pop precedes the push and the keys differ (the history
        version moved), so each registered cache sees exactly one
        retirement per history change — pushes can only add the
        replacement entry, never resurrect the retired key.
        """
        result = self.store.append(event)
        dropped = pushed = 0
        if result.invalidated_key is not None:
            for cache in self._caches:
                if cache.pop(result.invalidated_key) is not None:
                    dropped += 1
            if result.graph_entry is not None:
                for cache in self._push_caches:
                    cache.put(result.history_key, result.graph_entry)
                    pushed += 1
        self._events.inc()
        if result.session_rolled:
            self._rollovers.inc()
        if dropped:
            self._invalidations.inc(dropped)
        if pushed:
            self._graph_pushes.inc(pushed)
        for observer in self._observers:
            try:
                observer(event, result)
            except Exception:
                self._observer_errors.inc()
        return result

    def ingest_many(self, events: Iterable[CheckinEvent]) -> List[AppendResult]:
        return [self.ingest(event) for event in events]

    def stats(self) -> Dict:
        """Pipeline counters merged with the store's roll-up."""
        counters = {
            "ingested": self.events,
            "rollovers": self.rollovers,
            "cache_invalidations": self.invalidations,
            "graph_pushes": self.graph_pushes,
            "registered_caches": len(self._caches),
            "push_caches": len(self._push_caches),
            "observers": len(self._observers),
            "observer_errors": int(self._observer_errors.value),
        }
        return {**self.store.stats(), **counters}
