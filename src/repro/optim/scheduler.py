"""Learning-rate schedules.

The paper trains with lr = 2e-5 decayed by 0.95 (per epoch); that is
exactly :class:`ExponentialDecay`.
"""

from __future__ import annotations


class ExponentialDecay:
    """Multiply the optimiser lr by ``gamma`` on every ``step()``."""

    def __init__(self, optimizer, gamma: float = 0.95):
        self.optimizer = optimizer
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self._epochs = 0

    def step(self) -> None:
        self._epochs += 1
        self.optimizer.lr = self.base_lr * (self.gamma ** self._epochs)

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
