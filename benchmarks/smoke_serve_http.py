"""HTTP serving smoke: start the server, hit it concurrently, verify.

The CI ``serve-smoke`` job runs this standalone: it trains the quick
NYC profile (scaled down), starts the full serving stack —
:class:`~repro.serve.InferenceServer` worker pool behind the
:class:`~repro.serve.HttpFrontend` on an ephemeral port — then issues
a handful of concurrent ``/predict`` and ``/recommend`` requests plus
``/healthz`` and ``/stats`` reads, asserting every response is a 200
with well-formed JSON.  It exercises exactly the path a deployment
would: real sockets, real concurrent connections, real micro-batches.

The run serves with 100% trace sampling, then scrapes ``/metrics``,
validates the scrape with the stdlib Prometheus parser (counters match
the request totals the JSON ``/stats`` reports), checks ``/debug/slow``
returns a populated span tree, and archives the raw scrape to
``benchmarks/results/OBS_sample.prom`` for the CI artifact.

The server is *stateful*, so the smoke also closes the prequential
quality loop over real HTTP: check a user's prefix in, serve a
history-less prediction, check in where the user actually went next,
and assert ``GET /quality`` reports the join, the quality series show
up in the final ``/metrics`` scrape, and the ``/quality`` JSON lands
in ``benchmarks/results/QUALITY_sample.json`` as a second artifact.

Run standalone with
``PYTHONPATH=src python benchmarks/smoke_serve_http.py``.
"""

import json
import threading
import urllib.request
from pathlib import Path

from repro.experiments import get_profile, prepare, run_one
from repro.obs import parse_prometheus
from repro.serve import HttpFrontend, InferenceServer, ServerConfig
from repro.stream import StoreConfig, UserStateStore

CONCURRENT_CLIENTS = 8
REQUESTS_PER_CLIENT = 4
RESULTS_DIR = Path(__file__).parent / "results"


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def main() -> None:
    profile = get_profile("quick").smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)
    samples = data.splits.test[:CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT]

    config = ServerConfig(
        workers=2, max_batch_size=8, max_wait_ms=4.0, trace_sample=1.0
    )
    store = UserStateStore(StoreConfig())
    with InferenceServer(
        model, config=config, dataset=data.dataset, state_store=store
    ) as server:
        with HttpFrontend(server, port=0) as front:
            status, health = _get(front.url + "/healthz")
            assert status == 200 and health["status"] == "ok", health

            failures = []

            def client(index):
                try:
                    for j in range(REQUESTS_PER_CLIENT):
                        sample = samples[(index * REQUESTS_PER_CLIENT + j) % len(samples)]
                        payload = {
                            "user_id": sample.user_id,
                            "prefix": [
                                {"poi_id": v.poi_id, "timestamp": v.timestamp}
                                for v in sample.prefix
                            ],
                            "history": [
                                [
                                    {"poi_id": v.poi_id, "timestamp": v.timestamp}
                                    for v in trajectory.visits
                                ]
                                for trajectory in sample.history
                            ],
                            "k": 5,
                        }
                        endpoint = "/predict" if j % 2 == 0 else "/recommend"
                        status, body = _post(front.url + endpoint, payload)
                        assert status == 200, (endpoint, status, body)
                        key = "top_pois" if endpoint == "/predict" else "recommendations"
                        assert isinstance(body[key], list) and len(body[key]) == 5, body
                        assert all(isinstance(p, int) for p in body[key]), body
                except Exception as error:  # surface per-client failures
                    failures.append((index, repr(error)))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(CONCURRENT_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures

            status, stats = _get(front.url + "/stats")
            assert status == 200, stats
            expected = CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT
            assert stats["requests"]["completed"] == expected, stats
            assert stats["requests"]["failed"] == 0, stats
            assert stats["batches"]["count"] >= 1, stats
            # /metrics: a valid Prometheus scrape that agrees with /stats
            with urllib.request.urlopen(front.url + "/metrics", timeout=30) as response:
                assert response.status == 200, response.status
                content_type = response.headers.get("Content-Type", "")
                assert content_type.startswith("text/plain"), content_type
                scrape = response.read().decode("utf-8")
            parsed = parse_prometheus(scrape)
            assert parsed[("serve_request_requests_total", ())] == expected, parsed
            assert parsed[("serve_request_failed_total", ())] == 0.0
            assert parsed[("serve_traces_sampled_total", ())] >= expected
            bucket_names = {name for name, _ in parsed if name.endswith("_bucket")}
            assert "serve_request_batch_latency_seconds_bucket" in bucket_names
            assert "scheduler_batch_size_bucket" in bucket_names

            # /debug/slow: fully-sampled serving must leave span trees
            status, slow = _get(front.url + "/debug/slow?n=3")
            assert status == 200 and slow["slow"], slow
            stage_names = set()

            def walk(node):
                stage_names.add(node["name"])
                for child in node.get("children", ()):
                    walk(child)

            for root in slow["slow"][0]["spans"]:
                walk(root)
            assert {"queue.wait", "infer.batch"} <= stage_names, stage_names

            # the prequential quality loop over real HTTP: prefix
            # check-ins, a history-less prediction, then the true next
            # POI — the delayed label that joins the served top-K
            demo, seen_users = [], set()
            for sample in data.splits.test:
                if sample.user_id in seen_users or len(sample.prefix) < 2:
                    continue
                seen_users.add(sample.user_id)
                demo.append(sample)
                if len(demo) == 6:
                    break
            assert demo, "smoke needs at least one multi-visit test user"
            for sample in demo:
                for visit in sample.prefix:
                    status, _ = _post(front.url + "/checkin", {
                        "user_id": sample.user_id,
                        "poi_id": visit.poi_id,
                        "timestamp": visit.timestamp,
                    })
                    assert status == 200, status
                status, body = _post(
                    front.url + "/predict", {"user_id": sample.user_id, "k": 5}
                )
                assert status == 200, body
                status, _ = _post(front.url + "/checkin", {
                    "user_id": sample.user_id,
                    "poi_id": sample.target.poi_id,
                    "timestamp": sample.target.timestamp,
                })
                assert status == 200, status

            status, quality = _get(front.url + "/quality")
            assert status == 200, quality
            assert quality["enabled"] is True, quality
            joins = sum(quality["joins"].values())
            assert joins >= len(demo), quality
            assert set(quality["strata"]) == {"0", "1", "2+", "all"}, quality
            assert quality["strata"]["all"]["window"]["joins"] >= len(demo), quality
            assert quality["drift"]["enabled"] is True, quality
            assert quality["store_strata"], quality

            # quality series must ride the same Prometheus exposition
            with urllib.request.urlopen(front.url + "/metrics", timeout=30) as response:
                final_scrape = response.read().decode("utf-8")
            final_parsed = parse_prometheus(final_scrape)
            quality_joins = sum(
                value for (name, _), value in final_parsed.items()
                if name == "repro_quality_joins_total"
            )
            assert quality_joins == joins, (quality_joins, joins)
            quality_series = {
                name for name, _ in final_parsed
                if name.startswith(("repro_quality_", "repro_drift_"))
            }
            for required in ("repro_quality_recall", "repro_quality_mrr",
                             "repro_quality_pending", "repro_drift_psi",
                             "repro_drift_alert"):
                assert required in quality_series, quality_series

            RESULTS_DIR.mkdir(exist_ok=True)
            artifact = RESULTS_DIR / "OBS_sample.prom"
            artifact.write_text(final_scrape)
            quality_artifact = RESULTS_DIR / "QUALITY_sample.json"
            quality_artifact.write_text(json.dumps(quality, indent=2) + "\n")
            print(
                f"smoke OK: {expected} concurrent HTTP requests, "
                f"{stats['batches']['count']} micro-batches "
                f"(mean size {stats['batches']['mean_size']:.1f}), "
                f"request p99 {stats['requests']['p99_ms']:.2f} ms"
            )
            print(
                f"metrics OK: {len(parsed)} series scraped, "
                f"{len(slow['slow'])} slow traces "
                f"({len(stage_names)} distinct stages) "
                f"[scrape archived to {artifact}]"
            )
            print(
                f"quality OK: {joins} prequential joins over HTTP, "
                f"recall@5 {quality['strata']['all']['recall']['5']:.3f} "
                f"({len(quality_series)} quality/drift series) "
                f"[report archived to {quality_artifact}]"
            )


if __name__ == "__main__":
    main()
