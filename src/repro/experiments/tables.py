"""Runners for the paper's result tables (I-V)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import TSPNRA, TSPNRAConfig
from ..core.tilesystem import GridTileSystem
from ..data import build_dataset, compute_stats
from ..data.stats import DatasetStats
from ..eval import EfficiencyReport, measure
from ..imagery import ImageryCatalog
from ..roadnet import tile_road_adjacency
from ..serve import Predictor
from ..spatial import GridIndex
from ..utils.rng import spawn
from .harness import (
    ALL_MODELS,
    PreparedData,
    build_model,
    eval_model,
    prepare,
    run_comparison,
    run_one,
    train_model,
    tspnra_config,
)
from .profile import ExperimentProfile
from .reporting import METRIC_COLUMNS, relative_drop

URBAN_DATASETS = ("tky", "nyc")
STATE_DATASETS = ("california", "florida")

ABLATION_NAMES = (
    "TSPN-RA",
    "Grid Replace Quad-tree",
    "No Two-step",
    "No Graph",
    "No Contain",
    "No Road",
    "No Imagery",
    "No S&T Encoder",
    "No POI Category",
)

EFFICIENCY_MODELS = (
    "TSPN-RA",
    "STAN",
    "HMT-GRN",
    "DeepMove",
    "LSTPM",
    "Graph-Flashback",
    "STiSAN",
)


# ----------------------------------------------------------------------
# Table I — dataset statistics
# ----------------------------------------------------------------------
def run_table1(profile: ExperimentProfile) -> List[DatasetStats]:
    """Statistics of the four synthetic presets (paper Table I analogue)."""
    stats = []
    for name in ("nyc", "tky", "california", "florida"):
        dataset = build_dataset(
            name,
            seed=profile.seed,
            scale=profile.dataset_scale,
            imagery_resolution=profile.imagery_resolution,
        )
        stats.append(compute_stats(dataset))
    return stats


# ----------------------------------------------------------------------
# Tables II and III — model comparison
# ----------------------------------------------------------------------
def run_table2(
    profile: ExperimentProfile, models: Sequence[str] = ALL_MODELS
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """TKY / NYC comparison across all models."""
    return {name: run_comparison(name, profile, models) for name in URBAN_DATASETS}


def run_table3(
    profile: ExperimentProfile, models: Sequence[str] = ALL_MODELS
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """California / Florida comparison across all models."""
    return {name: run_comparison(name, profile, models) for name in STATE_DATASETS}


# ----------------------------------------------------------------------
# Table IV — ablations
# ----------------------------------------------------------------------
def _grid_variant(data: PreparedData, profile: ExperimentProfile) -> TSPNRA:
    """TSPN-RA with the quad-tree swapped for a fixed grid.

    The grid resolution is chosen to give about as many cells as the
    quad-tree has leaves (the paper tried several granularities and
    reported the best; matching cell counts is the fair default).
    """
    dataset = data.dataset
    n = max(2, int(round(np.sqrt(len(dataset.quadtree.leaves())))))
    grid = GridIndex.build(dataset.spec.bbox, dataset.city.pois.xy, n)
    adjacency = tile_road_adjacency(grid, dataset.city.roads)
    imagery = ImageryCatalog(dataset.imagery.renderer).bind(grid)
    tile_system = GridTileSystem(grid, adjacency)
    config = tspnra_config(profile, dataset)
    pois = dataset.city.pois
    return TSPNRA(
        tile_system=tile_system,
        imagery=imagery,
        num_pois=len(pois),
        num_categories=pois.num_categories,
        categories=pois.categories,
        normalized_xy=data.locations,
        config=config,
        rng=spawn(profile.seed + 101),
    )


def ablation_variants(profile: ExperimentProfile, data: PreparedData) -> Dict[str, TSPNRAConfig]:
    """Config for each Table IV variant (grid handled separately)."""
    base = tspnra_config(profile, data.dataset)
    return {
        "TSPN-RA": base,
        "No Two-step": base.variant(use_two_step=False),
        "No Graph": base.variant(use_graph=False),
        "No Contain": base.variant(drop_edge_type="contain"),
        "No Road": base.variant(drop_edge_type="road"),
        "No Imagery": base.variant(use_imagery=False),
        "No S&T Encoder": base.variant(use_st_encoder=False),
        "No POI Category": base.variant(use_category=False),
    }


def run_table4(
    profile: ExperimentProfile,
    datasets: Sequence[str] = URBAN_DATASETS,
    columns: Sequence[str] = ("Recall@5", "NDCG@5", "MRR"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Ablation study; adds an ``impro@avg`` entry per variant."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset_name in datasets:
        data = prepare(dataset_name, profile)
        results: Dict[str, Dict[str, float]] = {}
        for variant, config in ablation_variants(profile, data).items():
            metrics, _ = run_one("TSPN-RA", data, profile, config=config)
            results[variant] = metrics
        grid_model = _grid_variant(data, profile)
        train_model(grid_model, data, profile)
        results["Grid Replace Quad-tree"] = eval_model(grid_model, data, profile)
        full = results["TSPN-RA"]
        for variant, metrics in results.items():
            if variant != "TSPN-RA":
                metrics["impro@avg"] = relative_drop(full, metrics, columns)
        out[dataset_name] = results
    return out


# ----------------------------------------------------------------------
# Table V — efficiency
# ----------------------------------------------------------------------
def run_table5(
    profile: ExperimentProfile,
    datasets: Sequence[str] = ("nyc", "tky"),
    models: Sequence[str] = EFFICIENCY_MODELS,
) -> Dict[str, List[EfficiencyReport]]:
    """Memory / train-time / infer-time comparison (paper Table V)."""
    out: Dict[str, List[EfficiencyReport]] = {}
    for dataset_name in datasets:
        data = prepare(dataset_name, profile)
        reports: List[EfficiencyReport] = []
        for model_name in models:
            model = build_model(model_name, data, profile)
            test = data.splits.test
            if profile.eval_samples is not None:
                test = test[: profile.eval_samples]
            report = measure(
                model_name,
                train_fn=lambda m=model: train_model(m, data, profile),
                infer_fn=lambda m=model: Predictor(m, graph_cache_size=None).predict_batch(test),
            )
            reports.append(report)
        out[dataset_name] = reports
    return out
