"""Tests for all ten baseline models."""

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, MarkovChain, make_baseline
from repro.data import build_dataset, make_samples, split_samples
from repro.train import TrainConfig, Trainer
from repro.utils import spawn


@pytest.fixture(scope="module")
def tiny():
    dataset = build_dataset("nyc", seed=1, scale=0.12, imagery_resolution=16)
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=1)
    locations = np.array(
        [dataset.spec.bbox.normalize(x, y) for x, y in dataset.city.pois.xy]
    )
    return dataset, splits, locations


class TestFactory:
    def test_all_names_construct(self, tiny):
        dataset, _, locations = tiny
        for name in BASELINE_NAMES:
            model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(0))
            assert model.name == name

    def test_unknown_name(self, tiny):
        dataset, _, locations = tiny
        with pytest.raises(KeyError):
            make_baseline("BERT4Rec", 10, locations)


class TestMarkov:
    def test_fit_then_predict(self, tiny):
        _, splits, locations = tiny
        mc = MarkovChain(400)
        mc.fit(splits.train)
        result = mc.predict(splits.test[0])
        assert result.poi_rank >= 1

    def test_unfitted_raises(self, tiny):
        _, splits, _ = tiny
        with pytest.raises(RuntimeError):
            MarkovChain(10).predict(splits.test[0])

    def test_transition_dominates_when_observed(self):
        from repro.data.trajectory import PredictionSample, Visit

        mc = MarkovChain(3)
        sample = PredictionSample(
            user_id=0, history=[], prefix=[Visit(0, 0.0)], target=Visit(1, 1.0)
        )
        mc.fit([sample] * 5)
        scores = mc.scores(sample)
        assert np.argmax(scores) == 1

    def test_popularity_backoff(self):
        from repro.data.trajectory import PredictionSample, Visit

        mc = MarkovChain(3)
        seen = PredictionSample(0, [], [Visit(0, 0.0)], Visit(1, 1.0))
        mc.fit([seen])
        unseen_src = PredictionSample(0, [], [Visit(2, 0.0)], Visit(0, 1.0))
        scores = mc.scores(unseen_src)
        assert scores.sum() > 0  # falls back to popularity, not zeros


@pytest.mark.parametrize("name", [n for n in BASELINE_NAMES if n != "MC"])
class TestNeuralBaselines:
    def test_score_shape_and_loss(self, tiny, name):
        dataset, splits, locations = tiny
        model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(1))
        sample = next(s for s in splits.train if s.history)
        logits = model.score(sample)
        assert logits.shape == (len(dataset.city.pois),)
        loss = model.loss_sample(sample)
        assert np.isfinite(loss.item())

    def test_gradients_flow(self, tiny, name):
        dataset, splits, locations = tiny
        model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(2))
        sample = next(s for s in splits.train if s.history)
        model.loss_sample(sample).backward()
        assert any(p.grad is not None and np.abs(p.grad).sum() > 0 for p in model.parameters())

    def test_predict_is_permutation_ranking(self, tiny, name):
        dataset, splits, locations = tiny
        model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(3))
        model.eval()
        result = model.predict(splits.test[0])
        assert sorted(result.ranked_pois) == list(range(len(dataset.city.pois)))

    def test_one_epoch_reduces_loss(self, tiny, name):
        dataset, splits, locations = tiny
        model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(4))
        if hasattr(model, "fit_transition_graph"):
            model.fit_transition_graph(splits.train)
        trainer = Trainer(
            model, TrainConfig(epochs=2, batch_size=8, lr=5e-3, max_train_samples=48, seed=0)
        )
        history = trainer.fit(splits.train)
        assert history.improved(), history.epoch_losses


class TestModelSpecifics:
    def test_hmt_grn_beam_prefers_beam_cells(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("HMT-GRN", len(dataset.city.pois), locations, dim=16, rng=spawn(5))
        model.eval()
        result = model.predict(splits.test[0])
        # first-ranked POI must be in the fine-beam cells
        first = result.ranked_pois[0]
        assert model.fine_of_poi[first] is not None

    def test_graph_flashback_smoothing_changes_scores(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline(
            "Graph-Flashback", len(dataset.city.pois), locations, dim=16, rng=spawn(6)
        )
        sample = splits.test[0]
        before = model.score(sample).data.copy()
        model.fit_transition_graph(splits.train)
        after = model.score(sample).data
        assert not np.allclose(before, after)

    def test_stan_pif_bias_favours_frequent_poi(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("STAN", len(dataset.city.pois), locations, dim=16, rng=spawn(7))
        sample = next(s for s in splits.test if len(s.prefix) >= 3)
        logits = model.score(sample).data
        visited = sample.prefix_poi_ids[0]
        # zero out embeddings influence by comparing to a never-visited POI
        # with identical distance profile is hard; instead check the PIF term
        # exists: visited POI logits exceed the same model without history.
        freq = np.zeros(len(dataset.city.pois))
        for v in sample.prefix:
            freq[v.poi_id] += 1
        assert logits[visited] > (logits - np.log1p(freq) * model.pif_weight.data[0])[visited]

    def test_stisan_negatives_are_nearest(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("STiSAN", len(dataset.city.pois), locations, dim=16, rng=spawn(8))
        negs = model._nearest_negatives(0)
        d = ((locations - locations[0]) ** 2).sum(axis=1)
        ranked = np.argsort(d)[1 : len(negs) + 1]
        assert set(negs.tolist()) == set(ranked.tolist())

    def test_strnn_uses_distance_interpolation(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("STRNN", len(dataset.city.pois), locations, dim=16, rng=spawn(9))
        sample = splits.test[0]
        assert np.isfinite(model.score(sample).data).all()
