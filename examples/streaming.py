"""Streaming tour: ingest check-ins, predict online, replay a dataset.

The stateful slice of the API tour (serving.py covers the stateless
HTTP runtime).  Three stops:

1. ingest → predict with the in-process pieces: a sharded
   ``UserStateStore``, the ``StreamIngest`` pipeline keeping the QR-P
   graph cache coherent, and a ``Predictor`` answering history-less
   requests from stored state;
2. the same flow over HTTP: ``repro serve --stateful`` owns the user
   state, clients POST bare check-ins and ask for predictions by
   ``user_id`` only;
3. prequential replay: the whole dataset re-arrives in time order,
   every check-in is predicted before it is ingested (test-then-train,
   no label leakage), and the streaming path is raced against the
   stateless rebuild-per-request baseline.

Everything here also works from the shell::

    repro serve nyc --stateful --port 8151
    curl -s localhost:8151/checkin -d '{"user_id": 7, "poi_id": 3, "timestamp": 12.5}'
    curl -s localhost:8151/predict -d '{"user_id": 7, "k": 5}'
    repro stream-replay nyc

Runs in about a minute on a laptop CPU:

    python examples/streaming.py
"""

import json
import urllib.request

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.serve import HttpFrontend, InferenceServer, Predictor, ServerConfig
from repro.stream import (
    CheckinEvent,
    StoreConfig,
    StreamIngest,
    UserStateStore,
    compare_replay,
    events_from_checkins,
)
from repro.train import TrainConfig, Trainer
from repro.utils import spawn


def post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    # 0. Train briefly (the checkpoint path works identically:
    #    `repro train nyc --save model.npz` + `repro serve --checkpoint
    #    model.npz --stateful`).
    dataset = build_dataset("nyc", seed=7, scale=0.3, imagery_resolution=32)
    splits = split_samples(make_samples(dataset), seed=7)
    model = TSPNRA.from_dataset(
        dataset, TSPNRAConfig(dim=32, fusion_layers=1, hgat_layers=1, top_k=10), rng=spawn(7)
    )
    Trainer(
        model, TrainConfig(epochs=3, batch_size=8, lr=5e-3, max_train_samples=200, seed=7)
    ).fit(splits.train)

    # 1. Ingest → predict, in process.  The store shards users across
    #    locks, splits sessions at the paper's 72h gap rule, and the
    #    ingest pipeline retires a user's cached QR-P graph exactly
    #    when a rollover changes their history.
    store = UserStateStore(StoreConfig(num_shards=8))
    predictor = Predictor(model, graph_cache_size=256)
    ingest = StreamIngest(store)
    ingest.register_predictor(predictor)

    events = events_from_checkins(dataset.checkins)
    user = events[0].user_id
    for event in (e for e in events if e.user_id == user):
        ingest.ingest(event)
    sample = store.sample_for(user)  # history-less: state lives server-side
    top = predictor.predict(sample).top_k(5)
    print(f"user {user}: {len(sample.history)} stored sessions, "
          f"open prefix {sample.prefix_poi_ids[-3:]}, next-POI top-5 {top}")

    # 1b. Incremental graph maintenance rode along for free:
    #     register_predictor attached the model's QR-P maintainer to the
    #     store, so each session rollover UPDATES the user's live graph
    #     in O(session) and pushes the fresh (graph, masks) entry into
    #     the predictor's cache — retire-then-push, no rebuild on the
    #     next predict.  Two far-future check-ins force rollovers so the
    #     counters have something to say:
    last_t = max(e.timestamp for e in events if e.user_id == user)
    for k in (1, 2):
        ingest.ingest(CheckinEvent(user_id=user, poi_id=top[0], timestamp=last_t + 100.0 * k))
    stats = ingest.stats()
    print(f"incremental graphs: {stats['graph_updates']} O(session) updates, "
          f"{stats['graph_pushes']} cache pushes, "
          f"{stats['graph_rebuilds']} full rebuilds "
          f"across {stats['sessions_rolled']} rollovers")

    # 2. The same contract over HTTP: POST /checkin per arrival, then a
    #    history-less POST /predict {"user_id": ...}.  Stateful and
    #    stateless requests share the micro-batching scheduler.
    fresh_store = UserStateStore(StoreConfig(num_shards=8))
    config = ServerConfig(workers=2, max_batch_size=16, max_wait_ms=5.0)
    with InferenceServer(model, config=config, state_store=fresh_store) as server:
        with HttpFrontend(server, port=0) as front:
            print(f"\nstateful server on {front.url}")
            for event in events[:50]:
                post(front.url + "/checkin", {
                    "user_id": event.user_id,
                    "poi_id": event.poi_id,
                    "timestamp": event.timestamp,
                })
            body = post(front.url + "/predict", {"user_id": events[0].user_id, "k": 5})
            print(f"POST /predict {{user_id: {events[0].user_id}}} -> "
                  f"top-5 {body['top_pois']}")
            stats = json.loads(urllib.request.urlopen(front.url + "/stats").read())
            print(f"/stats: queue_depth={stats['queue_depth']} "
                  f"in_flight={stats['in_flight']} "
                  f"stream={{users: {stats['stream']['users']}, "
                  f"rolled: {stats['stream']['sessions_rolled']}}}")

    # 3. Prequential replay: test-then-train over the time-ordered
    #    stream, three deployments of one predictor — stateless rebuild
    #    baseline, cached streaming state, and streaming state with
    #    incremental O(session) graph updates.  Identical ranked lists,
    #    very different throughput.
    comparison = compare_replay(
        Predictor(model, graph_cache_size=512), events, max_events=400
    )
    comparison.pop("_reports")
    stream, baseline = comparison["stream"], comparison["baseline"]
    incremental = comparison["incremental"]
    print(f"\nprequential replay over {comparison['events']} events "
          f"({stream['predictions']} predictions):")
    print(f"  incremental {incremental['events_per_second']:8.1f} events/s   "
          f"({incremental['ingest']['graph_pushes']} graph pushes)")
    print(f"  streaming   {stream['events_per_second']:8.1f} events/s   "
          f"Recall@10 {stream['metrics']['Recall@10']:.4f}  "
          f"MRR {stream['metrics']['MRR']:.4f}")
    print(f"  baseline    {baseline['events_per_second']:8.1f} events/s   "
          f"(rebuild per request)")
    print(f"  speedup {comparison['speedup']:.2f}x stream / "
          f"{comparison['incremental_speedup']:.2f}x incremental, "
          f"ranked lists identical: {comparison['ranked_lists_identical']} / "
          f"{comparison['incremental_ranked_identical']}")


if __name__ == "__main__":
    main()
