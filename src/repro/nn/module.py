"""Module/Parameter machinery mirroring the familiar torch.nn API.

A :class:`Module` discovers its parameters and sub-modules by attribute
inspection, supports train/eval switching (needed by dropout), and can
serialise its state to plain numpy arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autograd import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable by its owning module.

    ``version`` counts in-place weight updates (optimiser steps,
    ``load_state_dict``); serving caches key off the module-level sum.
    """

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.version = 0


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # parameter / module discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if name.startswith("_module_cache"):
                continue
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{full}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{key}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # train / eval, grads, state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def weights_version(self) -> int:
        """Monotonic token over all parameter updates (cache invalidation).

        Serving reads this on every batch, so the flattened parameter
        list is cached after the first call (``_module_cache`` prefix:
        invisible to ``named_parameters``).  Parameter *objects* are
        stable across optimiser steps and ``load_state_dict`` — both
        rebind ``p.data`` and bump ``p.version`` on the same object —
        so the cache only goes stale if whole sub-modules are grafted
        on after the first call, which no model here does post-init.
        """
        params = getattr(self, "_module_cache_flat_params", None)
        if params is None:
            params = tuple(p for _, p in self.named_parameters())
            self._module_cache_flat_params = params
        return sum(p.version for p in params)

    def compute_embeddings(self) -> tuple:
        """Shared per-batch state for train/inference loops.

        The predictor protocol's convention: models precomputing shared
        tables (e.g. TSPN-RA's E_T/E_P) override this; stateless models
        inherit the empty tuple.
        """
        return ()

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            p.data = state[name].copy()
            p.version += 1

    def extra_state(self) -> Dict[str, np.ndarray]:
        """Non-parameter arrays a checkpoint must carry (override as needed)."""
        return {}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        if state:
            raise KeyError(f"unexpected extra state: {sorted(state)}")


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A registered list of sub-modules (iterable, indexable)."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)

    def __getitem__(self, i):
        return self.items[i]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container, not callable")
