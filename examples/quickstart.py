"""Quickstart: build a city, train TSPN-RA, recommend the next POI.

Runs in about a minute on a laptop CPU:

    python examples/quickstart.py
"""

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.eval import evaluate
from repro.train import TrainConfig, Trainer
from repro.utils import spawn


def main() -> None:
    # 1. A synthetic NYC-like city: land use, roads, rendered satellite
    #    tiles, POIs and simulated user check-ins (see repro.data.synth).
    dataset = build_dataset("nyc", seed=7, scale=0.4, imagery_resolution=32)
    print(
        f"dataset: {len(dataset.checkins)} check-ins, "
        f"{len(dataset.city.pois)} POIs, "
        f"{len(dataset.quadtree.leaves())} quad-tree leaf tiles"
    )

    # 2. Prediction samples with the paper's 72h trajectory windowing,
    #    split 80/10/10 by trajectory.
    splits = split_samples(make_samples(dataset), seed=7)
    print(f"samples: train={len(splits.train)} valid={len(splits.valid)} test={len(splits.test)}")

    # 3. The model: remote-sensing tile embeddings, QR-P historical
    #    graph, two-step tile->POI prediction.
    config = TSPNRAConfig(dim=32, fusion_layers=1, hgat_layers=1, top_k=10)
    model = TSPNRA.from_dataset(dataset, config, rng=spawn(7))
    print(f"model: {model.num_parameters():,} parameters")

    # 4. Train with Adam + decay (paper Sec. VI-A protocol, scaled down).
    trainer = Trainer(
        model,
        TrainConfig(epochs=6, batch_size=8, lr=5e-3, max_train_samples=400, seed=7, verbose=True),
    )
    trainer.fit(splits.train)

    # 5. Evaluate with the paper's metrics.
    metrics = evaluate(model, splits.test[:150])
    print("test metrics:")
    for name, value in metrics.items():
        print(f"  {name:10s} {value:.4f}")

    # 6. One concrete recommendation.
    sample = splits.test[0]
    result = model.predict(sample)
    pois = dataset.city.pois
    print(f"\nuser {sample.user_id} has visited {sample.prefix_poi_ids}")
    print(f"predicted tiles (top {config.top_k}): {result.ranked_tiles[:config.top_k]}")
    print("top-5 recommended POIs:")
    for poi_id in result.ranked_pois[:5]:
        poi = pois[poi_id]
        marker = "  <-- actual next visit" if poi_id == sample.target.poi_id else ""
        print(
            f"  poi {poi.poi_id:4d}  ({poi.x:6.2f}, {poi.y:6.2f})  "
            f"{pois.category_names[poi.category]}{marker}"
        )
    if result.target_poi in result.ranked_pois:
        print(
            f"actual next POI ranked #{result.poi_rank} "
            f"of {len(result.ranked_pois)} candidates"
        )
    else:
        # outside the top-K tiles: ranks past the whole POI universe
        print(
            f"actual next POI missed the {len(result.ranked_pois)}-candidate set "
            f"(rank {result.poi_rank} = num_pois + 1)"
        )


if __name__ == "__main__":
    main()
