"""Prequential streaming evaluation: test-then-train over a replay.

A held-out :class:`~repro.data.checkin.CheckinDataset` is replayed in
global time order through the ingest pipeline.  For every arrival that
*continues* a user's open session the model first predicts the next POI
from the state stored **before** the event (the test step), and only
then is the event ingested (the train step) — the classic prequential
order, so no prediction can ever see its own label or any later
check-in.  Arrivals that open a new session have no offline
prediction-sample counterpart (a session's first visit is never a
target) and are ingested without a test step, which makes the replayed
prediction set *identical* to the offline
:func:`~repro.data.trajectory.samples_from_trajectories` protocol over
the same prefixes.

Because each test sample is built from an immutable
:class:`~repro.stream.state.UserSnapshot`, prediction and ingestion
decouple: the replay ingests eagerly and flushes predictions through
the vectorised ``predict_batch`` in chunks — cross-user batching with
per-user prequential order intact.  The serialised baseline
(:func:`serialised_rebuild_baseline`) is what a stateless deployment
must do instead: rebuild the user's sessions from the raw log and
recompute the per-user QR-P graph on every single request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..data.trajectory import (
    DEFAULT_GAP_HOURS,
    PredictionSample,
    Visit,
    split_into_trajectories,
)
from ..eval.metrics import DEFAULT_KS, metric_table
from .events import CheckinEvent
from .ingest import StreamIngest
from .state import StoreConfig, UserStateStore

#: Prediction flush size of the streaming replay: large enough to
#: amortise the padded batch encode, small enough to bound the padded
#: tensors (mirrors the serving scheduler's max_batch_size scale).
REPLAY_BATCH_SIZE = 32


@dataclass
class ReplayRecord:
    """One prequential prediction: where it happened and how it ranked.

    ``(user_id, history_len, prefix_len)`` is the sample's identity in
    the offline protocol — ``history_len`` is the current trajectory's
    index, ``prefix_len`` the target position — which is what the
    replay-vs-offline identity test joins on.
    """

    user_id: int
    history_len: int
    prefix_len: int
    target_poi: int
    rank: int
    result: Optional[object] = None  # PredictorResult when keep_results

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.user_id, self.history_len, self.prefix_len)


@dataclass
class ReplayReport:
    """Outcome of one replay leg: accuracy under streaming arrival plus
    sustained ingest+predict throughput."""

    leg: str
    events: int
    predictions: int
    seconds: float
    metrics: Dict[str, float]
    records: List[ReplayRecord] = field(default_factory=list)
    ingest_stats: Dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else float("inf")

    @property
    def predictions_per_second(self) -> float:
        return self.predictions / self.seconds if self.seconds > 0 else float("inf")

    def as_dict(self) -> Dict:
        """JSON-ready summary (records elided; they can be huge)."""
        return {
            "leg": self.leg,
            "events": self.events,
            "predictions": self.predictions,
            "seconds": round(self.seconds, 4),
            "events_per_second": round(self.events_per_second, 2),
            "predictions_per_second": round(self.predictions_per_second, 2),
            "metrics": {k: round(v, 6) for k, v in self.metrics.items()},
            **(
                {"ingest": self.ingest_stats}
                if self.ingest_stats
                else {}
            ),
        }

    @property
    def ranks(self) -> List[int]:
        return [record.rank for record in self.records]


def prequential_replay(
    predictor,
    events: Sequence[CheckinEvent],
    *,
    ingest: Optional[StreamIngest] = None,
    store_config: Optional[StoreConfig] = None,
    batch_size: int = REPLAY_BATCH_SIZE,
    ks: Iterable[int] = DEFAULT_KS,
    keep_results: bool = False,
    max_events: Optional[int] = None,
    incremental: bool = True,
    quality=None,
    drift=None,
) -> ReplayReport:
    """Replay ``events`` through ingest-then-predict, prequentially.

    ``predictor`` is a :class:`~repro.serve.Predictor` (its QR-P graph
    cache, when present, is registered with the ingest pipeline so
    session rollovers retire stale entries — and, by default, receive
    the incrementally updated replacement graphs; ``incremental=False``
    keeps the PR 5 rebuild-on-miss behaviour for comparison legs).
    Passing an existing ``ingest`` continues a warm store — e.g. the
    one a live :class:`~repro.serve.InferenceServer` owns — with
    whatever registrations it already carries.

    ``quality`` (a :class:`~repro.obs.QualityMonitor`) sees every
    prediction through its labelled-sample path — replay samples carry
    their prequential target, so each records and joins in one step —
    and ``drift`` (a :class:`~repro.obs.DriftDetector`) observes every
    ingested event.  Both default off; the quality-overhead bench leg
    and the drift scenario turn them on.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if ingest is None:
        ingest = StreamIngest(UserStateStore(store_config or StoreConfig()))
        ingest.register_predictor(predictor, incremental=incremental)
    if drift is not None:
        ingest.add_observer(drift.update)
    events = list(events)
    if max_events is not None:
        events = events[:max_events]
    ks = tuple(ks)

    records: List[ReplayRecord] = []
    pending: List[PredictionSample] = []

    def flush() -> None:
        if not pending:
            return
        for sample, result in zip(pending, predictor.predict_batch(pending)):
            if quality is not None:
                quality.record(sample, result)
            records.append(
                ReplayRecord(
                    user_id=sample.user_id,
                    history_len=len(sample.history),
                    prefix_len=len(sample.prefix),
                    target_poi=result.target_poi,
                    rank=result.poi_rank,
                    result=result if keep_results else None,
                )
            )
        pending.clear()

    store = ingest.store
    start = time.perf_counter()
    for event in events:
        snapshot = store.get_snapshot(event.user_id)
        if snapshot is not None and snapshot.continues_session(event):
            # the test step: a sample built from the pre-ingest
            # snapshot is immune to everything ingested after it, so
            # flushing later in a batch cannot leak the label
            pending.append(
                snapshot.sample(target=Visit(poi_id=event.poi_id, timestamp=event.timestamp))
            )
        ingest.ingest(event)
        if len(pending) >= batch_size:
            flush()
    flush()
    seconds = time.perf_counter() - start

    return ReplayReport(
        leg="stream",
        events=len(events),
        predictions=len(records),
        seconds=seconds,
        metrics=metric_table([r.rank for r in records], ks=ks),
        records=records,
        ingest_stats=ingest.stats(),
    )


def serialised_rebuild_baseline(
    predictor,
    events: Sequence[CheckinEvent],
    *,
    gap_hours: float = DEFAULT_GAP_HOURS,
    ks: Iterable[int] = DEFAULT_KS,
    keep_results: bool = False,
    max_events: Optional[int] = None,
) -> ReplayReport:
    """The stateless deployment's cost model, measured honestly.

    Per arrival: re-split the user's entire raw check-in log into
    sessions from scratch (the server holds no state, so every request
    rebuilds it), predict serially with a never-repeating graph-cache
    key (no per-user state means nothing to key graph reuse on), then
    append the event to the log.  Prediction decisions and inputs are
    identical to :func:`prequential_replay`, so the two legs' ranked
    lists must agree — only the throughput differs.
    """
    events = list(events)
    if max_events is not None:
        events = events[:max_events]
    ks = tuple(ks)

    logs: Dict[int, List] = {}
    records: List[ReplayRecord] = []
    start = time.perf_counter()
    for index, event in enumerate(events):
        log = logs.setdefault(event.user_id, [])
        if log and event.timestamp < log[-1].timestamp:
            raise ValueError(
                f"out-of-order check-in for user {event.user_id}; "
                "per-user events must be time-ordered"
            )
        if log and event.timestamp - log[-1].timestamp < gap_hours:
            trajectories = split_into_trajectories(log, gap_hours=gap_hours)
            sample = PredictionSample(
                user_id=event.user_id,
                history=trajectories[:-1],
                prefix=trajectories[-1].visits,
                target=Visit(poi_id=event.poi_id, timestamp=event.timestamp),
                history_key=("replay-baseline", event.user_id, index),
            )
            result = predictor.predict_batch([sample])[0]
            records.append(
                ReplayRecord(
                    user_id=sample.user_id,
                    history_len=len(sample.history),
                    prefix_len=len(sample.prefix),
                    target_poi=result.target_poi,
                    rank=result.poi_rank,
                    result=result if keep_results else None,
                )
            )
        log.append(event.to_checkin())
    seconds = time.perf_counter() - start

    return ReplayReport(
        leg="baseline",
        events=len(events),
        predictions=len(records),
        seconds=seconds,
        metrics=metric_table([r.rank for r in records], ks=ks),
        records=records,
    )


def offline_reference(
    predictor, samples: Sequence[PredictionSample], batch_size: int = 128
) -> Dict[Tuple[int, int, int], object]:
    """Offline results keyed the way replay records key themselves.

    Feeds ``samples`` (e.g. ``make_samples(dataset)``) through the
    predictor in chunks and indexes each result by
    ``(user_id, history_len, prefix_len)`` — the join key for the
    replay-vs-offline identity check.
    """
    reference: Dict[Tuple[int, int, int], object] = {}
    samples = list(samples)
    for lo in range(0, len(samples), batch_size):
        chunk = samples[lo : lo + batch_size]
        for sample, result in zip(chunk, predictor.predict_batch(chunk)):
            reference[(sample.user_id, len(sample.history), len(sample.prefix))] = result
    return reference


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare_replay(
    predictor,
    events: Sequence[CheckinEvent],
    *,
    batch_size: int = REPLAY_BATCH_SIZE,
    store_config: Optional[StoreConfig] = None,
    ks: Iterable[int] = DEFAULT_KS,
    max_events: Optional[int] = None,
    rounds: int = 1,
) -> Dict:
    """Run all three legs over one event stream and report the speedups.

    Legs, over identical events with identical prediction decisions:

    * ``baseline`` — the serialised stateless rebuild (PR 5's cost
      model);
    * ``stream`` — the stored-state path with rebuild-on-cache-miss
      graphs (the PR 5 streaming configuration);
    * ``incremental`` — the stored-state path with the O(session)
      graph maintainer pushing updated entries on every rollover.

    The predictor's graph cache is cleared before every leg pass so
    none inherits another's warm entries, and the shared embedding
    tables are computed once *before* any timed loop — all legs reuse
    them identically (the tables are a pure function of the weights,
    not of the stream), so the speedups measure the state
    architecture, not who paid the one-time warm-up.  The default
    store bounds are widened so the streaming legs' (bounded) history
    matches the baseline's unbounded rebuild on any realistic replay —
    all legs must produce identical full ranked candidate lists
    (``ranked_lists_identical`` / ``incremental_ranked_identical``).

    With ``rounds > 1`` the legs run *interleaved round-robin* and each
    speedup is the **median of per-round paired ratios** — the serve
    bench's idiom: a contention burst inflates both passes of a round
    and cancels in their ratio, where a ratio of independent leg totals
    would not.  The reported leg dicts come from the first round (the
    one that keeps per-prediction results for the identity checks).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if store_config is None:
        store_config = StoreConfig(max_sessions=4096, max_session_visits=4096)
    events = list(events)
    if max_events is not None:
        events = events[:max_events]

    def reset_cache() -> None:
        cache = getattr(predictor, "graph_cache", None)
        if cache is not None:
            cache.clear()

    predictor.shared_state()  # warm the embedding tables for every leg

    def run_leg(leg: str, keep: bool) -> ReplayReport:
        reset_cache()
        if leg == "baseline":
            return serialised_rebuild_baseline(
                predictor,
                events,
                gap_hours=store_config.gap_hours,
                ks=ks,
                keep_results=keep,
            )
        report = prequential_replay(
            predictor,
            events,
            store_config=store_config,
            batch_size=batch_size,
            ks=ks,
            keep_results=keep,
            incremental=(leg == "incremental"),
        )
        report.leg = leg
        return report

    leg_names = ("baseline", "stream", "incremental")
    first: Dict[str, ReplayReport] = {}
    seconds: Dict[str, List[float]] = {name: [] for name in leg_names}
    for round_index in range(rounds):
        for name in leg_names:
            report = run_leg(name, keep=(round_index == 0))
            seconds[name].append(report.seconds)
            if round_index == 0:
                first[name] = report

    def paired_ratio(slow: str, fast: str) -> float:
        ratios = [s / f for s, f in zip(seconds[slow], seconds[fast]) if f > 0]
        return _median(ratios) if ratios else float("inf")

    ranked = {
        name: [r.result.ranked_pois for r in first[name].records]
        for name in leg_names
    }
    return {
        "events": len(events),
        "batch_size": batch_size,
        "rounds": rounds,
        "baseline": first["baseline"].as_dict(),
        "stream": first["stream"].as_dict(),
        "incremental": first["incremental"].as_dict(),
        "speedup": round(paired_ratio("baseline", "stream"), 4),
        "incremental_speedup": round(paired_ratio("baseline", "incremental"), 4),
        "incremental_vs_stream": round(paired_ratio("stream", "incremental"), 4),
        "ranked_lists_identical": ranked["stream"] == ranked["baseline"],
        "incremental_ranked_identical": ranked["incremental"] == ranked["baseline"],
        "_reports": dict(first),
    }
