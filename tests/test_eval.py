"""Tests for metrics, the evaluator and efficiency probes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    EfficiencyReport,
    measure,
    metric_table,
    mrr,
    ndcg_at_k,
    recall_at_k,
)

ranks_strategy = st.lists(st.integers(1, 500), min_size=1, max_size=60)


class TestRecall:
    def test_perfect(self):
        assert recall_at_k([1, 1, 1], 5) == 1.0

    def test_miss(self):
        assert recall_at_k([6, 10], 5) == 0.0

    def test_mixed(self):
        assert recall_at_k([1, 6], 5) == 0.5

    def test_empty(self):
        assert recall_at_k([], 5) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(ranks_strategy)
    def test_monotone_in_k(self, ranks):
        assert recall_at_k(ranks, 5) <= recall_at_k(ranks, 10) <= recall_at_k(ranks, 20)

    @settings(max_examples=50, deadline=None)
    @given(ranks_strategy)
    def test_bounds(self, ranks):
        assert 0.0 <= recall_at_k(ranks, 10) <= 1.0


class TestNDCG:
    def test_rank_one_is_one(self):
        assert ndcg_at_k([1], 5) == pytest.approx(1.0)

    def test_rank_two_discounted(self):
        assert ndcg_at_k([2], 5) == pytest.approx(1.0 / np.log2(3))

    def test_outside_k_zero(self):
        assert ndcg_at_k([6], 5) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(ranks_strategy)
    def test_ndcg_at_most_recall(self, ranks):
        # per-item gain <= 1 and zero outside k, so NDCG@k <= Recall@k
        assert ndcg_at_k(ranks, 10) <= recall_at_k(ranks, 10) + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(ranks_strategy)
    def test_monotone_in_k(self, ranks):
        assert ndcg_at_k(ranks, 5) <= ndcg_at_k(ranks, 20) + 1e-12


class TestMRR:
    def test_values(self):
        assert mrr([1, 2, 4]) == pytest.approx((1 + 0.5 + 0.25) / 3)

    @settings(max_examples=50, deadline=None)
    @given(ranks_strategy)
    def test_bounds(self, ranks):
        assert 0.0 < mrr(ranks) <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(ranks_strategy)
    def test_improving_a_rank_improves_mrr(self, ranks):
        if ranks[0] == 1:
            return
        better = [ranks[0] - 1] + ranks[1:]
        assert mrr(better) > mrr(ranks)


class TestMetricTable:
    def test_columns_present(self):
        table = metric_table([1, 3, 8])
        for key in ("Recall@5", "Recall@10", "Recall@20", "NDCG@5", "MRR"):
            assert key in table

    def test_custom_ks(self):
        table = metric_table([1], ks=(1,))
        assert set(table) == {"Recall@1", "NDCG@1", "MRR"}


class TestEfficiency:
    def test_measure_returns_report(self):
        report = measure("toy", train_fn=lambda: sum(range(10000)), infer_fn=lambda: None)
        assert isinstance(report, EfficiencyReport)
        assert report.train_seconds >= 0
        assert report.peak_memory_mb >= 0

    def test_report_row_format(self):
        report = EfficiencyReport("m", peak_memory_mb=12.5, train_seconds=65.0, infer_seconds=2.0)
        row = report.as_row()
        assert row[0] == "m"
        assert row[2] == "01:05.0"
