"""TSPN-RA hyper-parameters and ablation switches."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class TSPNRAConfig:
    """Model configuration.

    Defaults follow the paper's implementation details (Sec. VI-A)
    scaled to the reproduction substrate: the paper uses dm=512 on GPU;
    the CPU default here is 64 (Fig. 10 showed dm mattered little on
    TKY, and the parameter-sweep bench varies it).
    """

    dim: int = 64  # d_m, embedding dimension
    num_heads: int = 4
    fusion_layers: int = 2  # N attention blocks in MP1/MP2
    hgat_layers: int = 2  # n aggregation rounds (Eq. 6)
    alpha: float = 0.7  # POI id/category merge ratio (Eq. 5)
    top_k: int = 10  # K tiles kept by step one
    dropout: float = 0.1
    loss_scale: float = 16.0  # s in Eq. 8
    loss_margin: float = 0.20  # m in Eq. 8
    beta: float = 1.0  # tile-loss weight in the total loss
    spatial_scale: float = 100.0  # coordinate multiplier before Eq. 4 sinusoids
    # --- ablation switches (Table IV) ---
    use_imagery: bool = True  # False -> learnable tile table ("No Imagery")
    use_two_step: bool = True  # False -> rank all POIs directly ("No Two-step")
    use_graph: bool = True  # False -> drop QR-P input ("No Graph")
    use_st_encoder: bool = True  # False -> drop Ms and Mt ("No S&T Encoder")
    use_category: bool = True  # False -> id-only POI embeddings ("No POI Category")
    drop_edge_type: str = ""  # "road" | "contain" for fine-grained ablations
    negatives_no_two_step: int = 64  # sampled negatives when two-step is off

    def __post_init__(self):
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if self.dim % 4 != 0:
            raise ValueError("dim must be divisible by 4 (Eq. 4 splits dims between x and y)")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1) per Eq. 5")
        if self.drop_edge_type not in ("", "road", "contain", "branch"):
            raise ValueError("drop_edge_type must be '', 'road', 'contain' or 'branch'")

    def variant(self, **changes) -> "TSPNRAConfig":
        """Copy with overrides (how the ablation table is generated)."""
        return replace(self, **changes)
