"""Shared utilities: seeded RNG management and measurement probes."""

from .rng import default_rng, derive, set_seed, spawn
from .timer import Ledger, Stopwatch, TimerResult

__all__ = [
    "Ledger",
    "Stopwatch",
    "TimerResult",
    "default_rng",
    "derive",
    "set_seed",
    "spawn",
]
