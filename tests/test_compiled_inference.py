"""Compiled-vs-eager identity for the serving hot path.

The load-bearing guarantee of the compiled-plan refactor: float64 plan
replay produces ranked lists *bit-identical* to the eager graph on
every surface — direct ``predict_batch``, the stream replay harness,
and (in ``test_serve_async.py`` / ``test_cluster.py``) the async server
and cluster tiers.  Also covers shape bucketing, the plan cache's
hit/miss/fallback ladder, reload-driven re-trace, and the
``compile=False`` escape hatch.
"""

import numpy as np
import pytest

from repro.autograd import TraceError
from repro.baselines import MarkovChain
from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.data.trajectory import PredictionSample, Trajectory, Visit
from repro.serve import PlanCache, Predictor, compare_throughput, supports_plans
from repro.stream import events_from_checkins, prequential_replay
from repro.utils import spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)


@pytest.fixture(scope="module")
def tiny():
    dataset = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=0)
    return dataset, splits


@pytest.fixture(scope="module")
def model(tiny):
    dataset, _ = tiny
    model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    model.eval()
    return model


def _edge_case_batch(splits):
    """Mixed lengths, no-history, length-1 prefix, and target-less."""
    batch = list(splits.test[:8])
    with_history = next(s for s in splits.test if s.history)
    batch.append(
        PredictionSample(
            user_id=with_history.user_id,
            history=[],
            prefix=with_history.prefix,
            target=with_history.target,
            history_key=(with_history.user_id, -1),
        )
    )
    batch.append(
        PredictionSample(
            user_id=with_history.user_id,
            history=with_history.history,
            prefix=with_history.prefix[:1],
            target=with_history.target,
            history_key=with_history.history_key,
        )
    )
    batch.append(
        PredictionSample(
            user_id=with_history.user_id,
            history=with_history.history,
            prefix=with_history.prefix,
            target=None,
            history_key=with_history.history_key,
        )
    )
    assert len({len(s.prefix) for s in batch}) > 1
    return batch


def _assert_identical(compiled, eager):
    assert len(compiled) == len(eager)
    for c, e in zip(compiled, eager):
        assert c.ranked_tiles == e.ranked_tiles
        assert c.ranked_pois == e.ranked_pois
        assert c.target_poi == e.target_poi
        assert c.num_pois == e.num_pois
        assert c.poi_rank == e.poi_rank


# ----------------------------------------------------------------------
# shape bucketing
# ----------------------------------------------------------------------
class TestPlanBucket:
    def test_small_batches_round_to_pow2(self, tiny, model):
        _, splits = tiny
        batch = [s for s in splits.test if not s.history][:3]
        assert len(batch) == 3
        b, l, ht, hp = model.plan_bucket(batch)
        assert b == 4  # 3 -> next pow2
        assert l >= max(len(s.prefix) for s in batch)
        assert l % 4 == 0  # lengths round to a multiple of 4
        assert ht == 0 and hp == 0  # no history => no cross-attention

    def test_large_batches_round_to_multiple_of_4(self, tiny, model):
        _, splits = tiny
        batch = list(splits.test[:13])
        b, _, _, _ = model.plan_bucket(batch)
        assert b == 16

    def test_history_batches_get_knowledge_width(self, tiny, model):
        _, splits = tiny
        batch = [s for s in splits.test if s.history][:2]
        assert batch
        b, l, ht, hp = model.plan_bucket(batch)
        assert b == 2
        # knowledge widths are 0 or a multiple of 8
        for width in (ht, hp):
            assert width % 8 == 0
        assert ht or hp  # history batches carry some knowledge

    def test_same_bucket_means_plan_reuse(self, tiny, model):
        _, splits = tiny
        no_hist = [s for s in splits.test if not s.history]
        # different raw lengths, same pow2 length bucket
        same = sorted(
            (s for s in no_hist if 5 <= len(s.prefix) <= 8),
            key=lambda s: len(s.prefix),
        )
        assert len(same) >= 4
        a, b = same[:2], same[-2:]
        assert {len(s.prefix) for s in a} != {len(s.prefix) for s in b}
        assert model.plan_bucket(a) == model.plan_bucket(b)

    def test_empty_batch_rejected(self, model):
        with pytest.raises(ValueError):
            model.plan_bucket([])


# ----------------------------------------------------------------------
# compiled vs eager: direct predict_batch
# ----------------------------------------------------------------------
class TestCompiledIdentity:
    def test_float64_bit_identical_on_edge_cases(self, tiny, model):
        _, splits = tiny
        batch = _edge_case_batch(splits)
        eager = Predictor(model, graph_cache_size=None, compile=False)
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        _assert_identical(compiled.predict_batch(batch), eager.predict_batch(batch))
        assert compiled.plan_cache is not None
        assert compiled.plan_cache.traces >= 1

    def test_replay_pass_still_identical(self, tiny, model):
        """Second pass hits the cached plan (and the knowledge cache)."""
        _, splits = tiny
        batch = _edge_case_batch(splits)
        eager = Predictor(model, graph_cache_size=None, compile=False)
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        compiled.predict_batch(batch)  # warm: trace + knowledge-cache fill
        before = compiled.plan_cache.hits
        _assert_identical(compiled.predict_batch(batch), eager.predict_batch(batch))
        assert compiled.plan_cache.hits > before

    def test_bucket_padding_edges(self, tiny, model):
        """Batch sizes straddling the bucket boundaries stay identical."""
        _, splits = tiny
        eager = Predictor(model, graph_cache_size=None, compile=False)
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        pool = list(splits.test[:16])
        for size in (1, 2, 7, 8, 9, 16):
            batch = pool[:size]
            _assert_identical(
                compiled.predict_batch(batch), eager.predict_batch(batch)
            )

    def test_replay_with_different_masks_same_bucket(self, tiny, model):
        """One plan, two batches whose padding masks differ.

        Regression test: replay kernels may keep per-step scratch (e.g.
        a materialised broadcast of the attention mask) only if they
        re-validate it against the incoming feed — the mask is dynamic
        and changes between batches that share a shape bucket.
        """
        _, splits = tiny
        base = max((s for s in splits.test if s.history), key=lambda s: len(s.prefix))
        full = len(base.prefix)
        assert full >= 2

        # a shorter synthetic history: fewer distinct POIs => fewer
        # QR-P knowledge rows => a different cross-attention padding
        # mask inside the same width-8 bucket
        seen: list = []
        for visit in base.history[0].visits:
            if visit.poi_id not in seen:
                seen.append(visit.poi_id)
        assert len(seen) >= 2
        short_history = [
            Trajectory(
                user_id=base.user_id,
                visits=[Visit(poi_id=seen[0], timestamp=1.0)],
            )
        ]

        def variant(n_prefix, history, tag):
            return PredictionSample(
                user_id=base.user_id,
                history=history,
                prefix=base.prefix[:n_prefix],
                target=None,
                history_key=(base.user_id, -10 - tag),  # bypass knowledge cache
            )

        # same bucket on every axis, different padding masks: per-row
        # prefix lengths differ and the knowledge row counts differ
        first = [variant(full, base.history, 0)] * 4
        second = [
            variant(full, short_history, 1),
            variant(1, base.history, 2),
            variant(full, short_history, 3),
            variant(1, short_history, 4),
        ]
        assert model.plan_bucket(first) == model.plan_bucket(second)
        assert model._knowledge_counts(second[0]) != model._knowledge_counts(first[0])
        eager = Predictor(model, graph_cache_size=None, compile=False)
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        compiled.predict_batch(first)  # traces the bucket's plan
        before = compiled.plan_cache.traces
        _assert_identical(compiled.predict_batch(second), eager.predict_batch(second))
        assert compiled.plan_cache.traces == before  # replayed, not re-traced

    def test_float32_within_tolerance(self, tiny, model):
        _, splits = tiny
        batch = _edge_case_batch(splits)
        eager = Predictor(model, graph_cache_size=None, compile=False)
        f32 = Predictor(
            model, graph_cache_size=None, compile=True, plan_dtype="float32"
        )
        got = f32.predict_batch(batch)
        want = eager.predict_batch(batch)
        # float32 replay may legitimately swap near-ties deep in the
        # list; the head of the ranking must survive the down-cast.
        agree = sum(g.ranked_pois[0] == w.ranked_pois[0] for g, w in zip(got, want))
        assert agree >= int(0.8 * len(batch))
        for g, w in zip(got, want):
            assert set(g.ranked_tiles) == set(w.ranked_tiles)

    def test_results_do_not_leak_padding(self, tiny, model):
        """A 3-sample batch in a 4-wide bucket returns exactly 3 results."""
        _, splits = tiny
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        batch = list(splits.test[:3])
        results = compiled.predict_batch(batch)
        assert len(results) == 3


# ----------------------------------------------------------------------
# plan cache behaviour through the Predictor facade
# ----------------------------------------------------------------------
class TestPlanCacheBehaviour:
    def test_compile_false_escape_hatch(self, model):
        assert Predictor(model, graph_cache_size=None, compile=False).plan_cache is None

    def test_baselines_served_eagerly(self):
        mc = MarkovChain(num_pois=10)
        assert not supports_plans(mc)
        assert Predictor(mc, graph_cache_size=None, compile=True).plan_cache is None

    def test_reload_invalidates_and_retraces(self, tiny):
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
        model.eval()
        batch = list(splits.test[:4])
        eager = Predictor(model, graph_cache_size=None, compile=False)
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        compiled.predict_batch(batch)
        assert compiled.plan_cache.traces == 1
        version = model.weights_version()
        model.load_state_dict(model.state_dict())  # hot reload, same weights
        assert model.weights_version() != version
        _assert_identical(compiled.predict_batch(batch), eager.predict_batch(batch))
        assert compiled.plan_cache.traces == 2  # stale plan dropped, re-traced

    def test_reload_during_build_is_not_cached(self, tiny, monkeypatch):
        """A reload landing mid-trace must not leave a stale cached plan.

        The plan is built from the embedding tables captured *before*
        the reload; caching it under any version would serve pre-reload
        constants after the version-keyed invalidation should have
        retired them.  The batch itself is served, nothing is cached,
        and the next batch re-traces against the new weights.
        """
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
        model.eval()
        batch = list(splits.test[:4])
        eager = Predictor(model, graph_cache_size=None, compile=False)
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        orig_build = model.build_encode_plan

        def reload_lands_mid_build(*args, **kwargs):
            entry = orig_build(*args, **kwargs)
            model.load_state_dict(model.state_dict())  # hot reload races the build
            return entry

        monkeypatch.setattr(model, "build_encode_plan", reload_lands_mid_build)
        compiled.predict_batch(batch)
        assert compiled.plan_cache.traces == 1
        assert len(compiled.plan_cache) == 0  # built, served, discarded
        monkeypatch.setattr(model, "build_encode_plan", orig_build)
        _assert_identical(compiled.predict_batch(batch), eager.predict_batch(batch))
        assert compiled.plan_cache.traces == 2  # clean re-trace, now cached
        assert len(compiled.plan_cache) == 1
        _assert_identical(compiled.predict_batch(batch), eager.predict_batch(batch))
        assert compiled.plan_cache.hits == 1

    def test_trace_failure_falls_back_to_eager(self, tiny, model, monkeypatch):
        _, splits = tiny
        batch = list(splits.test[:4])
        eager = Predictor(model, graph_cache_size=None, compile=False)
        compiled = Predictor(model, graph_cache_size=None, compile=True)

        def boom(*args, **kwargs):
            raise TraceError("op 'untraceable' has no replay kernel")

        monkeypatch.setattr(model, "build_encode_plan", boom)
        _assert_identical(compiled.predict_batch(batch), eager.predict_batch(batch))
        assert compiled.plan_cache.fallbacks == 1
        assert len(compiled.plan_cache) == 0
        # the failed bucket is remembered: no second trace attempt
        compiled.predict_batch(batch)
        assert compiled.plan_cache.fallbacks == 2
        assert compiled.plan_cache.misses == 1

    def test_shared_cache_across_predictors(self, tiny, model):
        """A pool of replicas shares one cache: one trace, then hits."""
        _, splits = tiny
        batch = list(splits.test[:4])
        cache = PlanCache(dtype="float64")
        a = Predictor(model, graph_cache_size=None, plan_cache=cache)
        b = Predictor(model, graph_cache_size=None, plan_cache=cache)
        first = a.predict_batch(batch)
        second = b.predict_batch(batch)
        _assert_identical(second, first)
        assert cache.traces == 1 and cache.hits == 1

    def test_stats_shape(self, tiny, model):
        _, splits = tiny
        compiled = Predictor(model, graph_cache_size=None, compile=True)
        compiled.predict_batch(list(splits.test[:4]))
        stats = compiled.plan_cache.stats()
        assert stats["enabled"] is True
        assert stats["dtype"] == "float64"
        assert stats["traces"] == 1 and stats["misses"] == 1
        (entry,) = stats["plans"]
        assert entry["bucket"][0] == 4
        assert entry["steps"] > 0
        assert entry["buffer_bytes"] > 0
        assert entry["runs"] >= 1


# ----------------------------------------------------------------------
# stream replay surface
# ----------------------------------------------------------------------
class TestStreamReplayIdentity:
    def test_prequential_replay_identical(self, tiny):
        dataset, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
        model.eval()
        events = events_from_checkins(dataset.checkins)[:200]
        eager = prequential_replay(
            Predictor(model, graph_cache_size=None, compile=False),
            events,
            batch_size=16,
            keep_results=True,
        )
        compiled = prequential_replay(
            Predictor(model, graph_cache_size=None, compile=True),
            events,
            batch_size=16,
            keep_results=True,
        )
        assert compiled.predictions == eager.predictions
        assert compiled.metrics == eager.metrics
        for c, e in zip(compiled.records, eager.records):
            assert c.rank == e.rank
            assert c.result.ranked_pois == e.result.ranked_pois


# ----------------------------------------------------------------------
# throughput microbench surface
# ----------------------------------------------------------------------
class TestCompareThroughput:
    def test_compiled_legs_reported(self, tiny, model):
        _, splits = tiny
        report = compare_throughput(model, splits.test[:12], repeats=1, batch_size=8)
        for leg in ("compiled", "compiled_f32"):
            assert report[f"{leg}_sps"] > 0
            assert report[f"{leg}_warmup_seconds"] >= 0
            assert report[f"{leg}_plans"] >= 1
        assert "compiled_speedup" in report

    def test_baseline_report_has_no_compiled_legs(self, tiny):
        _, splits = tiny
        mc = MarkovChain(400)
        mc.fit(splits.train[:50])
        report = compare_throughput(mc, splits.test[:8], repeats=1, batch_size=8)
        assert "compiled_sps" not in report
        assert report["batched_sps"] > 0
