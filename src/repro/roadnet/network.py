"""Road network container.

Wraps a ``networkx.Graph`` whose nodes carry planar positions.  The
QR-P graph construction only needs one query from it — "does a road
link tile A to tile B" — answered by :mod:`repro.roadnet.adjacency`,
but the container also exposes the usual measures used in tests and
examples (road density is one of the environmental factors the paper's
introduction motivates).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import networkx as nx
import numpy as np

from ..geo import BoundingBox, euclidean


class RoadNetwork:
    """An undirected road graph embedded in the plane."""

    def __init__(self):
        self.graph = nx.Graph()

    def add_intersection(self, node_id: int, x: float, y: float) -> None:
        self.graph.add_node(node_id, x=float(x), y=float(y))

    def add_road(self, a: int, b: int, kind: str = "street") -> None:
        if a not in self.graph or b not in self.graph:
            raise KeyError("both endpoints must be intersections")
        xa, ya = self.position(a)
        xb, yb = self.position(b)
        self.graph.add_edge(a, b, kind=kind, length=float(euclidean(xa, ya, xb, yb)))

    def position(self, node_id: int) -> Tuple[float, float]:
        data = self.graph.nodes[node_id]
        return data["x"], data["y"]

    @property
    def num_intersections(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_roads(self) -> int:
        return self.graph.number_of_edges()

    def total_length(self) -> float:
        return sum(d["length"] for _, _, d in self.graph.edges(data=True))

    def segments(self) -> Iterator[Tuple[Tuple[float, float], Tuple[float, float], str]]:
        """Yield ``((xa, ya), (xb, yb), kind)`` for every road."""
        for a, b, data in self.graph.edges(data=True):
            yield self.position(a), self.position(b), data.get("kind", "street")

    def density_in(self, bbox: BoundingBox) -> float:
        """Road length per unit area inside ``bbox`` (clipped coarsely).

        Used by the imagery renderer and by tests asserting that dense
        districts really do have denser roads.
        """
        total = 0.0
        for (xa, ya), (xb, yb), _ in self.segments():
            inside_a = bbox.contains_closed(xa, ya)
            inside_b = bbox.contains_closed(xb, yb)
            length = float(euclidean(xa, ya, xb, yb))
            if inside_a and inside_b:
                total += length
            elif inside_a or inside_b:
                total += 0.5 * length
        return total / bbox.area

    def largest_component_fraction(self) -> float:
        if self.graph.number_of_nodes() == 0:
            return 0.0
        biggest = max(nx.connected_components(self.graph), key=len)
        return len(biggest) / self.graph.number_of_nodes()
