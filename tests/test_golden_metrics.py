"""Golden-metrics regression test for the seeded quick-profile eval.

Freezes the full train+evaluate pipeline output (Recall@K / NDCG@K /
MRR with the PR 2 ``num_pois + 1`` miss-rank semantics, batched
trainer) into ``tests/golden/quick_nyc_metrics.json``.  Ranks are
integers, so the metrics are exact rationals: any rank-semantics or
trainer regression shifts them far beyond the 1e-9 gate and fails
loudly, while benign refactors reproduce them exactly.

To regenerate after an *intentional* semantics change::

    PYTHONPATH=src python tests/test_golden_metrics.py

which rewrites the fixture in place (review the metric deltas in the
diff and justify them in the PR).
"""

import json
from pathlib import Path

import pytest

from repro.experiments import get_profile, prepare, run_one
from repro.utils.rng import set_seed

GOLDEN = Path(__file__).parent / "golden" / "quick_nyc_metrics.json"


def _current_metrics():
    # Dropout draws from the process-wide default generator; pin it so
    # the run is reproducible regardless of which tests ran before.
    set_seed(0)
    profile = get_profile("quick")
    data = prepare("nyc", profile, seed=profile.seed)
    metrics, _ = run_one(
        "TSPN-RA", data, profile, seed=profile.seed, use_batched=True
    )
    return metrics, profile


@pytest.mark.slow
def test_quick_profile_metrics_match_golden():
    golden = json.loads(GOLDEN.read_text())
    metrics, profile = _current_metrics()
    assert golden["preset"] == "nyc" and golden["profile"] == profile.name
    assert set(metrics) == set(golden["metrics"])
    for name, frozen in golden["metrics"].items():
        assert metrics[name] == pytest.approx(frozen, abs=1e-9), (
            f"{name} drifted from the golden fixture: "
            f"{metrics[name]!r} != {frozen!r} — if intentional, regenerate "
            f"via `PYTHONPATH=src python {Path(__file__).name}`"
        )


def regenerate():
    metrics, profile = _current_metrics()
    payload = {
        "description": (
            "Seeded quick-profile TSPN-RA eval on the synthetic NYC preset, "
            "batched trainer (use_batched=True), PR 2 miss-rank semantics "
            "(absent target ranks num_pois + 1). Regenerate with "
            "tests/test_golden_metrics.py::regenerate if semantics change "
            "intentionally."
        ),
        "preset": "nyc",
        "profile": profile.name,
        "seed": profile.seed,
        "metrics": metrics,
    }
    GOLDEN.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"regenerated {GOLDEN}")
    print(json.dumps(metrics, indent=2))


if __name__ == "__main__":
    regenerate()
