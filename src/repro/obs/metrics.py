"""Lock-cheap metrics primitives: counters, gauges, fixed-bucket histograms.

The measurement substrate of :mod:`repro.obs`.  Three instrument kinds,
all zero-dependency and JSON-serialisable:

* :class:`Counter` — a monotonically increasing float (``_total`` by
  convention).  One small lock per instrument ("striped" across the
  registry: two instruments never contend), matching the thread-safety
  discipline `ServeStats` established.
* :class:`Gauge` — a settable value, or a *callback* gauge whose value
  is read live at scrape time (queue depth, WAL segment count) so the
  hot path never maintains it.
* :class:`Histogram` — fixed upper-bound buckets with cumulative
  counts, a running sum, count, and observed min/max.  O(buckets)
  memory under any load, and **mergeable**: histograms from N workers
  (or N shard processes, shipped as snapshots over a pipe) sum
  bucket-wise into one distribution whose percentiles are exact to
  bucket resolution — the property the old unbounded-list percentiles
  could never have.

:class:`MetricsRegistry` is the instrument directory: get-or-create by
``(name, labels)``, snapshot to JSON-safe dicts (pipe/HTTP shippable),
and merge snapshots from other processes under extra labels (the
cluster router stamps ``shard="NN"``).  A process-global default
registry (:func:`get_registry`) serves components created standalone;
an :class:`~repro.serve.server.InferenceServer` builds its own so two
servers in one process (tests, multi-tenant) never share counters.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedCounter",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "get_registry",
    "merge_histogram_snapshots",
    "merge_windowed_snapshots",
    "snapshot_percentile",
]

# Latency buckets in seconds: roughly geometric from 100 micros to 30s,
# the span between a cached graph lookup and a request-timeout.  17
# buckets keeps every histogram O(1)-small while giving ~2.5x bucket
# resolution, tight enough for p99 on a serving path whose latencies
# spread over 4 decades.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared shape: name, help text, labels, a per-instrument lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(_label_key(labels))
        self._lock = threading.Lock()

    def _snapshot_head(self) -> Dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
        }


class Counter(_Instrument):
    """Monotonically increasing value.  ``inc`` never goes backwards."""

    kind = "counter"

    def __init__(self, name, help="", labels=None):
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict:
        return {**self._snapshot_head(), "value": self.value}


class Gauge(_Instrument):
    """A value that moves both ways — stored, or computed at read time.

    ``fn`` makes a *callback gauge*: the value is whatever ``fn()``
    returns when scraped, so live quantities (queue depth, snapshot
    age) cost nothing between scrapes.
    """

    kind = "gauge"

    def __init__(self, name, help="", labels=None, fn: Optional[Callable[[], float]] = None):
        super().__init__(name, help, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def snapshot(self) -> Dict:
        return {**self._snapshot_head(), "value": self.value}


class Histogram(_Instrument):
    """Fixed-bucket histogram: O(buckets) memory, mergeable, percentiles.

    ``buckets`` are ascending upper bounds (``le`` semantics, matching
    Prometheus); an implicit ``+Inf`` bucket catches the tail.  The
    observed min/max ride along so percentiles can clamp interpolation
    to the values actually seen instead of the bucket's full span —
    e.g. a thousand identical 1 ms observations report p50 = 1 ms, not
    the midpoint of the (0.5 ms, 1 ms] bucket.
    """

    kind = "histogram"

    def __init__(self, name, help="", labels=None, buckets: Sequence[float] = LATENCY_BUCKETS):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly ascending")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    # ------------------------------------------------------------------
    # percentiles
    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        with self._lock:
            return _bucket_percentile(
                self.bounds, self._counts, self._count, self._min, self._max, p
            )

    def percentiles(self, ps: Iterable[float]) -> Dict[str, float]:
        """``{"p50": ..., ...}`` under one lock acquisition."""
        with self._lock:
            return {
                f"p{int(p) if float(p).is_integer() else p}": _bucket_percentile(
                    self.bounds, self._counts, self._count, self._min, self._max, p
                )
                for p in ps
            }

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                **self._snapshot_head(),
                "buckets": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
            }

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        theirs = other.snapshot()
        with self._lock:
            for i, c in enumerate(theirs["counts"]):
                self._counts[i] += c
            self._sum += theirs["sum"]
            self._count += theirs["count"]
            if theirs["count"]:
                self._min = min(self._min, theirs["min"])
                self._max = max(self._max, theirs["max"])


class WindowedCounter(_Instrument):
    """A counter that forgets: the sum over a sliding wall-clock window.

    Quality estimators (windowed Recall@K joins, drift-window hits)
    need "how many in the last hour", not "how many ever".  The window
    is ``slots`` coarse cells keyed by **absolute** slot index
    ``int(now // slot_seconds)`` — cells older than the window are
    pruned lazily on write/read, so memory is O(slots) under any load.

    Absolute slot keys are the merge discipline: two processes slicing
    wall-clock time with the same ``window_seconds``/``slots`` produce
    cells that align by key, so per-shard snapshots sum cell-wise into
    one cluster-wide window (:func:`merge_windowed_snapshots`) exactly
    like histograms sum bucket-wise.  Exposed as a *gauge* (the value
    is a point-in-time windowed sum, not a monotone total).

    ``clock`` is injectable for tests; it must return wall-clock
    seconds (``time.time``), not a per-process monotonic origin,
    or cross-process alignment breaks.
    """

    kind = "gauge"

    def __init__(
        self,
        name,
        help="",
        labels=None,
        window_seconds: float = 3600.0,
        slots: int = 60,
        clock: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, help, labels)
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        slots = int(slots)
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.window_seconds = float(window_seconds)
        self.slots = slots
        self.slot_seconds = self.window_seconds / slots
        self._clock = clock if clock is not None else time.time
        self._cells: Dict[int, float] = {}

    def _now_slot(self) -> int:
        return int(self._clock() // self.slot_seconds)

    def _prune(self, now_slot: int) -> None:
        floor = now_slot - self.slots + 1
        for slot in [s for s in self._cells if s < floor]:
            del self._cells[slot]

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("windowed counters only accumulate; use a Gauge")
        self.inc_at(self._now_slot(), amount)

    def inc_at(self, slot: int, amount: float = 1.0) -> None:
        """Add into an already-computed slot (hot-path batching).

        A caller updating several aligned windowed counters for one
        logical event (a quality join touches up to eight) computes
        ``_now_slot()`` once and fans it out, instead of paying a
        clock read per instrument.  Only sound between counters that
        share ``window_seconds``/``slots``/``clock``.
        """
        with self._lock:
            self._cells[slot] = self._cells.get(slot, 0.0) + amount
            if len(self._cells) > self.slots:
                self._prune(slot)

    @property
    def value(self) -> float:
        """Sum over the live window (stale cells pruned first)."""
        slot = self._now_slot()
        with self._lock:
            self._prune(slot)
            return sum(self._cells.values())

    def snapshot(self) -> Dict:
        slot = self._now_slot()
        with self._lock:
            self._prune(slot)
            return {
                **self._snapshot_head(),
                "value": sum(self._cells.values()),
                "window_seconds": self.window_seconds,
                "slot_seconds": self.slot_seconds,
                # JSON object keys are strings; absolute indices survive
                # the round-trip as text and re-align on merge.
                "cells": {str(s): v for s, v in self._cells.items()},
            }


def merge_windowed_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Sum windowed-counter snapshots cell-wise by absolute slot index.

    All snapshots must share ``window_seconds``/``slot_seconds`` (same
    wall-clock slicing); shards satisfy this by construction since the
    router hands every worker the same quality-window config.
    """
    if not snapshots:
        raise ValueError("nothing to merge")
    base = snapshots[0]
    cells: Dict[str, float] = dict(base.get("cells", {}))
    for snap in snapshots[1:]:
        if (
            snap.get("window_seconds") != base.get("window_seconds")
            or snap.get("slot_seconds") != base.get("slot_seconds")
        ):
            raise ValueError("cannot merge windows with different slicing")
        for slot, amount in snap.get("cells", {}).items():
            cells[slot] = cells.get(slot, 0.0) + amount
    return {**base, "cells": cells, "value": sum(cells.values())}


def _bucket_percentile(bounds, counts, total, lo_seen, hi_seen, p) -> float:
    """Linear interpolation of the p-th percentile within its bucket.

    The caller holds the histogram lock (or owns a snapshot).  The
    interpolation span is clamped to the observed min/max so degenerate
    distributions (all values equal) report the exact value.
    """
    if total <= 0:
        return 0.0
    rank = (total - 1) * p / 100.0 + 1  # 1-based fractional rank
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else hi_seen
            lower = max(lower, lo_seen if lo_seen != float("inf") else lower)
            upper = min(upper, hi_seen if hi_seen != float("-inf") else upper)
            if upper < lower:
                upper = lower
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * fraction
        cumulative += count
    return hi_seen if hi_seen != float("-inf") else 0.0


def merge_histogram_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Sum histogram snapshot dicts (same bounds) into one distribution."""
    if not snapshots:
        raise ValueError("nothing to merge")
    base = snapshots[0]
    counts = list(base["counts"])
    total_sum, total_count = base["sum"], base["count"]
    lo = base["min"] if base["count"] else float("inf")
    hi = base["max"] if base["count"] else float("-inf")
    for snap in snapshots[1:]:
        if list(snap["buckets"]) != list(base["buckets"]):
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(snap["counts"]):
            counts[i] += c
        total_sum += snap["sum"]
        total_count += snap["count"]
        if snap["count"]:
            lo = min(lo, snap["min"])
            hi = max(hi, snap["max"])
    return {
        **base,
        "counts": counts,
        "sum": total_sum,
        "count": total_count,
        "min": lo if total_count else 0.0,
        "max": hi if total_count else 0.0,
    }


def snapshot_percentile(snapshot: Dict, p: float) -> float:
    """Percentile straight from a histogram snapshot dict."""
    return _bucket_percentile(
        tuple(snapshot["buckets"]),
        snapshot["counts"],
        snapshot["count"],
        snapshot["min"] if snapshot["count"] else float("inf"),
        snapshot["max"] if snapshot["count"] else float("-inf"),
        p,
    )


class MetricsRegistry:
    """Directory of instruments, keyed ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create: two
    components asking for the same name+labels share one instrument
    (that is how N schedulers behind one server would share a roll-up;
    per-worker instruments differ by a ``worker`` label).  ``adopt``
    folds another registry's instruments in — components built before
    the server existed (a ``DurableIngest`` recovered from disk) start
    on a private registry and are adopted at wiring time, keeping their
    counters' identity.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Instrument] = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def _get(self, cls, name, help, labels, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name} already registered as {existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help=help, labels=labels, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name, help="", labels=None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name, help="", labels=None, fn=None) -> Gauge:
        return self._get(Gauge, name, help, labels, fn=fn)

    def histogram(self, name, help="", labels=None, buckets=LATENCY_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def windowed(
        self, name, help="", labels=None, window_seconds=3600.0, slots=60, clock=None
    ) -> WindowedCounter:
        return self._get(
            WindowedCounter,
            name,
            help,
            labels,
            window_seconds=window_seconds,
            slots=slots,
            clock=clock,
        )

    def adopt(self, other: Optional["MetricsRegistry"]) -> None:
        """Register every instrument of ``other`` here (shared objects)."""
        if other is None or other is self:
            return
        with other._lock:
            items = list(other._instruments.items())
        with self._lock:
            for key, instrument in items:
                self._instruments.setdefault(key, instrument)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def find(self, name: str, labels=None) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get((name, _label_key(labels)))

    def snapshot(self) -> List[Dict]:
        """JSON-safe dump of every instrument (pipe/HTTP shippable)."""
        return [instrument.snapshot() for instrument in self.instruments()]


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _GLOBAL
