"""Serving facade: cached shared state, batched inference, stats.

:class:`Predictor` wraps any :class:`~repro.serve.protocol.PredictorProtocol`
model as a long-lived recommendation service:

* shared embedding tables are computed once and reused across requests,
  invalidated automatically when the model's ``weights_version`` moves
  (optimiser steps and ``load_state_dict`` both bump it);
* per-user QR-P graphs are bounded by an LRU cache instead of the
  model's default unbounded dict;
* request batches go through the model's vectorised ``predict_batch``
  (padded-and-masked batch encode for TSPN-RA, ``score_batch`` for the
  baselines) instead of a per-sample loop;
* every request batch is timed, so latency/throughput — including
  per-batch p50/p95/p99 — roll up in :class:`ServeStats`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import no_grad
from ..data.trajectory import PredictionSample, Trajectory, Visit
from ..obs import MetricsRegistry
from ..utils.cache import LRUCache
from .checkpoint import load_checkpoint
from .plans import PlanCache, supports_plans
from .protocol import PredictorResult, serve_history_key

LATENCY_PERCENTILES = (50, 95, 99)


def interpolated_percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linearly interpolated percentile of an ascending-sorted sequence.

    The standard linear method (numpy's default): the percentile falls
    at fractional rank ``(n - 1) * p / 100`` and is interpolated between
    the two bracketing order statistics.  Nearest-rank would quantise
    p99 onto whichever single sample happens to sit at the top of a
    small window; interpolation degrades smoothly instead.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return float(sorted_values[0])
    rank = (n - 1) * p / 100.0
    lo = int(rank)
    if lo >= n - 1:
        return float(sorted_values[-1])
    frac = rank - lo
    return float(sorted_values[lo] + (sorted_values[lo + 1] - sorted_values[lo]) * frac)


class ServeStats:
    """Rolling counters for one predictor instance, registry-backed.

    Thread-safe: the serving worker pool records batches from several
    threads into one roll-up, and `/stats` reads concurrently.  Every
    quantity lives in a :class:`~repro.obs.MetricsRegistry` instrument
    — the counters are registry counters and the per-batch latency
    distribution is a fixed-bucket :class:`~repro.obs.Histogram`
    (O(buckets) memory under sustained load, unlike the unbounded list
    it replaced, and mergeable across workers/shards).  The historical
    attribute surface (``stats.requests`` …) is preserved as read-only
    properties over the instruments.

    ``namespace`` and ``labels`` keep instruments distinct when several
    ServeStats share one registry (per-worker ``labels={"worker": i}``,
    or the server's request-level roll-up under ``serve_request``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        namespace: str = "serve",
        labels: Optional[Dict[str, str]] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            f"{namespace}_requests", "Requests served", labels
        )
        self._batches = self.registry.counter(
            f"{namespace}_batches", "Inference batches executed", labels
        )
        self._seconds = self.registry.counter(
            f"{namespace}_seconds", "Cumulative batch inference seconds", labels
        )
        self._embedding_refreshes = self.registry.counter(
            f"{namespace}_embedding_refreshes", "Shared-embedding recomputes", labels
        )
        self._embedding_cache_hits = self.registry.counter(
            f"{namespace}_embedding_cache_hits", "Shared-embedding cache hits", labels
        )
        self.latency = self.registry.histogram(
            f"{namespace}_batch_latency_seconds", "Per-batch latency", labels
        )

    # -- historical attribute surface ----------------------------------
    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def total_seconds(self) -> float:
        return self._seconds.value

    @property
    def embedding_refreshes(self) -> int:
        return int(self._embedding_refreshes.value)

    @property
    def embedding_cache_hits(self) -> int:
        return int(self._embedding_cache_hits.value)

    @property
    def mean_latency_ms(self) -> float:
        requests = self.requests
        return 1000.0 * self.total_seconds / requests if requests else 0.0

    @property
    def throughput(self) -> float:
        """Requests served per second of inference time."""
        total = self.total_seconds
        return self.requests / total if total > 0 else 0.0

    # -- recording -----------------------------------------------------
    def record_batch(self, seconds: float, size: int) -> None:
        self._seconds.inc(seconds)
        self._requests.inc(size)
        self._batches.inc()
        self.latency.observe(seconds)

    def note_embedding_refresh(self) -> None:
        self._embedding_refreshes.inc()

    def note_embedding_cache_hit(self) -> None:
        self._embedding_cache_hits.inc()

    # -- reading -------------------------------------------------------
    def latency_percentiles(
        self, percentiles: Sequence[int] = LATENCY_PERCENTILES
    ) -> Dict[str, float]:
        """Per-batch latency percentiles in ms from the histogram.

        Bucket-resolution with within-bucket linear interpolation,
        clamped to the observed min/max — so the all-batches-equal case
        reports the exact latency, and any case is within one bucket
        width of the order-statistic answer.
        """
        seconds = self.latency.percentiles(percentiles)
        return {f"{k}_ms": 1000.0 * v for k, v in seconds.items()}

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "requests": self.requests,
            "batches": self.batches,
            "total_seconds": self.total_seconds,
            "embedding_refreshes": self.embedding_refreshes,
            "embedding_cache_hits": self.embedding_cache_hits,
        }
        requests, total = out["requests"], out["total_seconds"]
        out["mean_latency_ms"] = 1000.0 * total / requests if requests else 0.0
        out["throughput"] = requests / total if total > 0 else 0.0
        out.update(self.latency_percentiles())
        return out


class Predictor:
    """A trained model, served.

    Unless ``graph_cache_size=None``, the model's per-user graph cache
    is replaced by an LRU of that size (warm entries migrated) — a
    deliberate, lasting adoption for long-lived serving; pass ``None``
    for throwaway measurement facades.

    ``compile=True`` (the default) serves batches through captured
    inference plans when the model supports them (see
    :mod:`repro.serve.plans`): the first batch of each shape bucket is
    traced, later ones replay graph-free.  ``plan_dtype`` picks the
    replay precision (``float64`` is bit-identical to eager);
    ``plan_cache`` lets a worker pool share one cache across replicas.
    ``compile=False`` is the escape hatch — pure eager, no tracing.
    """

    def __init__(
        self,
        model,
        graph_cache_size: Optional[int] = 256,
        compile: bool = True,
        plan_dtype="float64",
        plan_cache: Optional[PlanCache] = None,
        registry: Optional[MetricsRegistry] = None,
        stats_labels: Optional[Dict[str, str]] = None,
    ):
        self.model = model
        self.dataset = None  # set by from_checkpoint
        # an attached QualityMonitor sees every served batch; None (the
        # default) costs one attribute check per batch
        self.quality = None
        self.stats = ServeStats(registry=registry, labels=stats_labels)
        self._shared: Optional[Tuple[Any, ...]] = None
        self._shared_version: Optional[int] = None
        self._shared_lock = threading.Lock()
        self.graph_cache: Optional[LRUCache] = None
        if graph_cache_size is not None:
            cache = LRUCache(graph_cache_size)
            if model.set_graph_cache(cache):
                self.graph_cache = cache
        self.plan_cache: Optional[PlanCache] = None
        if compile and supports_plans(model):
            self.plan_cache = (
                plan_cache if plan_cache is not None else PlanCache(dtype=plan_dtype)
            )

    @classmethod
    def from_checkpoint(cls, path, dataset=None, **kwargs) -> "Predictor":
        """Serve a checkpoint without retraining."""
        loaded = load_checkpoint(path, dataset=dataset)
        predictor = cls(loaded.model, **kwargs)
        predictor.dataset = loaded.dataset
        return predictor

    def stream_graph_maintainer(self):
        """The model's incremental QR-P maintainer, or ``None``.

        ``StreamIngest.register_predictor`` calls this to decide
        whether freshly rolled graph entries may be pushed into this
        predictor's cache (see ``TSPNRA.stream_graph_maintainer`` for
        the compatibility gate; baselines simply lack the hook).
        """
        factory = getattr(self.model, "stream_graph_maintainer", None)
        return factory() if callable(factory) else None

    # ------------------------------------------------------------------
    # shared-state cache
    # ------------------------------------------------------------------
    def shared_state(self) -> Tuple[Any, ...]:
        """Cached ``compute_embeddings()``, refreshed on weight updates.

        Serialised by a lock so concurrent requests on one predictor
        refresh the tables exactly once per ``weights_version`` instead
        of racing duplicate recomputes.
        """
        return self.shared_state_versioned()[1]

    def shared_state_versioned(self) -> Tuple[Optional[int], Tuple[Any, ...]]:
        """``(weights_version, shared_state)`` captured under one lock.

        The version is read under the same lock that refreshes the
        tables, so it names exactly the generation the returned tables
        were computed from.  The compiled path keys its plan cache on
        this captured version — keying on a *re-read* of
        ``weights_version()`` would let a hot reload landing in between
        cache a plan baked from pre-reload tables under the post-reload
        version, where the version-keyed invalidation never fires.
        """
        with self._shared_lock:
            version = self.model.weights_version()
            if self._shared is None or version != self._shared_version:
                self._shared = self.model.compute_embeddings()
                self._shared_version = version
                self.stats.note_embedding_refresh()
            else:
                self.stats.note_embedding_cache_hit()
            return version, self._shared

    def invalidate(self) -> None:
        """Drop cached shared state (forced refresh on the next request)."""
        with self._shared_lock:
            self._shared = None
            self._shared_version = None

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict(self, sample: PredictionSample, k: Optional[int] = None) -> PredictorResult:
        return self.predict_batch([sample], k=k)[0]

    def predict_batch(
        self, samples: Sequence[PredictionSample], k: Optional[int] = None
    ) -> List[PredictorResult]:
        """Serve a batch through the model's vectorised batch path.

        Shared embeddings come from the cache; the model's
        ``predict_batch`` encodes the whole batch at once (results are
        identical to the per-sample loop).  With compilation on, the
        batch instead replays the cached plan for its shape bucket
        (tracing it first if cold) — ranked lists are bit-identical for
        float64 plans, and any bucket the tracer cannot capture falls
        back to eager automatically.  The model runs in eval mode for
        the batch and its prior train/eval mode is restored afterwards,
        so a mid-training evaluation hook can wrap the live model
        safely.
        """
        start = time.perf_counter()
        # the mode toggle walks every sub-module; a long-lived serving
        # predictor is already in eval, so skip the walk on the hot path
        was_training = getattr(self.model, "training", False)
        if was_training:
            self.model.eval()
        try:
            with no_grad():
                version, shared = self.shared_state_versioned()
                results = None
                if self.plan_cache is not None and samples:
                    entry = self.plan_cache.entry_for(
                        self.model, samples, *shared, version=version
                    )
                    if entry is not None:
                        results = self.model.predict_batch_compiled(
                            samples, entry, *shared, k=k
                        )
                if results is None:
                    results = self.model.predict_batch(samples, *shared, k=k)
        finally:
            if was_training:
                self.model.train(True)
        self.stats.record_batch(time.perf_counter() - start, len(results))
        if self.quality is not None:
            # record *before* the results leave the facade: by the time
            # a caller (or the HTTP layer above it) sees the ranked
            # list, the prediction is already pending its label
            for sample, result in zip(samples, results):
                self.quality.record(sample, result)
        return results

    def target_rank(self, sample: PredictionSample) -> int:
        return self.predict(sample).poi_rank

    def recommend(
        self,
        visits: Sequence[Visit],
        history: Sequence[Trajectory] = (),
        user_id: int = -1,
        k: int = 10,
    ) -> List[int]:
        """Top-k next-POI recommendations for a live user history.

        ``visits`` is the in-progress trajectory; ``history`` the user's
        earlier trajectories (feeds QR-P graph construction).  There is
        no ground-truth target, so the sample is built with
        ``target=None``.
        """
        visits = list(visits)
        if not visits:
            raise ValueError("recommend() needs at least one visit")
        history = list(history)
        sample = PredictionSample(
            user_id=user_id,
            history=history,
            prefix=visits,
            target=None,
            history_key=serve_history_key(user_id, history),
        )
        return self.predict(sample).top_k(k)


def compare_throughput(
    model,
    samples: Sequence[PredictionSample],
    repeats: int = 1,
    batch_size: int = 16,
) -> Dict[str, float]:
    """Samples/sec: uncached vs cached vs batched vs compiled.

    Legs, slowest to fastest:

    * ``uncached`` — the legacy research loop: ``compute_embeddings()``
      recomputed per request;
    * ``cached`` — shared embeddings computed once, then the per-sample
      ``predict`` loop (what ``Predictor.predict_batch`` did before the
      vectorised encode landed);
    * ``batched`` — the :class:`Predictor` facade driving the model's
      eager ``predict_batch`` in chunks of ``batch_size``, with
      per-batch latencies recorded for p50/p95/p99;
    * ``compiled`` / ``compiled_f32`` — the same facade with plan
      compilation on; present only when the model supports plans.
      ``compiled`` replays float64 plans — the configuration whose
      ranked lists are bit-identical to eager — while ``compiled_f32``
      is the *serving* configuration of the compiled path: float32
      plans end-to-end (documented tolerance, half the bandwidth,
      dtype-specialised replay kernels).  Each leg's first pass over
      the samples warms the plan/knowledge caches (trace cost is
      reported separately as ``{leg}_warmup_seconds``).

    The batched and compiled legs are timed as full passes over the
    sample list, *interleaved round-robin* across ``repeats`` rounds,
    and each leg reports ``median(pass) * repeats`` as its seconds.
    On a shared host a sequential layout folds clock drift into
    whichever leg runs last; interleaving with medians cancels it, so
    the reported speedups are leg ratios rather than noise.

    ``compiled_speedup`` is the gate metric: the float32 compiled leg
    (the serving configuration) vs the eager batched leg.
    ``compiled_f64_speedup`` tracks the bit-identical float64 replay
    against the same baseline.  Both are computed as the *median of
    per-round ratios* — each round times the legs back to back, so a
    contention burst inflates both passes of the pair and cancels in
    their ratio, where a ratio of independent leg medians would not.

    The model's prior train/eval mode is restored on exit — the same
    guarantee ``Predictor.predict_batch`` and the evaluator document.
    """
    samples = list(samples)
    was_training = getattr(model, "training", False)
    model.eval()
    try:
        start = time.perf_counter()
        with no_grad():
            for _ in range(repeats):
                for sample in samples:
                    model.predict(sample, *model.compute_embeddings())
        uncached_seconds = time.perf_counter() - start

        with no_grad():
            shared = model.compute_embeddings()
            start = time.perf_counter()
            for _ in range(repeats):
                for sample in samples:
                    model.predict(sample, *shared)
            cached_seconds = time.perf_counter() - start

        # graph_cache_size=None: a measurement facade must not swap the
        # caller's model cache out from under it
        predictor = Predictor(model, graph_cache_size=None, compile=False)
        legs: List[Tuple[str, Predictor]] = [("batched", predictor)]
        compiled: Dict[str, float] = {}
        if supports_plans(model):
            for leg, dtype in (("compiled", "float64"), ("compiled_f32", "float32")):
                legs.append(
                    (
                        leg,
                        Predictor(
                            model, graph_cache_size=None, compile=True, plan_dtype=dtype
                        ),
                    )
                )

        def one_pass(runner: Predictor) -> None:
            for lo in range(0, len(samples), batch_size):
                runner.predict_batch(samples[lo : lo + batch_size])

        # warmup pass per leg (traces plans, fills knowledge caches)
        for leg, runner in legs:
            start = time.perf_counter()
            one_pass(runner)
            if leg != "batched":
                compiled[f"{leg}_warmup_seconds"] = time.perf_counter() - start

        pass_times: Dict[str, List[float]] = {leg: [] for leg, _ in legs}
        for _ in range(repeats):
            for leg, runner in legs:
                start = time.perf_counter()
                one_pass(runner)
                pass_times[leg].append(time.perf_counter() - start)

        def _median(values: Sequence[float]) -> float:
            ordered = sorted(values)
            mid = len(ordered) // 2
            if len(ordered) % 2:
                return ordered[mid]
            return (ordered[mid - 1] + ordered[mid]) / 2.0

        def leg_seconds(leg: str) -> float:
            return _median(pass_times[leg]) * repeats

        def paired_speedup(leg: str) -> float:
            ratios = [
                b / c
                for b, c in zip(pass_times["batched"], pass_times[leg])
                if c > 0
            ]
            return _median(ratios) if ratios else float("inf")

        batched_seconds = leg_seconds("batched")
        count = len(samples) * repeats
        speedups: Dict[str, float] = {}
        for leg, runner in legs[1:]:
            seconds = leg_seconds(leg)
            compiled[f"{leg}_seconds"] = seconds
            compiled[f"{leg}_sps"] = count / seconds if seconds > 0 else float("inf")
            speedups[leg] = paired_speedup(leg)
            cache = runner.plan_cache
            compiled[f"{leg}_plans"] = float(len(cache))
            compiled[f"{leg}_plan_hits"] = float(cache.hits)
            compiled[f"{leg}_plan_misses"] = float(cache.misses)
    finally:
        model.train(was_training)

    report = {
        "samples": float(count),
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "batched_seconds": batched_seconds,
        "uncached_sps": count / uncached_seconds if uncached_seconds > 0 else float("inf"),
        "cached_sps": count / cached_seconds if cached_seconds > 0 else float("inf"),
        "batched_sps": count / batched_seconds if batched_seconds > 0 else float("inf"),
        "speedup": uncached_seconds / cached_seconds if cached_seconds > 0 else float("inf"),
        "batched_speedup": (
            cached_seconds / batched_seconds if batched_seconds > 0 else float("inf")
        ),
    }
    report.update(compiled)
    if report.get("compiled_seconds"):
        report["compiled_f64_speedup"] = speedups["compiled"]
    if report.get("compiled_f32_seconds"):
        report["compiled_speedup"] = speedups["compiled_f32"]
    report.update(predictor.stats.latency_percentiles())
    return report
