"""Tests for the experiment harness, profiles and reporting."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    ALL_MODELS,
    EXPERIMENTS,
    QUICK,
    ExperimentProfile,
    best_baseline,
    build_model,
    current_profile,
    eval_model,
    format_results,
    format_table,
    get_profile,
    improvement_row,
    prepare,
    relative_drop,
    run_one,
    train_model,
    tspnra_config,
)
from repro.experiments.figures import fig11_crossover, run_fig8
from repro.experiments.tables import ablation_variants

TINY = replace(
    QUICK,
    dataset_scale=0.12,
    epochs=1,
    max_train_samples=24,
    eval_samples=20,
    imagery_resolution=16,
    dim=16,
)


@pytest.fixture(scope="module")
def data():
    return prepare("nyc", TINY)


class TestProfiles:
    def test_registry_contains_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig8",
            "fig10",
            "fig11",
            "fig12",
        }

    def test_env_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert current_profile().name == "full"
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(KeyError):
            current_profile()

    def test_smaller(self):
        small = QUICK.smaller(0.5)
        assert small.dataset_scale == pytest.approx(QUICK.dataset_scale * 0.5)
        assert small.max_train_samples < QUICK.max_train_samples

    def test_get_profile(self):
        assert get_profile("quick") is QUICK


class TestHarness:
    def test_prepare_shapes(self, data):
        assert data.num_pois == len(data.dataset.city.pois)
        assert data.locations.shape == (data.num_pois, 2)
        assert all(0 <= v <= 1 for v in data.locations.ravel())

    def test_build_all_models(self, data):
        for name in ALL_MODELS:
            model = build_model(name, data, TINY)
            assert model is not None

    def test_run_one_markov(self, data):
        metrics, model = run_one("MC", data, TINY)
        assert 0 <= metrics["Recall@5"] <= 1

    def test_run_one_tspnra(self, data):
        metrics, model = run_one("TSPN-RA", data, TINY)
        assert "MRR" in metrics

    def test_ablation_variants_cover_table4(self, data):
        variants = ablation_variants(TINY, data)
        assert "No Two-step" in variants and "No Graph" in variants
        assert not variants["No Imagery"].use_imagery
        assert variants["No Road"].drop_edge_type == "road"


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_results(self):
        results = {"m1": {"Recall@5": 0.5, "MRR": 0.2}}
        out = format_results(results, columns=("Recall@5", "MRR"), highlight="m1")
        assert "*m1" in out and "0.5000" in out

    def test_improvement_row(self):
        ours = {"MRR": 0.22}
        base = {"MRR": 0.20}
        row = improvement_row(ours, base, columns=("MRR",))
        assert row["MRR"] == "+10.00%"

    def test_best_baseline_excludes_ours(self):
        results = {
            "TSPN-RA": {"MRR": 0.9},
            "a": {"MRR": 0.3},
            "b": {"MRR": 0.5},
        }
        assert best_baseline(results, exclude="TSPN-RA") == "b"

    def test_relative_drop_sign(self):
        full = {"MRR": 0.2, "Recall@5": 0.4}
        worse = {"MRR": 0.1, "Recall@5": 0.2}
        assert relative_drop(full, worse, ("MRR", "Recall@5")) == pytest.approx(-50.0)


class TestFigureHelpers:
    def test_fig8_similarity_structure(self):
        result = run_fig8(dim=128, resolution=9)
        assert result.peak_is_anchor()
        assert all(corr < -0.2 for corr in result.distance_similarity_corr)

    def test_fig11_crossover_detection(self):
        from repro.experiments.figures import Fig11Point

        points = [
            Fig11Point(1, 0.2, 0.1, 5, 64.0, 1.0),
            Fig11Point(8, 0.6, 0.3, 40, 8.0, 8.0),
            Fig11Point(64, 0.9, 0.3, 300, 1.0, 60.0),
        ]
        assert fig11_crossover(points) == 8
