"""HMT-GRN baseline [Lim et al., SIGIR 2022; ref 14].

Hierarchical Multi-Task Graph Recurrent Network: a recurrent trunk is
trained with multi-task heads that predict the next *cell* at several
fixed grid granularities alongside the next POI; inference runs a
Hierarchical Beam Search — coarse cells first, finer cells within the
beam, POIs restricted to the surviving cells.  The paper observes the
beam struggles to discriminate POIs when adapted to urban scale, which
the fixed-grid hierarchy reproduces.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..data.trajectory import PredictionSample
from ..geo import BoundingBox
from ..nn import GRU, Linear
from ..utils.rng import default_rng
from ..serve.protocol import target_poi_of
from .base import BaselineResult, NextPOIBaseline, SequenceEmbedder, last_hidden_batch


class HMTGRN(NextPOIBaseline):
    name = "HMT-GRN"

    def __init__(
        self,
        num_pois: int,
        locations: np.ndarray,
        dim: int = 64,
        coarse: int = 4,
        fine: int = 16,
        beam_width: int = 4,
        rng=None,
    ):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.locations = np.asarray(locations, dtype=np.float64)  # unit square
        self.coarse = coarse
        self.fine = fine
        self.beam_width = beam_width
        self.embedder = SequenceEmbedder(num_pois, dim, rng=rng)
        self.rnn = GRU(dim, dim, rng=rng)
        self.poi_head = Linear(dim, num_pois, rng=rng)
        self.coarse_head = Linear(dim, coarse * coarse, rng=rng)
        self.fine_head = Linear(dim, fine * fine, rng=rng)
        self.coarse_of_poi = self._cells_of(coarse)
        self.fine_of_poi = self._cells_of(fine)
        # fine cells nested inside each coarse cell
        ratio = fine // coarse
        self.fine_in_coarse = {
            c: [
                (r0 * ratio + dr) * fine + (c0 * ratio + dc)
                for dr in range(ratio)
                for dc in range(ratio)
            ]
            for c in range(coarse * coarse)
            for r0, c0 in [divmod(c, coarse)]
        }

    def _cells_of(self, n: int) -> np.ndarray:
        cols = np.minimum((self.locations[:, 0] * n).astype(int), n - 1)
        rows = np.minimum((self.locations[:, 1] * n).astype(int), n - 1)
        return rows * n + cols

    def _trunk(self, sample: PredictionSample) -> Tensor:
        sequence = self.embedder(sample)
        _, hidden = self.rnn(sequence)
        return hidden

    def score(self, sample: PredictionSample) -> Tensor:
        return self.poi_head(self._trunk(sample))

    def loss_sample(self, sample: PredictionSample) -> Tensor:
        """Multi-task loss: POI + both grid granularities."""
        hidden = self._trunk(sample)
        target = sample.target.poi_id
        loss = cross_entropy(self.poi_head(hidden).reshape(1, -1), np.array([target]))
        loss = loss + cross_entropy(
            self.coarse_head(hidden).reshape(1, -1), np.array([self.coarse_of_poi[target]])
        )
        loss = loss + cross_entropy(
            self.fine_head(hidden).reshape(1, -1), np.array([self.fine_of_poi[target]])
        )
        return loss

    def loss_batch(self, samples: Sequence[PredictionSample], *shared) -> Tensor:
        """Summed multi-task loss via one differentiable padded unroll."""
        hidden = last_hidden_batch(self.embedder, self.rnn, samples)
        targets = np.asarray([s.target.poi_id for s in samples], dtype=np.int64)
        loss = cross_entropy(self.poi_head(hidden), targets, reduction="sum")
        loss = loss + cross_entropy(
            self.coarse_head(hidden), self.coarse_of_poi[targets], reduction="sum"
        )
        return loss + cross_entropy(
            self.fine_head(hidden), self.fine_of_poi[targets], reduction="sum"
        )

    def _beam_rank(
        self,
        poi_logits: np.ndarray,
        coarse_logits: np.ndarray,
        fine_logits: np.ndarray,
    ) -> List[int]:
        """The Hierarchical Beam Search ranking for one logit triple."""
        top_coarse = np.argsort(-coarse_logits, kind="stable")[: self.beam_width]
        fine_candidates: List[int] = []
        for cell in top_coarse:
            fine_candidates.extend(self.fine_in_coarse[int(cell)])
        fine_order = sorted(fine_candidates, key=lambda f: -fine_logits[f])
        kept_fine = set(fine_order[: self.beam_width * 4])
        in_beam = np.isin(self.fine_of_poi, list(kept_fine))
        # POIs in the beam first (by logit), then the rest (by logit):
        biased = poi_logits + np.where(in_beam, 1e6, 0.0)
        return [int(i) for i in np.argsort(-biased, kind="stable")]

    def predict(self, sample: PredictionSample, *shared, k=None) -> BaselineResult:
        """Hierarchical Beam Search: coarse -> fine -> POIs."""
        with no_grad():
            hidden = self._trunk(sample)
            poi_logits = self.poi_head(hidden).data
            coarse_logits = self.coarse_head(hidden).data
            fine_logits = self.fine_head(hidden).data
        return BaselineResult(
            ranked_pois=self._beam_rank(poi_logits, coarse_logits, fine_logits),
            target_poi=target_poi_of(sample),
            num_pois=self.num_pois,
        )

    def predict_batch(
        self, samples: Sequence[PredictionSample], *shared, k=None
    ) -> List[BaselineResult]:
        """Batched trunk + heads; the (cheap) beam stays per sample.

        The inherited ``score_batch`` ranking would drop the beam bias,
        so this override runs one padded GRU pass and three batched
        head matmuls, then replays the exact per-sample beam on each
        logit row.
        """
        if not samples:
            return []
        with no_grad():
            hidden = last_hidden_batch(self.embedder, self.rnn, samples)
            poi_logits = self.poi_head(hidden).data
            coarse_logits = self.coarse_head(hidden).data
            fine_logits = self.fine_head(hidden).data
        return [
            BaselineResult(
                ranked_pois=self._beam_rank(poi_logits[i], coarse_logits[i], fine_logits[i]),
                target_poi=target_poi_of(sample),
                num_pois=self.num_pois,
            )
            for i, sample in enumerate(samples)
        ]
