"""Shared fixtures for the per-table / per-figure benchmarks.

Every benchmark runs the corresponding experiment once
(``benchmark.pedantic(rounds=1)``: these are end-to-end train+evaluate
pipelines, not microbenchmarks), prints the regenerated table, and
archives it under ``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import current_profile

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    """The experiment profile (env ``REPRO_PROFILE``, default quick)."""
    return current_profile()


@pytest.fixture(scope="session")
def save_report():
    """Writer that archives a rendered report and echoes it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
