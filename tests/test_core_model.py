"""Integration tests for the full TSPN-RA model and its ablations."""

import numpy as np
import pytest

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.train import TrainConfig, Trainer
from repro.utils import spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)


@pytest.fixture(scope="module")
def tiny():
    """One tiny dataset shared by all tests in this module."""
    dataset = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=0)
    return dataset, splits


class TestForward:
    def test_embeddings_shapes(self, tiny):
        dataset, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
        tiles, pois = model.compute_embeddings()
        assert tiles.shape == (len(dataset.quadtree), 16)
        assert pois.shape == (len(dataset.city.pois), 16)

    def test_loss_finite(self, tiny):
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(1))
        tiles, pois = model.compute_embeddings()
        loss = model.loss_sample(splits.train[0], tiles, pois)
        assert np.isfinite(loss.item())

    def test_backward_touches_all_component_kinds(self, tiny):
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(2))
        tiles, pois = model.compute_embeddings()
        sample = next(s for s in splits.train if s.history)
        model.loss_sample(sample, tiles, pois).backward()
        grads = {name: p.grad for name, p in model.named_parameters()}
        assert grads["tile_embedder.conv1.weight"] is not None
        assert grads["poi_embedder.id_table.weight"] is not None
        assert any(
            g is not None for n, g in grads.items() if n.startswith("fusion_tile")
        )
        assert any(g is not None for n, g in grads.items() if n.startswith("hgat"))

    def test_predict_structure(self, tiny):
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(3))
        model.eval()
        result = model.predict(splits.test[0])
        assert result.ranked_tiles[0] in model.leaf_ids
        assert len(set(result.ranked_tiles)) == len(model.leaf_ids)
        assert result.poi_rank >= 1
        # candidates come only from the top-K tiles
        allowed = set()
        for tile in result.ranked_tiles[: model.config.top_k]:
            allowed.update(model.tile_system.pois_in_leaf(tile))
        assert set(result.ranked_pois).issubset(allowed)

    def test_graph_cache_reused(self, tiny):
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(4))
        sample = next(s for s in splits.train if s.history)
        tiles, pois = model.compute_embeddings()
        model.encode(sample, tiles, pois)
        size = len(model._graph_cache)
        model.encode(sample, tiles, pois)
        assert len(model._graph_cache) == size
        model.clear_graph_cache()
        assert len(model._graph_cache) == 0


class TestAblations:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_imagery": False},
            {"use_graph": False},
            {"use_st_encoder": False},
            {"use_category": False},
            {"drop_edge_type": "road"},
            {"drop_edge_type": "contain"},
        ],
    )
    def test_variants_run(self, tiny, overrides):
        dataset, splits = tiny
        config = TSPNRAConfig(**CFG).variant(**overrides)
        model = TSPNRA.from_dataset(dataset, config, rng=spawn(5))
        tiles, pois = model.compute_embeddings()
        sample = next(s for s in splits.train if s.history)
        loss = model.loss_sample(sample, tiles, pois)
        assert np.isfinite(loss.item())
        model.eval()
        assert model.predict(sample).poi_rank >= 1

    def test_no_two_step_ranks_all_pois(self, tiny):
        dataset, splits = tiny
        config = TSPNRAConfig(**CFG).variant(use_two_step=False)
        model = TSPNRA.from_dataset(dataset, config, rng=spawn(6))
        model.eval()
        result = model.predict(splits.test[0])
        assert len(result.ranked_pois) == len(dataset.city.pois)

    def test_no_imagery_uses_table(self, tiny):
        dataset, _ = tiny
        config = TSPNRAConfig(**CFG).variant(use_imagery=False)
        model = TSPNRA.from_dataset(dataset, config, rng=spawn(7))
        from repro.core.tile_embedding import TableTileEmbedder

        assert isinstance(model.tile_embedder, TableTileEmbedder)


class TestTraining:
    def test_loss_decreases(self, tiny):
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(8))
        trainer = Trainer(
            model,
            TrainConfig(epochs=3, batch_size=8, lr=5e-3, max_train_samples=48, seed=0),
        )
        history = trainer.fit(splits.train)
        assert history.improved(), f"loss did not improve: {history.epoch_losses}"

    @pytest.mark.slow
    def test_trained_model_beats_random_ranker(self, tiny):
        dataset, splits = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(9))
        Trainer(
            model,
            TrainConfig(epochs=8, batch_size=8, lr=5e-3, max_train_samples=240, seed=0),
        ).fit(splits.train)
        from repro.eval import collect_ranks, mrr

        test = splits.test[:40]
        ranks = collect_ranks(model, test)
        model_mrr = mrr(ranks)
        # random ranker MRR over N items ~= H(N)/N
        n = len(dataset.city.pois)
        random_mrr = sum(1.0 / r for r in range(1, n + 1)) / n
        assert model_mrr > 1.3 * random_mrr, (model_mrr, random_mrr)
