"""Tests for the CLI, timers and multi-seed aggregation."""

import time
from dataclasses import replace

import pytest

from repro.cli import main
from repro.utils import Ledger, Stopwatch, derive, set_seed, spawn


class TestCLI:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "fig11"):
            assert name in out

    def test_stats_command(self, capsys):
        assert main(["stats", "nyc", "--scale", "0.12"]) == 0
        out = capsys.readouterr().out
        assert "checkins" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_stream_replay_parses_and_validates(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["stream-replay", "nyc", "--max-events", "100", "--batch-size", "8"]
        )
        assert (args.command, args.preset) == ("stream-replay", "nyc")
        assert (args.max_events, args.batch_size) == (100, 8)
        assert main(["stream-replay", "nyc", "--batch-size", "0"]) == 2

    def test_serve_stateful_flags_parse(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "nyc", "--stateful", "--shards", "8", "--max-sessions", "32"]
        )
        assert args.stateful and args.shards == 8 and args.max_sessions == 32
        assert args.gap_hours is None  # defaults to the paper's 72h

    def test_serve_stateful_bad_store_flags_exit_2(self, capsys):
        assert main(["serve", "nyc", "--stateful", "--shards", "0"]) == 2
        assert "num_shards" in capsys.readouterr().err
        assert main(["serve", "nyc", "--stateful", "--gap-hours", "-1"]) == 2

    def test_run_requires_valid_id(self):
        with pytest.raises(KeyError):
            main(["run", "table99"])


class TestTimers:
    def test_stopwatch_measures_time(self):
        with Stopwatch() as watch:
            time.sleep(0.02)
        assert watch.result.seconds >= 0.02
        assert watch.result.peak_bytes is None

    def test_stopwatch_memory(self):
        with Stopwatch(trace_memory=True) as watch:
            _ = [0] * 100_000
        assert watch.result.peak_bytes > 0
        assert watch.result.peak_megabytes > 0

    def test_pretty_time(self):
        from repro.utils import TimerResult

        assert TimerResult(seconds=75.0).pretty_time == "01:15.0"

    def test_ledger_accumulates(self):
        ledger = Ledger()
        ledger.add("train", 1.0)
        ledger.add("train", 2.0)
        assert ledger.get("train") == 3.0
        assert ledger.get("missing") == 0.0


class TestRNG:
    def test_spawn_deterministic(self):
        assert spawn(5).integers(0, 100) == spawn(5).integers(0, 100)

    def test_derive_independent(self):
        parent = spawn(1)
        a = derive(parent, 1)
        parent = spawn(1)
        b = derive(parent, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_set_seed_resets_default(self):
        from repro.utils import default_rng

        set_seed(99)
        first = default_rng().integers(0, 10**9)
        set_seed(99)
        second = default_rng().integers(0, 10**9)
        assert first == second


class TestMultiseed:
    def test_aggregation(self):
        from repro.experiments import QUICK
        from repro.experiments.multiseed import run_multiseed

        tiny = replace(
            QUICK,
            dataset_scale=0.12,
            epochs=1,
            max_train_samples=16,
            eval_samples=15,
            imagery_resolution=16,
            dim=16,
        )
        agg = run_multiseed("MC", "nyc", tiny, seeds=(0, 1))
        assert set(agg.mean) == set(agg.std)
        assert agg.seeds == [0, 1]
        assert 0.0 <= agg.mean["Recall@5"] <= 1.0
        assert "Recall@5=" in agg.summary(("Recall@5",))
