"""Tests for the heterogeneous graph container and QR-P construction."""

import numpy as np
import pytest

from repro.data.trajectory import Trajectory, Visit
from repro.geo import BoundingBox
from repro.graphs import HeteroGraph, build_qrp_graph, strip_edges
from repro.spatial import RegionQuadTree

BOX = BoundingBox(0.0, 0.0, 10.0, 10.0)


class TestHeteroGraph:
    def test_add_node_dedupes(self):
        g = HeteroGraph()
        a = g.add_node("tile", 5)
        b = g.add_node("tile", 5)
        assert a == b and g.num_nodes == 1

    def test_unknown_types_raise(self):
        g = HeteroGraph()
        with pytest.raises(ValueError):
            g.add_node("building", 0)
        g.add_node("tile", 0)
        g.add_node("tile", 1)
        with pytest.raises(ValueError):
            g.add_edge("tunnel", 0, 1)

    def test_edge_out_of_range(self):
        g = HeteroGraph()
        g.add_node("tile", 0)
        with pytest.raises(IndexError):
            g.add_edge("road", 0, 3)

    def test_symmetric_edges(self):
        g = HeteroGraph()
        g.add_node("tile", 0)
        g.add_node("tile", 1)
        g.add_edge("road", 0, 1)
        assert g.num_edges("road") == 2
        assert g.neighbors("road", 0) == [1]
        assert g.neighbors("road", 1) == [0]

    def test_validate_typing(self):
        g = HeteroGraph()
        t = g.add_node("tile", 0)
        p = g.add_node("poi", 0)
        g.add_edge("branch", t, p)  # wrong: branch must be tile-tile
        with pytest.raises(ValueError):
            g.validate()

    def test_adjacency_lists(self):
        g = HeteroGraph()
        g.add_node("tile", 0)
        g.add_node("tile", 1)
        g.add_node("tile", 2)
        g.add_edge("road", 0, 1)
        g.add_edge("road", 2, 1)
        table = g.adjacency_lists("road")
        assert sorted(table[1]) == [0, 2]


def _setup(seed=0, n=150):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.2, 9.8, size=(n, 2))
    tree = RegionQuadTree.build(BOX, points, max_depth=5, max_pois=12)
    leaves = tree.leaves()
    # synthetic road adjacency between the first few leaf pairs
    adjacency = {(min(a, b), max(a, b)) for a, b in zip(leaves, leaves[1:])}
    return tree, adjacency, points


def _history(points, poi_ids, user=1):
    visits = [Visit(p, float(i)) for i, p in enumerate(poi_ids)]
    return [Trajectory(user, visits)]


class TestQRPGraph:
    def test_empty_history(self):
        tree, adjacency, _ = _setup()
        qrp = build_qrp_graph(tree, adjacency, [])
        assert qrp.is_empty

    def test_nodes_and_edges_typed(self):
        tree, adjacency, points = _setup()
        qrp = build_qrp_graph(tree, adjacency, _history(points, [0, 1, 2, 3, 0]))
        qrp.graph.validate()
        assert len(qrp.poi_refs) == 4  # unique POIs only
        assert set(qrp.graph.node_types) == {"tile", "poi"}

    def test_contain_edges_match_poi_leaves(self):
        tree, adjacency, points = _setup()
        poi_ids = [0, 5, 9]
        qrp = build_qrp_graph(tree, adjacency, _history(points, poi_ids))
        for poi in poi_ids:
            poi_index = qrp.graph.index_of("poi", poi)
            leaf_index = qrp.graph.index_of("tile", tree.leaf_of_poi(poi))
            assert poi_index in qrp.graph.neighbors("contain", leaf_index)

    def test_subtree_contains_all_poi_leaves(self):
        tree, adjacency, points = _setup()
        poi_ids = [0, 20, 40, 60]
        qrp = build_qrp_graph(tree, adjacency, _history(points, poi_ids))
        for poi in poi_ids:
            assert tree.leaf_of_poi(poi) in qrp.leaf_tile_refs

    def test_road_edges_only_between_subtree_leaves(self):
        tree, adjacency, points = _setup()
        qrp = build_qrp_graph(tree, adjacency, _history(points, list(range(20))))
        for src, dst in qrp.graph.edges["road"]:
            assert qrp.graph.node_refs[src] in qrp.leaf_tile_refs
            assert qrp.graph.node_refs[dst] in qrp.leaf_tile_refs

    def test_branch_edges_follow_tree(self):
        tree, adjacency, points = _setup()
        qrp = build_qrp_graph(tree, adjacency, _history(points, list(range(30))))
        for src, dst in qrp.graph.edges["branch"]:
            a, b = qrp.graph.node_refs[src], qrp.graph.node_refs[dst]
            assert tree.node(a).parent_id == b or tree.node(b).parent_id == a

    def test_tile_then_poi_local_indexing(self):
        """Model code relies on tiles occupying the first rows."""
        tree, adjacency, points = _setup()
        qrp = build_qrp_graph(tree, adjacency, _history(points, [0, 1, 2]))
        n_tiles = len(qrp.tile_nodes)
        assert qrp.tile_nodes == list(range(n_tiles))
        assert qrp.poi_nodes == list(range(n_tiles, qrp.graph.num_nodes))


class TestStripEdges:
    def test_strip_road(self):
        tree, adjacency, points = _setup()
        qrp = build_qrp_graph(tree, adjacency, _history(points, list(range(25))))
        stripped = strip_edges(qrp, "road")
        assert stripped.graph.num_edges("road") == 0
        assert stripped.graph.num_edges("contain") == qrp.graph.num_edges("contain")
        assert stripped.graph.num_nodes == qrp.graph.num_nodes

    def test_strip_does_not_mutate_original(self):
        tree, adjacency, points = _setup()
        qrp = build_qrp_graph(tree, adjacency, _history(points, list(range(25))))
        before = qrp.graph.num_edges("contain")
        strip_edges(qrp, "contain")
        assert qrp.graph.num_edges("contain") == before
