"""Optimisers and learning-rate schedules."""

from .adam import Adam
from .scheduler import ExponentialDecay
from .sgd import SGD

__all__ = ["Adam", "ExponentialDecay", "SGD"]
