"""Figure 8 — cosine similarity of the Eq. 4 spatial encoding.

Paper shape to reproduce: for an anchor point in the unit square, the
cosine similarity between its encoding and every other location's
encoding peaks at the anchor and decays with distance.
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.figures import run_fig8


def bench_fig8(benchmark, save_report):
    result = benchmark.pedantic(
        run_fig8, kwargs=dict(dim=512, resolution=21), rounds=1, iterations=1
    )
    rows = []
    for anchor, sims, corr in zip(
        result.anchors, result.similarities, result.distance_similarity_corr
    ):
        rows.append(
            [
                f"({anchor[0]:.2f}, {anchor[1]:.2f})",
                f"{sims.max():.3f}",
                f"{sims.min():.3f}",
                f"{corr:+.3f}",
            ]
        )
    report = format_table(
        ["Anchor", "MaxSim", "MinSim", "corr(dist, sim)"],
        rows,
        title="Fig. 8 — spatial encoding similarity fields (dm=512)",
    )
    save_report("fig8", report)
    assert result.peak_is_anchor()
    assert all(c < -0.3 for c in result.distance_similarity_corr)
