"""Road network substrate: container, synthetic generators, tile adjacency."""

from .adjacency import tile_road_adjacency
from .generator import generate_state_network, generate_urban_network
from .network import RoadNetwork

__all__ = [
    "RoadNetwork",
    "generate_state_network",
    "generate_urban_network",
    "tile_road_adjacency",
]
