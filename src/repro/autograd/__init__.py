"""Reverse-mode autodiff engine (the PyTorch substitute for this repo)."""

from .batching import gather_last, pad_stack
from .functional import (
    conv2d,
    cosine_similarity,
    cross_entropy,
    dropout,
    gather_rows,
    l2_normalize,
    log_softmax,
    masked_fill,
    softmax,
)
from .gradcheck import gradcheck, numerical_gradient
from .tensor import (
    Tensor,
    arange,
    concat,
    is_grad_enabled,
    maximum,
    no_grad,
    ones,
    stack,
    tensor,
    where,
    zeros,
)

__all__ = [
    "Tensor",
    "arange",
    "concat",
    "conv2d",
    "cosine_similarity",
    "cross_entropy",
    "dropout",
    "gather_last",
    "gather_rows",
    "gradcheck",
    "is_grad_enabled",
    "l2_normalize",
    "log_softmax",
    "masked_fill",
    "maximum",
    "no_grad",
    "numerical_gradient",
    "ones",
    "pad_stack",
    "softmax",
    "stack",
    "tensor",
    "where",
    "zeros",
]
