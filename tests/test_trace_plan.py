"""Engine-level tests for the compiled-inference stack.

Covers the configurable default dtype (``set_default_dtype``), trace
capture (:mod:`repro.autograd.trace`), and plan execution
(:mod:`repro.autograd.plan`): bit-identical float64 replay, the
documented float32 tolerance envelope, constant folding / DCE, the
``TraceError`` surface for untraceable ops, and feed validation.
"""

import threading

import numpy as np
import pytest

from repro.autograd import (
    Plan,
    PlanError,
    Tensor,
    TraceError,
    arange,
    conv2d,
    get_default_dtype,
    masked_fill,
    maximum,
    no_grad,
    ones,
    pad_stack,
    set_default_dtype,
    softmax,
    trace,
    zeros,
)
from repro.nn import LayerNorm, Linear, ReLU, Sequential
from repro.utils.rng import spawn


# ----------------------------------------------------------------------
# satellite (a): configurable default dtype
# ----------------------------------------------------------------------
class TestDefaultDtype:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_set_and_restore_via_handle(self):
        handle = set_default_dtype(np.float32)
        try:
            assert get_default_dtype() == np.float32
        finally:
            handle.__exit__(None, None, None)
        assert get_default_dtype() == np.float64

    def test_context_manager_restores_on_exit(self):
        with set_default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            # nesting restores the *inner* previous value
            with set_default_dtype(np.float64):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_context_manager_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with set_default_dtype(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_rejects_non_float_dtype(self):
        with pytest.raises(TypeError):
            set_default_dtype(np.int64)

    def test_constructors_follow_default(self):
        with set_default_dtype(np.float32):
            assert zeros((2, 3)).dtype == np.float32
            assert ones(4).dtype == np.float32
            assert arange(5).dtype == np.float32
            assert Tensor([1, 2, 3]).dtype == np.float32
            assert pad_stack([None], width=3).dtype == np.float32
        assert zeros((2,)).dtype == np.float64

    def test_float32_graph_end_to_end_with_backward(self):
        """A model built under float32 runs forward AND backward in f32."""
        with set_default_dtype(np.float32):
            rng = spawn(0)
            net = Sequential(Linear(6, 8, rng=rng), ReLU(), LayerNorm(8), Linear(8, 3, rng=rng))
            for p in net.parameters():
                assert p.data.dtype == np.float32
            x = Tensor(rng.standard_normal((4, 6)).astype(np.float32), requires_grad=True)
            out = net(x)
            assert out.dtype == np.float32
            loss = (out * out).sum()
            assert loss.dtype == np.float32
            loss.backward()
            assert x.grad is not None and x.grad.dtype == np.float32
            for p in net.parameters():
                assert p.grad is None or p.grad.dtype == np.float32

    def test_existing_float_arrays_keep_their_dtype(self):
        # Only *literal* construction follows the default; explicit float
        # arrays pass through untouched (identity matters for tracing).
        with set_default_dtype(np.float32):
            arr = np.ones(3, dtype=np.float64)
            t = Tensor(arr)
            assert t.dtype == np.float64
            assert t.data is arr


# ----------------------------------------------------------------------
# trace capture
# ----------------------------------------------------------------------
def _affine_softmax(x, w, b):
    return softmax(x @ w + b, axis=-1)


def _make_plan(dtype=np.float64, seed=0):
    rng = spawn(seed)
    x_arr = rng.standard_normal((4, 5))
    w = Tensor(rng.standard_normal((5, 3)))
    b = Tensor(rng.standard_normal((3,)))
    with no_grad(), trace(dtype) as tr:
        x = Tensor(tr.input("x", x_arr))
        out = _affine_softmax(x, w, b)
    plan = tr.finalize([out])
    return plan, x_arr, (w, b)


class TestTrace:
    def test_float64_replay_is_bit_identical_on_new_feeds(self):
        plan, _, (w, b) = _make_plan()
        rng = spawn(7)
        for _ in range(3):
            x_new = rng.standard_normal((4, 5))
            with no_grad():
                want = _affine_softmax(Tensor(x_new), w, b).data
            (got,) = plan.run({"x": x_new})
            assert got.dtype == np.float64
            assert np.array_equal(got, want)

    def test_float32_plan_outputs_float32_within_tolerance(self):
        plan, _, (w, b) = _make_plan(dtype=np.float32)
        assert plan.dtype == np.float32
        x_new = spawn(3).standard_normal((4, 5))
        with no_grad():
            want = _affine_softmax(Tensor(x_new), w, b).data
        (got,) = plan.run({"x": x_new})
        assert got.dtype == np.float32
        np.testing.assert_allclose(got.astype(np.float64), want, rtol=1e-3, atol=1e-5)

    def test_constant_folding_and_dce(self):
        rng = spawn(1)
        x_arr = rng.standard_normal((3, 3))
        c = Tensor(rng.standard_normal((3, 3)))
        with no_grad(), trace() as tr:
            x = Tensor(tr.input("x", x_arr))
            folded = (c + c) * c  # constant-only: folded away
            dead = x * 2.0  # dynamic but unused: DCE'd
            out = x + folded
            del dead
        plan = tr.finalize([out])
        assert plan.folded_steps >= 2  # c+c and (c+c)*c
        # live steps: just the x + folded add (x*2.0 eliminated)
        assert plan.num_steps == 1
        (got,) = plan.run({"x": x_arr})
        assert np.array_equal(got, out.data)

    def test_constants_baked_to_plan_dtype(self):
        c = Tensor(np.ones((2, 2), dtype=np.float64))
        x_arr = np.ones((2, 2), dtype=np.float64)
        with no_grad(), trace(np.float32) as tr:
            x = Tensor(tr.input("x", x_arr))
            out = x @ c
        plan = tr.finalize([out])
        consts = [a for _, args, _, _ in plan.steps for a in args if not isinstance(a, int)]
        assert consts and all(a.dtype == np.float32 for a in consts)

    def test_kernel_less_op_raises_trace_error(self):
        with pytest.raises(TraceError, match="no replay kernel"):
            with no_grad(), trace() as tr:
                row = Tensor(tr.input("r", np.ones((2, 3))))
                pad_stack([row], width=3)

    def test_conv2d_raises_trace_error(self):
        rng = spawn(2)
        x_arr = rng.standard_normal((1, 1, 5, 5))
        w = Tensor(rng.standard_normal((2, 1, 3, 3)))
        with pytest.raises(TraceError, match="no replay kernel"):
            with no_grad(), trace() as tr:
                x = Tensor(tr.input("x", x_arr))
                conv2d(x, w)

    def test_traces_do_not_nest(self):
        with pytest.raises(TraceError, match="do not nest"):
            with trace():
                with trace():
                    pass

    def test_duplicate_input_name_rejected(self):
        with pytest.raises(TraceError, match="duplicate"):
            with no_grad(), trace() as tr:
                tr.input("x", np.ones(2))
                tr.input("x", np.ones(3))

    def test_finalize_without_inputs_rejected(self):
        with no_grad(), trace() as tr:
            out = Tensor(np.ones(2)) * 2.0
        with pytest.raises(TraceError, match="no inputs"):
            tr.finalize([out])

    def test_finalize_twice_rejected(self):
        with no_grad(), trace() as tr:
            x = Tensor(tr.input("x", np.ones(2)))
            out = x * 2.0
        tr.finalize([out])
        with pytest.raises(TraceError, match="twice"):
            tr.finalize([out])

    def test_unsupported_plan_dtype_rejected(self):
        with pytest.raises(TraceError, match="float32/float64"):
            trace(np.float16).__enter__()


# ----------------------------------------------------------------------
# plan execution
# ----------------------------------------------------------------------
class TestPlanExecution:
    def test_missing_feed_raises(self):
        plan, _, _ = _make_plan()
        with pytest.raises(PlanError, match="missing feed"):
            plan.run({})

    def test_shape_mismatch_raises(self):
        plan, _, _ = _make_plan()
        with pytest.raises(PlanError, match="shape"):
            plan.run({"x": np.zeros((5, 5))})

    def test_float_feed_cast_to_plan_dtype(self):
        plan, x_arr, _ = _make_plan(dtype=np.float32)
        (got,) = plan.run({"x": x_arr.astype(np.float64)})
        assert got.dtype == np.float32

    def test_non_float_feed_dtype_mismatch_raises(self):
        ids = np.arange(6, dtype=np.int64)
        table = Tensor(spawn(4).standard_normal((6, 3)))
        with no_grad(), trace() as tr:
            idx = tr.input("ids", ids)
            out = table[idx]
        plan = tr.finalize([out])
        with pytest.raises(PlanError, match="dtype"):
            plan.run({"ids": ids.astype(np.int32)})

    def test_describe_and_counters(self):
        plan, x_arr, _ = _make_plan()
        # finalize's verification replay is run 1
        assert plan.runs == 1 and plan.contexts == 1
        plan.run({"x": x_arr})
        plan.run({"x": x_arr})
        desc = plan.describe()
        assert desc["runs"] == 3
        assert desc["contexts"] == 1
        assert desc["inputs"] == ["x"]
        assert desc["steps"] == plan.num_steps
        assert desc["buffer_bytes"] > 0
        assert desc["dtype"] == "float64"

    def test_concurrent_runs_are_correct_and_isolated(self):
        plan, _, (w, b) = _make_plan()
        rng = spawn(9)
        feeds = [rng.standard_normal((4, 5)) for _ in range(8)]
        with no_grad():
            wants = [_affine_softmax(Tensor(f), w, b).data for f in feeds]
        errors = []

        def worker(feed, want):
            try:
                for _ in range(50):
                    (got,) = plan.run({"x": feed})
                    if not np.array_equal(got, want):
                        raise AssertionError("cross-thread buffer corruption")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f, m)) for f, m in zip(feeds, wants)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert plan.contexts >= len(threads)
        assert plan.runs >= 400


class TestPlanReuse:
    def test_buffer_accounting_stable_across_runs(self):
        """Per-context buffer bytes are sampled once and stay fixed."""
        plan, x_arr, _ = _make_plan()
        plan.run({"x": x_arr})
        first = plan.buffer_bytes
        assert first > 0
        plan.run({"x": x_arr})
        assert plan.buffer_bytes == first
        ctx = plan._local.ctx
        assert len(ctx.outs) == plan.num_steps

    def test_plan_is_graph_free(self):
        """Replay never touches Tensor — a pure numpy program."""
        plan, x_arr, _ = _make_plan()
        outs = plan.run({"x": x_arr})
        assert all(isinstance(o, np.ndarray) for o in outs)
        assert isinstance(plan, Plan)


# ----------------------------------------------------------------------
# replay-kernel consistency regressions
# ----------------------------------------------------------------------
class TestReplayKernelConsistency:
    def test_maximum_replay_matches_eager_on_nan(self):
        """Replay uses the same np.maximum ufunc as eager — NaN included."""
        rng = spawn(11)
        x_arr = rng.standard_normal((2, 3))
        y = Tensor(rng.standard_normal((2, 3)))
        with no_grad(), trace() as tr:
            x = Tensor(tr.input("x", x_arr))
            out = maximum(x, y)
        plan = tr.finalize([out])
        x_nan = x_arr.copy()
        x_nan[0, 0] = np.nan
        with no_grad():
            want = maximum(Tensor(x_nan), y).data
        (got,) = plan.run({"x": x_nan})
        assert np.isnan(got[0, 0])  # NaN propagates, like np.maximum
        assert np.array_equal(got, want, equal_nan=True)

    def test_masked_fill_concurrent_dynamic_masks(self):
        """Threads replaying one plan with different masks never mix them.

        The broadcast-mask cache inside masked_fill's replay kernel is
        shared by every thread replaying the plan; a torn
        (snapshot, broadcast) pairing would fill one batch with another
        batch's mask while still passing the equality revalidation.
        """
        rng = spawn(12)
        x_arr = rng.standard_normal((4, 6))
        m_arr = np.zeros((1, 6), dtype=bool)
        with no_grad(), trace() as tr:
            x = Tensor(tr.input("x", x_arr))
            m = tr.input("m", m_arr)
            out = masked_fill(x, m, -1e9)
        plan = tr.finalize([out])
        errors = []

        def worker(seed):
            try:
                t_rng = spawn(seed)
                for _ in range(200):
                    mask = t_rng.random((1, 6)) < 0.5
                    feed = t_rng.standard_normal((4, 6))
                    (got,) = plan.run({"x": feed, "m": mask})
                    if not np.array_equal(got, np.where(mask, -1e9, feed)):
                        raise AssertionError("replay used a foreign mask")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(100 + i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
