"""Table II — model comparison on the urban datasets (TKY / NYC).

Paper shape to reproduce: deep models beat the Markov chain; the
history-aware models (DeepMove, LSTPM, Graph-Flashback) are the
competitive baselines; TSPN-RA leads or ties the field.
"""

from repro.experiments import best_baseline, format_results, improvement_row
from repro.experiments.reporting import METRIC_COLUMNS
from repro.experiments.tables import run_table2


def bench_table2(benchmark, profile, save_report):
    results = benchmark.pedantic(run_table2, args=(profile,), rounds=1, iterations=1)
    blocks = []
    for dataset, table in results.items():
        block = format_results(
            table, title=f"Table II — {dataset.upper()}", highlight="TSPN-RA"
        )
        strongest = best_baseline(table, exclude="TSPN-RA")
        improvements = improvement_row(table["TSPN-RA"], table[strongest])
        block += f"\nimprovement vs best baseline ({strongest}): " + "  ".join(
            f"{k}={v}" for k, v in improvements.items()
        )
        blocks.append(block)
    save_report("table2", "\n\n".join(blocks))
    # Validity assertions only: every model evaluated, every metric in
    # range.  Where TSPN-RA lands relative to the paper's clean sweep at
    # this scale is a measured finding recorded in EXPERIMENTS.md, not a
    # precondition for the benchmark artefact.
    for dataset, table in results.items():
        assert len(table) == 11, f"{dataset}: missing models"
        for model, metrics in table.items():
            for column in METRIC_COLUMNS:
                assert 0.0 <= metrics[column] <= 1.0, (dataset, model, column)
