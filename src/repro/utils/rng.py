"""Seeded random-number management.

Every stochastic component in the repository (parameter init, dropout,
data synthesis, negative sampling) draws from an explicit
``numpy.random.Generator`` so that experiments are reproducible from a
single seed, as the paper's protocol of averaging five seeded runs
requires.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0
_default_rng = np.random.default_rng(_DEFAULT_SEED)


def set_seed(seed: int) -> None:
    """Reset the process-wide default generator."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)


def default_rng() -> np.random.Generator:
    """Return the process-wide default generator."""
    return _default_rng


def spawn(seed: int) -> np.random.Generator:
    """Create an independent generator from an explicit seed."""
    return np.random.default_rng(seed)


def derive(rng: np.random.Generator, salt: int) -> np.random.Generator:
    """Derive a child generator deterministically from a parent and a salt."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1) + salt)
