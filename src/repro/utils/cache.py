"""A small LRU cache used to bound per-user serving state."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """Least-recently-used map; ``maxsize=None`` means unbounded.

    Tracks hit/miss counters so serving code can report cache health.
    All operations are thread-safe: the serving worker pool inserts QR-P
    graphs from several threads at once, and an unguarded
    ``OrderedDict`` reorder/evict can corrupt the linked list mid-read.
    """

    def __init__(self, maxsize: Optional[int] = None):
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key``'s value (``default`` if absent).

        Targeted invalidation: the stream ingest pipeline retires a
        user's stale QR-P graph entry without touching the rest of the
        cache.  Not counted as a hit or miss — eviction is bookkeeping,
        not serving traffic.
        """
        with self._lock:
            return self._data.pop(key, default)

    def items(self):
        """(key, value) pairs, least- to most-recently used."""
        with self._lock:
            return list(self._data.items())

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
