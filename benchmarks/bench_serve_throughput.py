"""Serving throughput and latency percentiles — the BENCH_serve harness.

Seeds the BENCH trajectory for the ``repro.serve`` subsystem.  Five
legs, slowest to fastest:

* **uncached** — the legacy research loop (``compute_embeddings()``
  recomputed per request);
* **cached** — shared embeddings computed once, per-sample ``predict``
  loop (the pre-vectorisation ``Predictor`` behaviour);
* **batched** — the vectorised ``predict_batch`` path: padded-and-
  masked batch encode plus single-matmul tile/POI ranking, measured
  per batch so p50/p95/p99 latencies are meaningful;
* **compiled** / **compiled_f32** — the batched facade replaying
  captured inference plans (trace-once, graph-free): float64 is
  bit-identical to eager (the correctness surface), float32 is the
  compiled *serving* configuration — plans run float32 end-to-end
  with dtype-specialised replay kernels.  Plan-cache counters
  (plans, hits, misses) ride along per leg.  The batched and compiled
  legs are interleaved round-robin, and each speedup is the median of
  per-round paired ratios, so shared-host clock drift cancels out.

The acceptance gate is ``compiled_speedup`` — the float32 compiled
leg vs the eager batched leg — asserted >= 1.5x; ``compiled_f64_speedup``
tracks the bit-identical replay against the same baseline.

Alongside the human-readable table the run emits
``benchmarks/results/BENCH_serve.json`` — the machine-readable BENCH
trajectory point (samples/sec per leg, batched-vs-per-sample and
compiled-vs-batched speedups, latency percentiles, dtype).  Run
standalone with ``PYTHONPATH=src python benchmarks/bench_serve_throughput.py``
(the CI ``serve-smoke`` job does exactly that and uploads the JSON).
"""

import json
from pathlib import Path

import pytest

from repro.autograd import get_default_dtype
from repro.experiments import format_table, get_profile, prepare, run_one
from repro.serve import compare_throughput

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).parent / "results"
BATCH_SIZE = 16


def run_bench(profile=None, save_report=None):
    profile = (profile or get_profile("quick")).smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)
    test = data.splits.test[:80]

    report = compare_throughput(model, test, batch_size=BATCH_SIZE, repeats=5)

    rows = [[key, f"{value:10.2f}"] for key, value in report.items()]
    table = format_table(
        ["Metric", "Value"],
        rows,
        title="Serving throughput — uncached vs cached vs batched vs compiled (NYC)",
    )
    if save_report is not None:
        save_report("serve_throughput", table)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "serve_throughput.txt").write_text(table + "\n")
        print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_point = {
        "bench": "serve",
        "dataset": "nyc",
        "batch_size": BATCH_SIZE,
        "dtype": str(get_default_dtype()),
        **{key: round(value, 4) for key, value in report.items()},
    }
    out = RESULTS_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(trajectory_point, indent=2) + "\n")
    print(f"[BENCH trajectory point saved to {out}]")

    assert report["speedup"] > 1.0, report
    assert report["batched_speedup"] > 1.0, report
    # acceptance gate: compiled replay beats the eager batched leg
    assert report["compiled_speedup"] >= 1.5, report
    return trajectory_point


def bench_serve_throughput(profile, save_report):
    run_bench(profile=profile, save_report=save_report)


if __name__ == "__main__":
    run_bench()
