"""Table IV — ablation study on the urban datasets.

Paper shape to reproduce: removing the two-step filter or the QR-P
graph hurts most; grid-instead-of-quadtree, no-imagery, no-S&T-encoder
and no-category are all strictly worse than the full model.
"""

from repro.experiments import format_table
from repro.experiments.tables import ABLATION_NAMES, run_table4

COLUMNS = ("Recall@5", "NDCG@5", "MRR")


def bench_table4(benchmark, profile, save_report):
    results = benchmark.pedantic(run_table4, args=(profile,), rounds=1, iterations=1)
    blocks = []
    for dataset, table in results.items():
        rows = []
        for variant in ABLATION_NAMES:
            metrics = table[variant]
            row = [variant] + [f"{metrics[c]:.4f}" for c in COLUMNS]
            row.append(
                "-" if variant == "TSPN-RA" else f"{metrics['impro@avg']:+.2f}%"
            )
            rows.append(row)
        blocks.append(
            format_table(
                ["Variant", *COLUMNS, "impro@avg"],
                rows,
                title=f"Table IV — ablations ({dataset.upper()})",
            )
        )
    save_report("table4", "\n\n".join(blocks))
    # Shape: ablations should tend to hurt.  At quick-profile scale the
    # full model is also the hardest to train, so per-dataset noise is
    # large; assert the pooled direction across datasets instead.
    deltas = [
        table[v]["impro@avg"]
        for table in results.values()
        for v in ABLATION_NAMES
        if v != "TSPN-RA"
    ]
    worse = sum(1 for d in deltas if d < 0)
    assert worse >= int(0.4 * len(deltas)), (
        f"only {worse}/{len(deltas)} ablations hurt the full model"
    )
