"""Multi-head scaled dot-product attention.

Used by the TSPN-RA fusion modules (masked self-attention and cross
attention onto historical graph knowledge, paper Sec. V-A) and by the
attention-based baselines (DeepMove, STAN, STiSAN, SAE-NAD).

Sequences come in two shapes:

* unbatched ``(length, dim)`` — the per-sample research loop (and the
  trainer's ``use_batched=False`` escape hatch);
* batched ``(batch, length, dim)`` — the vectorised path shared by
  inference and the batched training loss: prefixes are padded to a
  common length and the padding masked (the MobTCast-style
  padded-batch formulation).  :func:`key_padding_mask` builds the
  standard right-padding mask from per-sample lengths; every op is
  differentiable, so gradients flow around (never through) the masked
  positions.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor, masked_fill, softmax
from ..utils.rng import default_rng
from .layers import Linear
from .module import Module

NEG_INF = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask that is True at positions a query must not attend to.

    Implements the paper's "inverted triangle" mask M_mask: position u
    may attend to positions v <= u only.
    """
    return np.triu(np.ones((length, length), dtype=bool), k=1)


def key_padding_mask(lengths: Sequence[int], max_length: int) -> np.ndarray:
    """Boolean ``(batch, max_length)``; True at right-padded key slots.

    Row ``b`` is True from ``lengths[b]`` onward, so padded keys are
    blocked for every query of sample ``b``.
    """
    positions = np.arange(max_length)
    return positions[None, :] >= np.asarray(lengths, dtype=np.int64)[:, None]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads.

    Unbatched: ``query`` ``(L_q, dim)``; ``key``/``value`` ``(L_k, dim)``;
    ``mask`` boolean ``(L_q, L_k)``, True = blocked.

    Batched: ``query`` ``(B, L_q, dim)``; ``key``/``value``
    ``(B, L_k, dim)``; ``mask`` broadcastable ``(L_q, L_k)`` or
    per-sample ``(B, L_q, L_k)``.  A fully masked row yields a uniform
    distribution over blocked positions — callers discard those rows
    (padded queries) or select away the output (absent history).
    """

    def __init__(self, dim: int, num_heads: int = 4, rng=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng=rng)
        self.w_k = Linear(dim, dim, rng=rng)
        self.w_v = Linear(dim, dim, rng=rng)
        self.w_o = Linear(dim, dim, rng=rng)

    def _split(self, x: Tensor, length: int) -> Tensor:
        # (L, dim) -> (heads, L, head_dim)
        return x.reshape(length, self.num_heads, self.head_dim).transpose(1, 0, 2)

    def _split_batch(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, L, dim) -> (B, heads, L, head_dim)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        if query.ndim == 3:
            return self._forward_batch(query, key, value, mask=mask)
        l_q, l_k = query.shape[0], key.shape[0]
        q = self._split(self.w_q(query), l_q)
        k = self._split(self.w_k(key), l_k)
        v = self._split(self.w_v(value), l_k)

        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = masked_fill(scores, mask[None, :, :], NEG_INF)
        weights = softmax(scores, axis=-1)
        attended = weights @ v  # (heads, L_q, head_dim)
        merged = attended.transpose(1, 0, 2).reshape(l_q, self.dim)
        return self.w_o(merged)

    def _forward_batch(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.ndim == 2:  # shared (L_q, L_k), e.g. a causal mask
                mask = mask[None, None, :, :]
            elif mask.ndim == 3:  # per-sample (B, L_q, L_k)
                mask = mask[:, None, :, :]
        return self.forward_prepared(query, key, value, mask)

    def forward_prepared(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Batched attention with a pre-broadcast 4-D mask.

        ``mask`` must already be boolean and broadcastable to
        ``(B, heads, L_q, L_k)`` — e.g. ``(1, 1, L, L)`` causal or
        ``(B, 1, 1, L_k)`` key-padding.  This is the trace-friendly
        entry point: all mask shaping happens in the caller's feed-prep
        stage, so a captured plan links the mask straight back to its
        feed instead of baking a batch-specific broadcast.  Values are
        identical to :meth:`forward` on batched input — broadcasting a
        mask early or late changes nothing elementwise.
        """
        batch, l_q = query.shape[0], query.shape[1]
        l_k = key.shape[1]
        q = self._split_batch(self.w_q(query), batch, l_q)
        k = self._split_batch(self.w_k(key), batch, l_k)
        v = self._split_batch(self.w_v(value), batch, l_k)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = masked_fill(scores, mask, NEG_INF)
        weights = softmax(scores, axis=-1)
        attended = weights @ v  # (B, heads, L_q, head_dim)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, l_q, self.dim)
        return self.w_o(merged)


class SelfAttention(MultiHeadAttention):
    """Self-attention convenience wrapper (optionally causal)."""

    def __init__(self, dim: int, num_heads: int = 4, causal: bool = False, rng=None):
        super().__init__(dim, num_heads=num_heads, rng=rng)
        self.causal = causal

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        if self.causal:
            auto = causal_mask(x.shape[-2])
            mask = auto if mask is None else (auto | mask)
        return super().forward(x, x, x, mask=mask)
