"""Sharded, lock-striped per-user state for the online check-in stream.

The serving runtime of PRs 1–4 is stateless: every request ships the
user's full check-in history over the wire.  :class:`UserStateStore`
makes the server the owner of that state instead:

* users hash onto ``num_shards`` independent shards, each guarded by
  its own lock, so concurrent ingest and predict traffic for different
  users never contends on one global lock;
* each user holds a bounded deque of *completed* sessions (the QR-P
  history) plus the open, in-progress session (the prediction prefix);
* session boundaries follow the paper's Δt gap rule — an arrival
  ``>= gap_hours`` after the previous one closes the open session —
  exactly matching :func:`~repro.data.trajectory.split_into_trajectories`,
  so a replayed stream reconstructs the offline trajectories;
* every append bumps the user's monotonically increasing
  ``state_version``; ``history_version`` (the ``state_version`` of the
  last append that *changed the completed-session history*) keys the
  per-user QR-P graph cache, the same way shared embeddings ride
  ``weights_version`` — a graph cached under the old key can never be
  served after the history moves.

Appends must be time-ordered per user (the same invariant
:class:`~repro.data.checkin.CheckinDataset` enforces on construction);
an out-of-order arrival raises ``ValueError`` instead of silently
corrupting the session split.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..data.trajectory import (
    DEFAULT_GAP_HOURS,
    PredictionSample,
    Trajectory,
    Visit,
)
from ..graphs import StaleEvictionError
from .events import CheckinEvent


def stream_history_key(user_id: int, history_version: int) -> Tuple:
    """QR-P graph-cache key for a stored user's history.

    Namespaced ``("stream", ...)`` so stored-state keys are disjoint
    from both dataset ``(user, trajectory-index)`` keys and the
    stateless serving ``("serve", user, digest)`` keys.  The key moves
    with ``history_version``, so a session rollover both *retires* the
    old entry (the ingest pipeline drops it) and guarantees the next
    predict builds a fresh graph even if the drop were missed.
    """
    return ("stream", user_id, history_version)


@dataclass(frozen=True)
class StoreConfig:
    """Sharding and bounding knobs of the user-state store.

    ``max_sessions`` bounds how many completed sessions feed QR-P graph
    construction (the oldest falls off); ``max_session_visits`` force-
    rolls a pathological never-gapping session so the prediction prefix
    — and the padded batch encode behind it — stays bounded.
    """

    num_shards: int = 16
    max_sessions: int = 64
    max_session_visits: int = 512
    gap_hours: float = DEFAULT_GAP_HOURS

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_session_visits < 2:
            raise ValueError("max_session_visits must be >= 2")
        if self.gap_hours <= 0:
            raise ValueError("gap_hours must be positive")


@dataclass
class AppendResult:
    """What one :meth:`UserStateStore.append` did.

    ``invalidated_key`` is the graph-cache key made stale by this
    append (set exactly when the completed-session history changed);
    the ingest pipeline drops it from the serving caches.  When a graph
    maintainer is attached, ``history_key``/``graph_entry`` carry the
    *replacement*: the key the moved history now lives under and the
    incrementally updated ``(qrp, masks)`` cache value, which the
    ingest pipeline pushes into compatible worker caches so the next
    predict for this user is a cache hit instead of a rebuild.
    """

    user_id: int
    state_version: int
    session_rolled: bool
    forced_roll: bool
    session_length: int  # open-session length after the append
    num_sessions: int  # completed sessions now in history
    invalidated_key: Optional[Tuple] = None
    history_key: Optional[Tuple] = None  # set when the history moved
    graph_entry: Optional[Tuple] = None  # fresh (qrp, masks) for history_key

    def as_dict(self) -> Dict:
        return {
            "user_id": self.user_id,
            "state_version": self.state_version,
            "session_rolled": self.session_rolled,
            "forced_roll": self.forced_roll,
            "session_length": self.session_length,
            "num_sessions": self.num_sessions,
        }


@dataclass
class UserSnapshot:
    """One consistent read of a user's state.

    ``history``/``prefix`` are safe to use lock-free after the snapshot:
    completed :class:`Trajectory` objects are never mutated once rolled,
    and ``prefix`` is a copy of the open session.  This is what makes
    snapshot-then-batch prequential replay sound — a sample built from
    a snapshot cannot observe any later ingest.
    """

    user_id: int
    history: List[Trajectory]
    prefix: List[Visit]
    state_version: int
    history_version: int
    last_timestamp: float
    gap_hours: float = DEFAULT_GAP_HOURS
    max_session_visits: int = 512
    #: The live incrementally maintained ``(qrp, masks)`` for
    #: ``history`` when a graph maintainer is attached and the user's
    #: graph has been materialised; versioned by ``history_version``
    #: (the graph is a pure function of the completed sessions, which
    #: only move when ``history_version`` does).  Safe to read
    #: lock-free: graph states are replaced copy-on-write, never
    #: mutated in place.
    graph: Optional[Tuple] = None

    @property
    def history_key(self) -> Tuple:
        return stream_history_key(self.user_id, self.history_version)

    def continues_session(self, event: CheckinEvent) -> bool:
        """Would ``event`` extend the open session (vs start a new one)?

        Mirrors the store's append rule: a gap ``>= gap_hours`` or a
        full open session rolls.  Replay uses this to decide whether an
        arrival has an offline prediction-sample counterpart (the first
        visit of a session is never a prediction target).
        """
        if not self.prefix:
            return False
        if event.timestamp - self.last_timestamp >= self.gap_hours:
            return False
        return len(self.prefix) < self.max_session_visits

    def sample(self, target: Optional[Visit] = None) -> PredictionSample:
        """The snapshot as a prediction sample (history-less serving)."""
        return PredictionSample(
            user_id=self.user_id,
            history=self.history,
            prefix=self.prefix,
            target=target,
            history_key=self.history_key,
        )


def _graph_entry(gstate) -> Tuple:
    """A live graph state as a serving-cache value.

    Matches what the model's cache-miss path (``TSPNRA._qrp_for``)
    builds: ``(qrp, masks)``, with masks accompanying non-empty graphs
    only — so a pushed entry is indistinguishable from a rebuilt one.
    """
    return (gstate.qrp, gstate.masks if not gstate.qrp.is_empty else {})


class _UserState:
    """Mutable per-user record; all access under the owning shard lock."""

    __slots__ = (
        "user_id",
        "sessions",
        "open_visits",
        "last_timestamp",
        "state_version",
        "history_version",
        "graph",
    )

    def __init__(self, user_id: int, max_sessions: int):
        self.user_id = user_id
        self.sessions: Deque[Trajectory] = deque(maxlen=max_sessions)
        self.open_visits: List[Visit] = []
        self.last_timestamp = float("-inf")
        self.state_version = 0
        self.history_version = 0
        # live QRPGraphState when a maintainer is attached; None until
        # materialised (lazily for users predating the attach or
        # restored from a snapshot — the graph is derivable from
        # ``sessions``, so persistence never has to carry it)
        self.graph = None


@dataclass
class _Shard:
    """One lock stripe: a user map plus its counters.

    Occupancy (``open_visits``/``held_sessions``) is maintained
    incrementally on append so :meth:`UserStateStore.stats` is
    O(shards), never O(users) — a /stats poll must not stall ingest by
    walking a large shard under its lock.
    """

    lock: threading.Lock = field(default_factory=threading.Lock)
    users: Dict[int, _UserState] = field(default_factory=dict)
    events: int = 0
    rollovers: int = 0
    forced_rolls: int = 0
    open_visits: int = 0
    held_sessions: int = 0
    graph_updates: int = 0  # incremental session appends
    graph_evictions: int = 0  # incremental deque evictions
    graph_rebuilds: int = 0  # counted full builds (restore / fallback)


class UserStateStore:
    """N-shard, lock-striped map of user id -> trajectory state.

    Thread-safety contract: :meth:`append` and :meth:`snapshot` for the
    *same* user serialise on the user's shard lock; different shards
    proceed fully in parallel.  Appends for one user must arrive
    time-ordered (enforced), matching the offline sorted invariant.
    """

    def __init__(self, config: Optional[StoreConfig] = None):
        self.config = config or StoreConfig()
        self._shards = [_Shard() for _ in range(self.config.num_shards)]
        self._graphs = None  # QRPGraphMaintainer once attached
        self._graphs_lock = threading.Lock()

    def _shard_of(self, user_id: int) -> _Shard:
        return self._shards[hash(user_id) % len(self._shards)]

    # ------------------------------------------------------------------
    # incremental graph maintenance
    # ------------------------------------------------------------------
    def attach_graph_maintainer(self, maintainer) -> bool:
        """Adopt one incremental QR-P maintainer for the whole store.

        Returns True when ``maintainer`` is (now) the store's
        maintainer — workers sharing one tile system pass the same
        memoised instance, so every registration after the first is a
        no-op success.  A *different* maintainer (e.g. a second model
        over another tile system sharing the store) returns False: the
        store keeps maintaining graphs for the first one, and the
        mismatched worker simply gets no pushed entries — its cache
        misses rebuild per key, exactly as before this feature.
        """
        if maintainer is None:
            return False
        with self._graphs_lock:
            if self._graphs is None:
                self._graphs = maintainer
            return self._graphs is maintainer

    @property
    def graph_maintainer(self):
        return self._graphs

    def _advance_graph(self, shard: _Shard, state: _UserState, closed, evicted):
        """Apply one rollover's delta to the user's live graph.

        Called under the shard lock, after ``closed`` has been appended
        to (and ``evicted`` dropped from) the session deque.  Returns
        the fresh ``(qrp, masks)`` cache entry.  Anything the
        incremental path refuses (:class:`StaleEvictionError`) falls
        back to an explicit full build from the authoritative deque —
        counted in ``graph_rebuilds``, so fallback storms surface in
        ``/stats`` instead of hiding as silent O(history) work.
        """
        maintainer = self._graphs
        gstate = state.graph
        try:
            if gstate is None or gstate.maintainer is not maintainer:
                # lazy materialisation: user predates the attach or was
                # restored from a snapshot (graphs are derived, never
                # persisted); the canonical build over the held deque
                # is identical to what the deltas would have produced
                gstate = maintainer.build_state(state.sessions)
                shard.graph_rebuilds += 1
            else:
                if evicted is not None:
                    maintainer.evict_session(gstate, evicted)
                    shard.graph_evictions += 1
                maintainer.append_session(gstate, closed)
                shard.graph_updates += 1
        except StaleEvictionError:
            gstate = maintainer.build_state(state.sessions)
            shard.graph_rebuilds += 1
        state.graph = gstate
        return _graph_entry(gstate)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, event: CheckinEvent) -> AppendResult:
        """Ingest one check-in; returns what changed.

        Rolls the open session when the event arrives ``>= gap_hours``
        after the previous one (the paper's Δt rule) or when the open
        session is full (``forced_roll``).  Either way the triggering
        event seeds the new open session, so a known user always has a
        non-empty prediction prefix.
        """
        shard = self._shard_of(event.user_id)
        config = self.config
        with shard.lock:
            state = shard.users.get(event.user_id)
            if state is None:
                state = _UserState(event.user_id, config.max_sessions)
                if self._graphs is not None:
                    # brand-new users track incrementally from session
                    # zero; only attach-time pre-existing / restored
                    # users pay one lazy materialisation build
                    state.graph = self._graphs.new_state()
                shard.users[event.user_id] = state
            elif event.timestamp < state.last_timestamp:
                raise ValueError(
                    f"out-of-order check-in for user {event.user_id}: "
                    f"{event.timestamp} arrives after {state.last_timestamp}; "
                    "per-user events must be time-ordered"
                )
            rolled = forced = False
            if state.open_visits:
                if event.timestamp - state.last_timestamp >= config.gap_hours:
                    rolled = True
                elif len(state.open_visits) >= config.max_session_visits:
                    rolled = forced = True
            state.state_version += 1
            invalidated = new_key = graph_entry = None
            if rolled:
                # deque maxlen evicts the oldest completed session for
                # us; both the append and the eviction change history,
                # and one history_version bump covers both
                evicted = (
                    state.sessions[0]
                    if len(state.sessions) == config.max_sessions
                    else None
                )
                if evicted is None:
                    shard.held_sessions += 1  # else the eviction nets out
                shard.open_visits -= len(state.open_visits)
                closed = Trajectory(user_id=state.user_id, visits=state.open_visits)
                state.sessions.append(closed)
                state.open_visits = []
                invalidated = stream_history_key(state.user_id, state.history_version)
                state.history_version = state.state_version
                new_key = stream_history_key(state.user_id, state.history_version)
                if self._graphs is not None:
                    graph_entry = self._advance_graph(shard, state, closed, evicted)
            state.open_visits.append(Visit(poi_id=event.poi_id, timestamp=event.timestamp))
            state.last_timestamp = event.timestamp
            shard.events += 1
            shard.open_visits += 1
            if rolled:
                shard.rollovers += 1
            if forced:
                shard.forced_rolls += 1
            return AppendResult(
                user_id=event.user_id,
                state_version=state.state_version,
                session_rolled=rolled,
                forced_roll=forced,
                session_length=len(state.open_visits),
                num_sessions=len(state.sessions),
                invalidated_key=invalidated,
                history_key=new_key,
                graph_entry=graph_entry,
            )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def snapshot(self, user_id: int) -> UserSnapshot:
        """Consistent copy of one user's state; ``KeyError`` if unknown."""
        shard = self._shard_of(user_id)
        with shard.lock:
            state = shard.users.get(user_id)
            if state is None:
                raise KeyError(f"no state for user {user_id}")
            return UserSnapshot(
                user_id=user_id,
                history=list(state.sessions),
                prefix=list(state.open_visits),
                state_version=state.state_version,
                history_version=state.history_version,
                last_timestamp=state.last_timestamp,
                gap_hours=self.config.gap_hours,
                max_session_visits=self.config.max_session_visits,
                graph=None if state.graph is None else _graph_entry(state.graph),
            )

    def get_snapshot(self, user_id: int) -> Optional[UserSnapshot]:
        """:meth:`snapshot`, but ``None`` for unknown users."""
        try:
            return self.snapshot(user_id)
        except KeyError:
            return None

    def sample_for(self, user_id: int, target: Optional[Visit] = None) -> PredictionSample:
        """The user's stored state as a prediction sample.

        This is the history-less serving path: ``POST /predict
        {"user_id": ...}`` resolves through here before batching.
        Raises ``KeyError`` for users the store has never seen.
        """
        return self.snapshot(user_id).sample(target=target)

    def state_version(self, user_id: int) -> int:
        """Current version token (0 for unknown users).

        Reads the counter directly under the shard lock — no state
        copies — so it is cheap enough for optimistic cache probes.
        """
        shard = self._shard_of(user_id)
        with shard.lock:
            state = shard.users.get(user_id)
            return 0 if state is None else state.state_version

    # ------------------------------------------------------------------
    # persistence hooks (repro.cluster snapshots)
    # ------------------------------------------------------------------
    def export_users(self) -> List[Dict]:
        """Plain-data dump of every user's state, sorted by user id.

        The snapshot writer's input: each entry carries the completed
        sessions, the open prefix, and the exact version counters, so a
        :meth:`restore_user` round trip is lossless — replaying the
        event-log tail on the restored store reproduces the same
        ``state_version`` sequence the original store would have seen.
        Per-shard consistency comes from the shard locks; callers that
        need a *store-wide* consistent cut (the durable worker) must
        quiesce appends first, which the worker's single-threaded data
        loop gives for free.
        """
        out: List[Dict] = []
        for shard in self._shards:
            with shard.lock:
                for state in shard.users.values():
                    out.append(
                        {
                            "user_id": state.user_id,
                            "sessions": [
                                [(v.poi_id, v.timestamp) for v in t.visits]
                                for t in state.sessions
                            ],
                            "open": [(v.poi_id, v.timestamp) for v in state.open_visits],
                            "state_version": state.state_version,
                            "history_version": state.history_version,
                            "last_timestamp": state.last_timestamp,
                        }
                    )
        out.sort(key=lambda entry: entry["user_id"])
        return out

    def restore_user(
        self,
        user_id: int,
        sessions: List[List[Tuple[int, float]]],
        open_visits: List[Tuple[int, float]],
        state_version: int,
        history_version: int,
        last_timestamp: float,
    ) -> None:
        """Re-insert one exported user (snapshot recovery).

        Counters and occupancy gauges are restored exactly, so a
        recovered store is indistinguishable from one that ingested the
        same events live.  Raises ``ValueError`` if the user already has
        state — recovery must run before any live traffic.
        """
        shard = self._shard_of(user_id)
        with shard.lock:
            if user_id in shard.users:
                raise ValueError(f"cannot restore user {user_id}: state already present")
            state = _UserState(user_id, self.config.max_sessions)
            for visits in sessions:
                state.sessions.append(
                    Trajectory(
                        user_id=user_id,
                        visits=[Visit(poi_id=int(p), timestamp=float(t)) for p, t in visits],
                    )
                )
            state.open_visits = [
                Visit(poi_id=int(p), timestamp=float(t)) for p, t in open_visits
            ]
            state.state_version = int(state_version)
            state.history_version = int(history_version)
            state.last_timestamp = float(last_timestamp)
            shard.users[user_id] = state
            shard.open_visits += len(state.open_visits)
            shard.held_sessions += len(state.sessions)

    def restore_counters(
        self,
        events: int = 0,
        rollovers: int = 0,
        forced_rolls: int = 0,
        graph_updates: int = 0,
        graph_evictions: int = 0,
        graph_rebuilds: int = 0,
    ) -> None:
        """Carry lifetime counters across a snapshot/recovery cycle.

        The totals land on shard 0 — :meth:`stats` only ever reports
        the sum, and per-shard attribution of pre-crash events is not
        reconstructible (nor needed) after a restore.
        """
        shard = self._shards[0]
        with shard.lock:
            shard.events += events
            shard.rollovers += rollovers
            shard.forced_rolls += forced_rolls
            shard.graph_updates += graph_updates
            shard.graph_evictions += graph_evictions
            shard.graph_rebuilds += graph_rebuilds

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard.users) for shard in self._shards)

    def users(self) -> List[int]:
        seen: List[int] = []
        for shard in self._shards:
            with shard.lock:
                seen.extend(shard.users)
        return sorted(seen)

    def strata_counts(self) -> Dict[str, int]:
        """Cold-start occupancy: users with 0 / 1 / 2+ completed sessions.

        The population denominator behind the quality monitor's
        per-stratum accuracy cuts (``GET /quality``).  O(users) — a
        report-path walk, deliberately kept out of :meth:`stats` so the
        hot /stats poll stays O(shards).
        """
        counts = {"0": 0, "1": 0, "2+": 0}
        for shard in self._shards:
            with shard.lock:
                for state in shard.users.values():
                    sessions = len(state.sessions)
                    counts["0" if sessions == 0 else "1" if sessions == 1 else "2+"] += 1
        return counts

    def stats(self) -> Dict:
        """JSON-ready roll-up across shards (surfaces in ``/stats``).

        O(shards): occupancy is maintained incrementally on append, so
        polling /stats never walks the user maps under their locks.
        """
        users = events = rollovers = forced = open_visits = held = 0
        graph_updates = graph_evictions = graph_rebuilds = 0
        for shard in self._shards:
            with shard.lock:
                users += len(shard.users)
                events += shard.events
                rollovers += shard.rollovers
                forced += shard.forced_rolls
                open_visits += shard.open_visits
                held += shard.held_sessions
                graph_updates += shard.graph_updates
                graph_evictions += shard.graph_evictions
                graph_rebuilds += shard.graph_rebuilds
        return {
            "shards": len(self._shards),
            "users": users,
            "events": events,
            "sessions_rolled": rollovers,
            "forced_rolls": forced,
            "sessions_held": held,
            "open_visits": open_visits,
            "graph_updates": graph_updates,
            "graph_evictions": graph_evictions,
            "graph_rebuilds": graph_rebuilds,
        }
