"""Synthetic road network generation (the OpenStreetMap substitute).

Two styles mirror the paper's two dataset families:

* ``urban`` — a perturbed arterial grid with density that increases
  toward the downtown core(s), plus diagonal avenues, mimicking NYC /
  Tokyo street fabric.
* ``state`` — sparse inter-city highways connecting dense local grids
  around each city centre, mimicking Weeplaces' state-wide coverage.

Only connectivity and spatial layout matter downstream (tile-to-tile
road adjacency and rendered road pixels), not traffic semantics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geo import BoundingBox
from .network import RoadNetwork


def generate_urban_network(
    bbox: BoundingBox,
    rng: np.random.Generator,
    n_rows: int = 14,
    n_cols: int = 14,
    jitter: float = 0.15,
    drop_rate: float = 0.08,
    centers: Optional[Sequence[Tuple[float, float]]] = None,
) -> RoadNetwork:
    """Perturbed arterial grid with denser fabric near the centre."""
    net = RoadNetwork()
    xs = np.linspace(bbox.min_x, bbox.max_x, n_cols)
    ys = np.linspace(bbox.min_y, bbox.max_y, n_rows)
    dx = (xs[1] - xs[0]) if n_cols > 1 else bbox.width
    dy = (ys[1] - ys[0]) if n_rows > 1 else bbox.height
    node_of = {}
    nid = 0
    for r, y in enumerate(ys):
        for c, x in enumerate(xs):
            px = x + rng.normal(0.0, jitter * dx)
            py = y + rng.normal(0.0, jitter * dy)
            px, py = bbox.clamp(px, py)
            net.add_intersection(nid, px, py)
            node_of[(r, c)] = nid
            nid += 1
    for r in range(n_rows):
        for c in range(n_cols):
            if c + 1 < n_cols and rng.random() > drop_rate:
                net.add_road(node_of[(r, c)], node_of[(r, c + 1)])
            if r + 1 < n_rows and rng.random() > drop_rate:
                net.add_road(node_of[(r, c)], node_of[(r + 1, c)])
    # diagonal avenues through the centre(s)
    centers = centers or [bbox.center]
    for cx, cy in centers:
        _add_diagonal(net, node_of, n_rows, n_cols, rng)
    return net


def _add_diagonal(net: RoadNetwork, node_of, n_rows: int, n_cols: int, rng) -> None:
    r = int(rng.integers(0, max(1, n_rows - 1)))
    c = 0
    while r + 1 < n_rows and c + 1 < n_cols:
        a = node_of[(r, c)]
        b = node_of[(r + 1, c + 1)]
        net.add_road(a, b, kind="avenue")
        r, c = r + 1, c + 1


def generate_state_network(
    bbox: BoundingBox,
    rng: np.random.Generator,
    city_centers: Sequence[Tuple[float, float]],
    local_grid: int = 5,
    local_extent: float = 0.08,
) -> RoadNetwork:
    """Highways between cities plus a small dense grid inside each city.

    ``local_extent`` is the city radius as a fraction of the bbox width.
    """
    if not city_centers:
        raise ValueError("state network needs at least one city centre")
    net = RoadNetwork()
    nid = 0
    city_hubs: List[int] = []
    extent = local_extent * bbox.width
    for cx, cy in city_centers:
        first_local = nid
        node_of = {}
        xs = np.linspace(cx - extent, cx + extent, local_grid)
        ys = np.linspace(cy - extent, cy + extent, local_grid)
        for r, y in enumerate(ys):
            for c, x in enumerate(xs):
                px, py = bbox.clamp(x + rng.normal(0, extent * 0.05), y + rng.normal(0, extent * 0.05))
                net.add_intersection(nid, px, py)
                node_of[(r, c)] = nid
                nid += 1
        for r in range(local_grid):
            for c in range(local_grid):
                if c + 1 < local_grid:
                    net.add_road(node_of[(r, c)], node_of[(r, c + 1)])
                if r + 1 < local_grid:
                    net.add_road(node_of[(r, c)], node_of[(r + 1, c)])
        city_hubs.append(first_local + (local_grid // 2) * local_grid + local_grid // 2)
    # chain cities along a minimum-ish spanning path: connect each city to
    # its nearest already-connected neighbour, with waypoints so highways
    # traverse intermediate tiles.
    connected = [0]
    for i in range(1, len(city_hubs)):
        xi, yi = net.position(city_hubs[i])
        nearest = min(
            connected,
            key=lambda j: (net.position(city_hubs[j])[0] - xi) ** 2
            + (net.position(city_hubs[j])[1] - yi) ** 2,
        )
        _add_highway(net, city_hubs[i], city_hubs[nearest], rng, nid)
        nid = net.num_intersections
        connected.append(i)
    return net


def _add_highway(net: RoadNetwork, a: int, b: int, rng, next_id: int, waypoints: int = 3) -> None:
    xa, ya = net.position(a)
    xb, yb = net.position(b)
    previous = a
    for w in range(1, waypoints + 1):
        t = w / (waypoints + 1)
        wx = xa + t * (xb - xa) + rng.normal(0, 0.01 * abs(xb - xa) + 1e-9)
        wy = ya + t * (yb - ya) + rng.normal(0, 0.01 * abs(yb - ya) + 1e-9)
        net.add_intersection(next_id, wx, wy)
        net.add_road(previous, next_id, kind="highway")
        previous = next_id
        next_id += 1
    net.add_road(previous, b, kind="highway")
