"""ArcFace-style additive angular-margin losses (paper Eq. 8).

Both prediction steps use

    loss = -log( exp(s cos(theta_t + m)) /
                 (exp(s cos(theta_t + m)) + sum_{c != t} exp(s cos theta_c)) )

where theta_c is the angle between the fused output vector and
candidate c's embedding.  The margin m pushes the output toward the
target embedding while pushing other candidates away.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, l2_normalize, log_softmax, masked_fill

NEG_INF = -1e9


def cosine_scores(output: Tensor, candidates: Tensor) -> Tensor:
    """cos(theta) between one output vector and each candidate row."""
    normed_out = l2_normalize(output.reshape(1, -1), axis=-1)
    normed_cand = l2_normalize(candidates, axis=-1)
    return (normed_cand @ normed_out.reshape(-1, 1)).reshape(-1)


def arcface_loss(
    output: Tensor,
    candidates: Tensor,
    target_index: int,
    scale: float = 16.0,
    margin: float = 0.2,
) -> Tensor:
    """Eq. 8 for one sample.

    ``candidates`` has shape ``(C, dim)`` and must include the target
    row at ``target_index``.
    """
    n = candidates.shape[0]
    if not 0 <= target_index < n:
        raise IndexError("target_index outside candidate set")
    cos = cosine_scores(output, candidates)  # (C,)
    cos = cos.clip(-1.0 + 1e-7, 1.0 - 1e-7)
    target_cos = cos[target_index]
    # cos(theta + m) = cos theta cos m - sin theta sin m
    sin_target = (1.0 - target_cos * target_cos).sqrt()
    margined = target_cos * float(np.cos(margin)) - sin_target * float(np.sin(margin))
    one_hot = np.zeros(n)
    one_hot[target_index] = 1.0
    hot = Tensor(one_hot)
    logits = (cos * (1.0 - hot) + margined * hot) * scale
    log_probs = log_softmax(logits.reshape(1, -1), axis=-1)
    return -log_probs[0, target_index]


def arcface_loss_batch(
    outputs: Tensor,
    candidates: Tensor,
    target_positions: np.ndarray,
    scale: float = 16.0,
    margin: float = 0.2,
    valid: Optional[np.ndarray] = None,
) -> Tensor:
    """Eq. 8 for a whole batch at once; returns the ``(B,)`` loss vector.

    ``outputs`` is ``(B, dim)``; ``candidates`` is either a shared
    ``(C, dim)`` table (step one: every sample ranks the same leaf
    tiles) or a right-padded per-sample ``(B, C_max, dim)`` block (step
    two: candidate sets differ per sample).  ``target_positions[b]``
    indexes sample b's target row inside its candidate set and must
    point at a valid row.  ``valid`` is the boolean ``(B, C_max)``
    validity mask for the padded case; padded positions are filled
    with ``NEG_INF`` *after* scaling, so — exactly like padded
    attention keys — they contribute an exact zero to the softmax and
    receive no gradient.

    Matches summing :func:`arcface_loss` over the batch up to
    floating-point accumulation order (BLAS kernels for the batched
    matmul shapes group sums differently than the per-sample ones).
    """
    batch = outputs.shape[0]
    target_positions = np.asarray(target_positions, dtype=np.int64)
    normed_out = l2_normalize(outputs, axis=-1)
    normed_cand = l2_normalize(candidates, axis=-1)
    if candidates.ndim == 2:
        n = candidates.shape[0]
        cos = normed_out @ normed_cand.transpose()  # (B, C)
    else:
        n = candidates.shape[1]
        # batched mat-vec: (B, C_max, dim) @ (B, dim, 1) -> (B, C_max)
        cos = (normed_cand @ normed_out.reshape(batch, -1, 1)).reshape(batch, n)
    if not ((0 <= target_positions) & (target_positions < n)).all():
        raise IndexError("target_positions outside candidate set")
    cos = cos.clip(-1.0 + 1e-7, 1.0 - 1e-7)
    rows = np.arange(batch)
    target_cos = cos[rows, target_positions]  # (B,)
    sin_target = (1.0 - target_cos * target_cos).sqrt()
    margined = target_cos * float(np.cos(margin)) - sin_target * float(np.sin(margin))
    one_hot = np.zeros((batch, n))
    one_hot[rows, target_positions] = 1.0
    hot = Tensor(one_hot)
    logits = (cos * (1.0 - hot) + margined.reshape(batch, 1) * hot) * scale
    if valid is not None:
        logits = masked_fill(logits, ~np.asarray(valid, dtype=bool), NEG_INF)
    log_probs = log_softmax(logits, axis=-1)
    return -log_probs[rows, target_positions]


def combined_loss(tile_loss: Tensor, poi_loss: Tensor, beta: float = 1.0) -> Tensor:
    """Total objective: beta * loss_tau + loss_p."""
    return tile_loss * beta + poi_loss
