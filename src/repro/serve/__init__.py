"""``repro.serve`` — the unified inference and serving subsystem.

Entry points
------------
* :class:`PredictorResult` / :class:`PredictorProtocol` /
  :class:`PredictorBase` — the one inference contract TSPN-RA and all
  baselines conform to.  Rank semantics: an absent target ranks
  ``num_pois + 1`` (past the whole POI universe), never just past a
  restricted candidate list;
* :func:`save_checkpoint` / :func:`load_checkpoint` — persist a
  trained model (config + weights + dataset recipe) and reload it
  without retraining (:func:`read_checkpoint` is the weights-only
  read used by hot reload);
* :class:`Predictor` — the serving facade: cached shared embeddings,
  LRU-bounded per-user graph cache, and *vectorised* batched
  inference: every request batch is right-padded, masked, and encoded
  as one ``(batch, seq, dim)`` pass through the model's
  ``predict_batch`` (TSPN-RA's batched fusion/attention, the
  baselines' ``score_batch``), with per-batch p50/p95/p99 latency in
  :class:`ServeStats`;
* :class:`InferenceServer` / :class:`ServerConfig` — the async
  serving runtime: individual requests from many concurrent clients
  coalesce through a :class:`MicroBatchScheduler` (flush on
  ``max_batch_size`` or ``max_wait_ms``), execute on a worker-thread
  pool of Predictor replicas sharing one checkpoint's weights, with
  bounded-queue admission control (:class:`QueueFullError`), graceful
  draining shutdown, and hot weight reload;
* :class:`HttpFrontend` — the stdlib HTTP/JSON front door
  (``/predict``, ``/recommend``, ``/healthz``, ``/stats``,
  ``/reload``); request/response codecs are
  :func:`sample_from_json` / :func:`result_to_json`;
* :func:`compare_throughput` — uncached vs cached-per-sample vs
  batched vs compiled serving microbench (the batched leg reports
  latency percentiles);
* :class:`PlanCache` — compiled inference plans (trace-once, graph-free
  replay) keyed ``(weights_version, dtype, shape bucket)``, shared
  pool-wide; ``Predictor(compile=False)`` / ``ServerConfig(compile=
  False)`` are the eager escape hatches.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    LoadedCheckpoint,
    apply_extra_state,
    build_dataset_from_meta,
    build_model_from_meta,
    load_checkpoint,
    read_checkpoint,
    save_checkpoint,
)
from .plans import PlanCache, supports_plans
from .predictor import (
    Predictor,
    ServeStats,
    compare_throughput,
    interpolated_percentile,
)
from .protocol import (
    PredictorBase,
    PredictorProtocol,
    PredictorResult,
    rank_of_target,
    result_to_json,
    sample_from_json,
    serve_history_key,
)
from .scheduler import (
    MicroBatchScheduler,
    QueueFullError,
    SchedulerClosedError,
    ServeRequest,
)
from .server import HttpFrontend, InferenceServer, ServerConfig

__all__ = [
    "CHECKPOINT_FORMAT",
    "HttpFrontend",
    "apply_extra_state",
    "InferenceServer",
    "LoadedCheckpoint",
    "MicroBatchScheduler",
    "PlanCache",
    "Predictor",
    "PredictorBase",
    "PredictorProtocol",
    "PredictorResult",
    "QueueFullError",
    "SchedulerClosedError",
    "ServeRequest",
    "ServeStats",
    "ServerConfig",
    "compare_throughput",
    "interpolated_percentile",
    "build_dataset_from_meta",
    "build_model_from_meta",
    "load_checkpoint",
    "rank_of_target",
    "read_checkpoint",
    "result_to_json",
    "sample_from_json",
    "save_checkpoint",
    "serve_history_key",
    "supports_plans",
]
