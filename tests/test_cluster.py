"""Multi-process cluster serving: routing, parity, crash recovery, HTTP.

The module-scoped cluster (2 shard subprocesses over a tiny NYC
checkpoint) is compared against a single-process control
``InferenceServer`` fed the identical event tape: same acks, same
``state_version``s, same ranked lists.  The kill-and-recover tests
SIGKILL a shard mid-ingest and assert the restarted process serves
exactly the state the control never lost.

Worker processes spawn (~seconds each): everything that can share the
module cluster does, and the multi-cycle crash loop is marked slow.
"""

import json
import os
import signal
import urllib.error
import urllib.request

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterHttpFrontend,
    ClusterRouter,
    list_segments,
    list_snapshots,
)
from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset
from repro.serve import InferenceServer, load_checkpoint, save_checkpoint
from repro.stream import StoreConfig, UserStateStore
from repro.stream.events import events_from_checkins
from repro.utils import spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)


@pytest.fixture(scope="module")
def checkpoint(tiny_dataset, tmp_path_factory):
    model = TSPNRA.from_dataset(tiny_dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    path = tmp_path_factory.mktemp("ckpt") / "tiny.npz"
    return save_checkpoint(model, path, dataset=tiny_dataset)


@pytest.fixture(scope="module")
def event_tape(tiny_dataset):
    return [
        {"user_id": e.user_id, "poi_id": e.poi_id, "timestamp": e.timestamp}
        for e in events_from_checkins(tiny_dataset.checkins)
    ]


def small_cluster_config(**overrides):
    base = dict(
        num_shards=2,
        snapshot_interval=50,
        segment_max_records=64,
        heartbeat_interval_s=0.5,
        heartbeat_timeout_s=5.0,
        auto_restart=False,  # tests drive restarts explicitly
    )
    base.update(overrides)
    return ClusterConfig(**base)


@pytest.fixture(scope="module")
def cluster(checkpoint, event_tape, tmp_path_factory):
    """A 2-shard cluster with the full event tape already ingested."""
    router = ClusterRouter(
        checkpoint,
        tmp_path_factory.mktemp("persist"),
        config=small_cluster_config(),
    )
    router.start()
    outcome = router.stream_events(event_tape, predict_every=25)
    assert outcome["rejected"] == 0
    yield router
    router.stop()


@pytest.fixture(scope="module")
def control(checkpoint, event_tape):
    """Single-process replica fed the same tape (never crashes)."""
    loaded = load_checkpoint(checkpoint)
    server = InferenceServer(
        loaded.model,
        dataset=loaded.dataset,
        state_store=UserStateStore(StoreConfig(num_shards=4)),
    )
    server.start()
    from repro.stream.events import event_from_json

    for payload in event_tape:
        server.checkin(event_from_json(payload))
    yield server
    server.stop()


@pytest.fixture(scope="module")
def frontend(cluster):
    front = ClusterHttpFrontend(cluster, port=0).start()
    yield front
    front.stop()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


# ----------------------------------------------------------------------
# cluster vs single-process parity
# ----------------------------------------------------------------------
class TestClusterParity:
    def test_state_versions_match_control(self, cluster, control):
        versions = cluster.user_versions()
        store = control.state_store
        assert sorted(int(u) for u in versions) == store.users()
        for user in store.users():
            assert versions[str(user)]["state_version"] == store.state_version(user)
            assert (
                versions[str(user)]["history_version"]
                == store.snapshot(user).history_version
            )

    def test_ranked_lists_match_control(self, cluster, control):
        for user in control.state_store.users():
            reply = cluster.predict_user(user, k=10)
            assert reply["ok"], reply
            expected = control.predict_user(user)
            assert reply["result"]["top_pois"] == expected.ranked_pois[:10]

    def test_users_partition_across_shards(self, cluster, control):
        users = control.state_store.users()
        stats = cluster.stats()["cluster"]
        per_shard = [s["users"] for s in stats["shards"]]
        assert sum(per_shard) == len(users)
        assert all(count > 0 for count in per_shard)  # both shards used

    def test_out_of_order_checkin_is_409(self, cluster, event_tape):
        stale = dict(event_tape[0])
        stale["timestamp"] = 0.0
        reply = cluster.checkin(stale)
        assert not reply["ok"] and reply["code"] == 409

    def test_unknown_user_is_404(self, cluster):
        reply = cluster.predict_user(99999)
        assert not reply["ok"] and reply["code"] == 404

    def test_unroutable_checkin_is_400(self, cluster):
        reply = cluster.checkin({"poi_id": 1, "timestamp": 1.0})
        assert not reply["ok"] and reply["code"] == 400


# ----------------------------------------------------------------------
# durable single-process serving path
# ----------------------------------------------------------------------
class TestDurableServingPath:
    def test_checkin_rolls_interval_snapshots(self, checkpoint, event_tape, tmp_path):
        """--snapshot-interval must fire during serving, not only at
        shutdown, or the WAL grows without bound and restart replays
        the whole log."""
        from repro.cluster import DurableIngest, EventLogWriter
        from repro.stream.events import event_from_json

        # explicit rng: the loaded skeleton's init draws are overwritten
        # by the checkpoint weights, and letting them hit the process
        # default generator would shift dropout streams of later
        # training tests
        loaded = load_checkpoint(checkpoint, rng=spawn(42))
        log = EventLogWriter(tmp_path)
        ingest = DurableIngest(
            store=UserStateStore(StoreConfig(num_shards=4)),
            log=log,
            snapshot_interval=10,
        )
        server = InferenceServer(loaded.model, dataset=loaded.dataset, ingest=ingest)
        server.start()
        try:
            for payload in event_tape[:25]:
                server.checkin(event_from_json(payload))
        finally:
            server.stop()
            log.close()
        assert ingest.snapshots_taken == 2  # at events 10 and 20, mid-serving
        assert list_snapshots(tmp_path)


class TestShardHandleGenerations:
    def test_stale_mark_dead_is_ignored(self):
        """A transport failure observed on a pre-restart conn must not
        stamp the freshly restarted shard dead."""
        from repro.cluster import ShardHandle, WorkerSpec

        handle = ShardHandle(
            WorkerSpec(
                shard_index=0,
                persist_dir="unused",
                checkpoint_meta={},
                weights_manifest={},
            )
        )
        stale = handle._generation
        handle._generation += 1  # what a restart's start() does
        handle._mark_dead("OSError: broken pipe", stale)
        assert handle.dead_reason is None  # stale failure ignored
        handle._mark_dead("timeout on 'predict'", handle._generation)
        assert handle.dead_reason is not None  # current-generation applies
        handle.dead_reason = None
        handle._mark_dead("killed")  # untagged (kill/shutdown) always applies
        assert handle.dead_reason == "killed"


# ----------------------------------------------------------------------
# kill-and-recover
# ----------------------------------------------------------------------
def sigkill(shard):
    """Die like a real crash: no atexit, no final snapshot."""
    os.kill(shard.pid, signal.SIGKILL)
    shard._process.join(10.0)
    shard._mark_dead("killed by test")


class TestKillAndRecover:
    def test_sigkill_mid_ingest_recovers_exact_state(
        self, checkpoint, event_tape, tmp_path
    ):
        config = small_cluster_config(snapshot_interval=40)
        router = ClusterRouter(checkpoint, tmp_path, config=config)
        router.start()
        try:
            half = len(event_tape) // 2
            router.stream_events(event_tape[:half], predict_every=20)
            versions_before = router.user_versions()
            ranked_before = {
                user: router.predict_user(int(user), k=10)["result"]["top_pois"]
                for user in versions_before
            }

            victim = router.shards[1]
            assert victim.spec.persist_dir  # it has durable state to lose
            sigkill(victim)
            ready = router.restart_shard(1)
            assert ready["ok"]
            recovery = ready["recovery"]
            assert recovery["last_seq"] > 0

            # every user's version and ranked list survived the crash
            assert router.user_versions() == versions_before
            for user, expected in ranked_before.items():
                reply = router.predict_user(int(user), k=10)
                assert reply["ok"], reply
                assert reply["result"]["top_pois"] == expected

            # the recovered shard keeps ingesting where it left off
            outcome = router.stream_events(event_tape[half:], predict_every=20)
            assert outcome["rejected"] == 0
            assert router.healthz()["status"] == "ok"
            assert router.shards[1].restarts == 1
        finally:
            router.stop()

    def test_recovered_shard_matches_never_crashed_control(
        self, checkpoint, event_tape, tmp_path
    ):
        """Full acceptance shape: crash + restart == control that never died."""
        config = small_cluster_config(snapshot_interval=40)
        router = ClusterRouter(checkpoint, tmp_path, config=config)
        router.start()
        loaded = load_checkpoint(checkpoint)
        control = InferenceServer(
            loaded.model,
            dataset=loaded.dataset,
            state_store=UserStateStore(StoreConfig(num_shards=4)),
        )
        control.start()
        try:
            from repro.stream.events import event_from_json

            # The raw tape barely crosses the 72h gap, so extend it with
            # gap-heavy rounds: every user rolls sessions before AND
            # after the crash, exercising the incremental graphs on
            # both sides of the recovery boundary.
            last = {}
            poi = {}
            for payload in event_tape:
                last[payload["user_id"]] = payload["timestamp"]
                poi.setdefault(payload["user_id"], payload["poi_id"])
            horizon = max(last.values())
            extra_rounds = [
                [
                    {
                        "user_id": user,
                        "poi_id": poi[user],
                        "timestamp": horizon + k * 100.0 * 3600.0,
                    }
                    for user in sorted(last)
                ]
                for k in (1, 2, 3, 4)
            ]
            pre_crash = event_tape + extra_rounds[0] + extra_rounds[1]
            post_crash = extra_rounds[2] + extra_rounds[3]

            router.stream_events(pre_crash)
            # the crash must land mid-session, with incrementally
            # maintained graphs live on the victim — otherwise this
            # proves nothing about recovering open state
            before = router.shards[0].control_stats()["stats"]["stream"]
            assert before["graph_updates"] > 0, "no live incremental graphs"
            assert before["graph_rebuilds"] == 0
            assert before["open_visits"] > 0, "crash did not land mid-session"
            sigkill(router.shards[0])
            router.restart_shard(0)
            router.stream_events(post_crash)
            for payload in pre_crash + post_crash:
                control.checkin(event_from_json(payload))

            # the restarted shard resumed incremental maintenance:
            # post-recovery rollovers are O(session) updates pushed into
            # the serving caches, with at most one counted lazy rebuild
            # per user on its first post-restart roll (log replay runs
            # before the maintainer attaches, so graphs re-materialise
            # lazily rather than being rebuilt per replayed event)
            after = router.shards[0].control_stats()["stats"]["stream"]
            assert after["graph_updates"] > 0
            assert after["graph_pushes"] > 0
            assert 1 <= after["graph_rebuilds"] <= after["users"]

            versions = router.user_versions()
            for user in control.state_store.users():
                assert (
                    versions[str(user)]["state_version"]
                    == control.state_store.state_version(user)
                )
                reply = router.predict_user(user, k=10)
                assert reply["ok"], reply
                assert (
                    reply["result"]["top_pois"]
                    == control.predict_user(user).ranked_pois[:10]
                )
        finally:
            control.stop()
            router.stop()

    def test_snapshots_and_segments_on_disk(self, checkpoint, event_tape, tmp_path):
        config = small_cluster_config(snapshot_interval=20)
        router = ClusterRouter(checkpoint, tmp_path, config=config)
        router.start()
        try:
            router.stream_events(event_tape)
            names = router.snapshot_all()
            assert all(name for name in names)
            for index in range(2):
                shard_dir = tmp_path / f"shard-{index:02d}"
                assert list_snapshots(shard_dir), "snapshot missing on disk"
                assert list_segments(shard_dir) is not None
        finally:
            router.stop()

    @pytest.mark.slow
    def test_repeated_crash_cycles_with_supervisor(
        self, checkpoint, event_tape, tmp_path
    ):
        """Crash both shards across cycles; the supervisor auto-restarts."""
        import time

        config = small_cluster_config(
            snapshot_interval=30,
            auto_restart=True,
            heartbeat_interval_s=0.3,
        )
        router = ClusterRouter(checkpoint, tmp_path, config=config)
        router.start()
        try:
            third = len(event_tape) // 3
            router.stream_events(event_tape[:third])
            for cycle, index in enumerate((1, 0)):
                versions_before = router.user_versions()
                sigkill(router.shards[index])
                deadline = time.time() + 30.0
                while time.time() < deadline:
                    shard = router.shards[index]
                    if shard.alive and shard.ping(timeout=2.0):
                        break
                    time.sleep(0.2)
                else:
                    pytest.fail(f"supervisor never recovered shard {index}")
                assert router.user_versions() == versions_before
                start = (cycle + 1) * third
                outcome = router.stream_events(
                    event_tape[start : start + third]
                )
                assert outcome["rejected"] == 0
            assert router.restarts_total == 2
            assert router.healthz()["status"] == "ok"
        finally:
            router.stop()


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class TestClusterHttp:
    def test_healthz_lists_every_shard(self, frontend):
        status, body = _get(frontend.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert [s["shard"] for s in body["shards"]] == [0, 1]
        assert all(s["status"] == "ok" for s in body["shards"])

    def test_stats_has_cluster_section(self, frontend, event_tape):
        status, body = _get(frontend.url + "/stats")
        assert status == 200
        cluster = body["cluster"]
        assert cluster["num_shards"] == 2
        totals = cluster["totals"]
        assert totals["events"] >= len(event_tape)
        assert {"queue_depth", "in_flight", "users"} <= set(totals)
        for shard in cluster["shards"]:
            assert {"queue_depth", "in_flight", "users", "durability"} <= set(shard)
            assert shard["durability"]["last_seq"] > 0

    def test_checkin_conflict_propagates_as_409(self, frontend, event_tape):
        stale = dict(event_tape[0])
        stale["timestamp"] = 0.0
        status, body = _post(frontend.url + "/checkin", stale)
        assert status == 409
        assert "error" in body

    def test_checkin_validation_is_400(self, frontend):
        status, _ = _post(frontend.url + "/checkin", {"user_id": 1})
        assert status == 400
        status, _ = _post(
            frontend.url + "/checkin",
            {"user_id": 1, "poi_id": 10**9, "timestamp": 1e9},
        )
        assert status == 400

    def test_historyless_predict_roundtrip(self, frontend, cluster, control):
        user = control.state_store.users()[0]
        status, body = _post(frontend.url + "/predict", {"user_id": user, "k": 5})
        assert status == 200
        assert body["top_pois"] == control.predict_user(user).ranked_pois[:5]

    def test_unknown_user_404(self, frontend):
        status, body = _post(frontend.url + "/predict", {"user_id": 424242})
        assert status == 404

    def test_stateless_predict_with_prefix(self, frontend, tiny_dataset):
        user, trajs = next(
            (u, t) for u, t in tiny_dataset.trajectories.items() if len(t) >= 1
        )
        prefix = [
            {"poi_id": v.poi_id, "timestamp": v.timestamp}
            for v in trajs[-1].visits[:3]
        ]
        status, body = _post(
            frontend.url + "/predict", {"user_id": user, "prefix": prefix}
        )
        assert status == 200
        assert len(body["top_pois"]) <= 10

    def test_recommend_shape(self, frontend, control):
        user = control.state_store.users()[0]
        status, body = _post(frontend.url + "/recommend", {"user_id": user, "k": 3})
        assert status == 200
        assert body["user_id"] == user
        assert len(body["recommendations"]) == 3

    def test_reload_is_501(self, frontend):
        status, body = _post(frontend.url + "/reload", {"checkpoint": "x.npz"})
        assert status == 501

    def test_unknown_path_404_and_bad_json_400(self, frontend):
        status, _ = _get(frontend.url + "/nope")
        assert status == 404
        request = urllib.request.Request(
            frontend.url + "/checkin", data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400


# ----------------------------------------------------------------------
# compiled-plan path through the cluster tier
# ----------------------------------------------------------------------
class TestCompiledClusterIdentity:
    """Shard workers inherit the compiled serving path; ranked lists are
    gated bit-identical against an eager (``compile=False``) cluster,
    including across a SIGKILL + recovery of a compiled shard."""

    @pytest.mark.slow
    def test_compiled_matches_eager_through_kill_and_recover(
        self, checkpoint, event_tape, tmp_path
    ):
        config = small_cluster_config(snapshot_interval=40)
        eager_config = small_cluster_config(snapshot_interval=40, compile=False)
        compiled = ClusterRouter(checkpoint, tmp_path / "compiled", config=config)
        eager = ClusterRouter(checkpoint, tmp_path / "eager", config=eager_config)
        compiled.start()
        eager.start()
        try:
            assert all(shard.spec.compile for shard in compiled.shards)
            assert not any(shard.spec.compile for shard in eager.shards)

            half = len(event_tape) // 2
            compiled.stream_events(event_tape[:half])
            eager.stream_events(event_tape[:half])

            users = sorted(int(u) for u in eager.user_versions())
            for user in users:
                got = compiled.predict_user(user, k=10)
                want = eager.predict_user(user, k=10)
                assert got["ok"] and want["ok"]
                assert got["result"]["top_pois"] == want["result"]["top_pois"]

            # crash a compiled shard mid-stream; the recovered worker
            # re-traces its plans and must still match the eager tier
            sigkill(compiled.shards[1])
            assert compiled.restart_shard(1)["ok"]
            compiled.stream_events(event_tape[half:])
            eager.stream_events(event_tape[half:])

            users = sorted(int(u) for u in eager.user_versions())
            for user in users:
                got = compiled.predict_user(user, k=10)
                want = eager.predict_user(user, k=10)
                assert got["ok"] and want["ok"]
                assert got["result"]["top_pois"] == want["result"]["top_pois"]
        finally:
            eager.stop()
            compiled.stop()
