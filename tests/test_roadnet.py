"""Tests for the road network substrate."""

import numpy as np
import pytest

from repro.geo import BoundingBox
from repro.roadnet import (
    RoadNetwork,
    generate_state_network,
    generate_urban_network,
    tile_road_adjacency,
)
from repro.spatial import GridIndex, RegionQuadTree

BOX = BoundingBox(0.0, 0.0, 10.0, 10.0)


class TestRoadNetwork:
    def test_add_and_measure(self):
        net = RoadNetwork()
        net.add_intersection(0, 0.0, 0.0)
        net.add_intersection(1, 3.0, 4.0)
        net.add_road(0, 1)
        assert net.num_intersections == 2
        assert net.num_roads == 1
        assert net.total_length() == pytest.approx(5.0)

    def test_add_road_unknown_node_raises(self):
        net = RoadNetwork()
        net.add_intersection(0, 0, 0)
        with pytest.raises(KeyError):
            net.add_road(0, 99)

    def test_segments_iteration(self):
        net = RoadNetwork()
        net.add_intersection(0, 0, 0)
        net.add_intersection(1, 1, 0)
        net.add_road(0, 1, kind="highway")
        ((a, b, kind),) = list(net.segments())
        assert kind == "highway"

    def test_density_higher_where_roads_are(self):
        net = RoadNetwork()
        for i in range(5):
            net.add_intersection(i, 0.5 + i * 0.1, 0.5)
        for i in range(4):
            net.add_road(i, i + 1)
        dense = net.density_in(BoundingBox(0, 0, 1, 1))
        empty = net.density_in(BoundingBox(9, 9, 10, 10))
        assert dense > empty == 0.0


class TestGenerators:
    def test_urban_network_is_connected_mostly(self):
        net = generate_urban_network(BOX, np.random.default_rng(0))
        assert net.num_intersections > 100
        assert net.largest_component_fraction() > 0.95

    def test_urban_nodes_inside_bbox(self):
        net = generate_urban_network(BOX, np.random.default_rng(1))
        for node in net.graph.nodes:
            x, y = net.position(node)
            assert BOX.contains_closed(x, y)

    def test_state_network_connects_cities(self):
        centers = [(2.0, 2.0), (8.0, 8.0), (2.0, 8.0)]
        net = generate_state_network(BOX, np.random.default_rng(2), centers)
        assert net.largest_component_fraction() == pytest.approx(1.0)

    def test_state_network_requires_cities(self):
        with pytest.raises(ValueError):
            generate_state_network(BOX, np.random.default_rng(0), [])

    def test_state_has_highways(self):
        centers = [(2.0, 2.0), (8.0, 8.0)]
        net = generate_state_network(BOX, np.random.default_rng(3), centers)
        kinds = {kind for _, _, kind in net.segments()}
        assert "highway" in kinds


class TestTileAdjacency:
    def _tree(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0.1, 9.9, size=(120, 2))
        return RegionQuadTree.build(BOX, points, max_depth=4, max_pois=12)

    def test_crossing_road_connects_tiles(self):
        tree = self._tree()
        net = RoadNetwork()
        net.add_intersection(0, 0.5, 5.0)
        net.add_intersection(1, 9.5, 5.0)
        net.add_road(0, 1)
        pairs = tile_road_adjacency(tree, net)
        assert pairs, "a road across the region must connect some tiles"
        leaves = set(tree.leaves())
        for a, b in pairs:
            assert a in leaves and b in leaves
            assert a < b  # canonical ordering

    def test_no_roads_no_adjacency(self):
        tree = self._tree()
        assert tile_road_adjacency(tree, RoadNetwork()) == set()

    def test_adjacent_pairs_share_boundary_or_near(self):
        """Sampled consecutive tiles along a straight road are spatially close."""
        tree = self._tree()
        net = generate_urban_network(BOX, np.random.default_rng(5))
        pairs = tile_road_adjacency(tree, net)
        for a, b in list(pairs)[:20]:
            box_a, box_b = tree.node(a).bbox, tree.node(b).bbox
            gap_x = max(box_a.min_x - box_b.max_x, box_b.min_x - box_a.max_x, 0)
            gap_y = max(box_a.min_y - box_b.max_y, box_b.min_y - box_a.max_y, 0)
            assert gap_x < 1e-9 or gap_y < 1e-9  # touching in at least one axis

    def test_works_with_grid_index(self):
        rng = np.random.default_rng(6)
        points = rng.uniform(0.1, 9.9, size=(50, 2))
        grid = GridIndex.build(BOX, points, n=4)
        net = RoadNetwork()
        net.add_intersection(0, 0.5, 0.5)
        net.add_intersection(1, 9.5, 0.5)
        net.add_road(0, 1)
        pairs = tile_road_adjacency(grid, net)
        # the road crosses the whole bottom row: cells 0-1, 1-2, 2-3
        assert (0, 1) in pairs and (1, 2) in pairs and (2, 3) in pairs
