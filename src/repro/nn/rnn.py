"""Recurrent cells and layers (GRU / LSTM).

These back the recurrent baselines: GRU, STRNN, DeepMove's recurrent
trunk, LSTPM's long/short-term LSTMs and Graph-Flashback's RNN.
Sequences are unbatched ``(length, dim)`` tensors in the training
loop; ``GRU`` and ``LSTM`` additionally unroll right-padded
``(batch, length, dim)`` batches for the vectorised inference path
(the cells slice their gate blocks along the last axis, so a step over
``(batch, dim)`` states is the same code as a step over ``(dim,)``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, concat, stack, zeros
from ..utils.rng import default_rng
from . import init
from .module import Module, Parameter


class GRUCell(Module):
    """Single-step gated recurrent unit."""

    def __init__(self, input_dim: int, hidden_dim: int, rng=None):
        super().__init__()
        rng = rng or default_rng()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # gates: reset, update, candidate — stacked as 3 blocks.
        self.w_ih = Parameter(init.xavier_uniform((3 * hidden_dim, input_dim), rng))
        self.w_hh = Parameter(init.xavier_uniform((3 * hidden_dim, hidden_dim), rng))
        self.b_ih = Parameter(np.zeros(3 * hidden_dim))
        self.b_hh = Parameter(np.zeros(3 * hidden_dim))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gi = x @ self.w_ih.transpose() + self.b_ih
        gh = h @ self.w_hh.transpose() + self.b_hh
        d = self.hidden_dim
        r = (gi[..., 0:d] + gh[..., 0:d]).sigmoid()
        z = (gi[..., d:2 * d] + gh[..., d:2 * d]).sigmoid()
        n = (gi[..., 2 * d:3 * d] + r * gh[..., 2 * d:3 * d]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """Unrolled GRU over a ``(length, input_dim)`` sequence."""

    def __init__(self, input_dim: int, hidden_dim: int, rng=None):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, h0: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        if x.ndim == 3:  # (batch, length, dim): one cell step per position
            h = h0 if h0 is not None else zeros((x.shape[0], self.hidden_dim))
            outputs: List[Tensor] = []
            for t in range(x.shape[1]):
                h = self.cell(x[:, t], h)
                outputs.append(h)
            return stack(outputs, axis=1), h
        h = h0 if h0 is not None else zeros(self.hidden_dim)
        outputs = []
        for t in range(x.shape[0]):
            h = self.cell(x[t], h)
            outputs.append(h)
        return stack(outputs, axis=0), h


class LSTMCell(Module):
    """Single-step long short-term memory cell."""

    def __init__(self, input_dim: int, hidden_dim: int, rng=None):
        super().__init__()
        rng = rng or default_rng()
        self.hidden_dim = hidden_dim
        # gates: input, forget, cell, output — stacked as 4 blocks.
        self.w_ih = Parameter(init.xavier_uniform((4 * hidden_dim, input_dim), rng))
        self.w_hh = Parameter(init.xavier_uniform((4 * hidden_dim, hidden_dim), rng))
        self.b = Parameter(np.zeros(4 * hidden_dim))

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h, c = state
        gates = x @ self.w_ih.transpose() + h @ self.w_hh.transpose() + self.b
        d = self.hidden_dim
        i = gates[..., 0:d].sigmoid()
        f = gates[..., d:2 * d].sigmoid()
        g = gates[..., 2 * d:3 * d].tanh()
        o = gates[..., 3 * d:4 * d].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class LSTM(Module):
    """Unrolled LSTM over a ``(length, input_dim)`` sequence."""

    def __init__(self, input_dim: int, hidden_dim: int, rng=None):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(
        self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        if x.ndim == 3:  # (batch, length, dim)
            if state is None:
                batch = x.shape[0]
                state = (zeros((batch, self.hidden_dim)), zeros((batch, self.hidden_dim)))
            h, c = state
            outputs: List[Tensor] = []
            for t in range(x.shape[1]):
                h, c = self.cell(x[:, t], (h, c))
                outputs.append(h)
            return stack(outputs, axis=1), (h, c)
        if state is None:
            state = (zeros(self.hidden_dim), zeros(self.hidden_dim))
        h, c = state
        outputs = []
        for t in range(x.shape[0]):
            h, c = self.cell(x[t], (h, c))
            outputs.append(h)
        return stack(outputs, axis=0), (h, c)


class DilatedLSTM(Module):
    """Geo-dilated LSTM used by the LSTPM baseline.

    Processes every ``dilation``-th step with a shared cell, which is the
    mechanism LSTPM uses to skip spatially redundant check-ins.
    """

    def __init__(self, input_dim: int, hidden_dim: int, dilation: int = 2, rng=None):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim
        self.dilation = max(1, dilation)

    def forward(self, x: Tensor) -> Tensor:
        h = zeros(self.hidden_dim)
        c = zeros(self.hidden_dim)
        for t in range(0, x.shape[0], self.dilation):
            h, c = self.cell(x[t], (h, c))
        # Always include the final step so the most recent check-in counts.
        last = x.shape[0] - 1
        if last % self.dilation != 0:
            h, c = self.cell(x[last], (h, c))
        return h
