"""MC: first-order Markov chain baseline [refs 1, 2 in the paper].

Predicts the next POI from a stationary transition matrix estimated by
counting consecutive visits in the training trajectories, backing off
to global popularity for unseen source POIs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..data.trajectory import PredictionSample
from .base import BaselineResult


class MarkovChain:
    """Count-based model; no gradients."""

    name = "MC"
    requires_gradient_training = False

    def __init__(self, num_pois: int, smoothing: float = 0.1):
        self.num_pois = num_pois
        self.smoothing = smoothing
        self.transitions = np.zeros((num_pois, num_pois), dtype=np.float64)
        self.popularity = np.zeros(num_pois, dtype=np.float64)
        self._fitted = False

    def fit(self, samples: Sequence[PredictionSample]) -> "MarkovChain":
        """Count transitions along every (prefix, target) chain."""
        for sample in samples:
            chain = sample.prefix_poi_ids + [sample.target.poi_id]
            for src, dst in zip(chain, chain[1:]):
                self.transitions[src, dst] += 1.0
            for poi in chain:
                self.popularity[poi] += 1.0
        self._fitted = True
        return self

    def scores(self, sample: PredictionSample) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("MarkovChain.fit() must run before prediction")
        current = sample.prefix[-1].poi_id
        row = self.transitions[current]
        pop = self.popularity / max(self.popularity.sum(), 1.0)
        if row.sum() == 0:
            return pop
        return row / row.sum() + self.smoothing * pop

    def predict(self, sample: PredictionSample) -> BaselineResult:
        order = np.argsort(-self.scores(sample), kind="stable")
        return BaselineResult(ranked_pois=[int(i) for i in order], target_poi=sample.target.poi_id)

    # interface parity with Module-based baselines
    def eval(self):
        return self

    def train(self, mode: bool = True):
        return self

    def num_parameters(self) -> int:
        return 0
