"""Figure 10 — parameter-tuning sweeps (training K, d_m, lr, batch size).

Paper shape to reproduce: K below ~10 hurts noticeably while K >= 10
plateaus; the embedding dimension has little effect; the learning rate
has an interior optimum; batch size barely matters.
"""

from repro.experiments import format_table
from repro.experiments.figures import run_fig10


def bench_fig10(benchmark, profile, save_report):
    small = profile.smaller(0.6)
    sweeps = benchmark.pedantic(run_fig10, args=(small,), rounds=1, iterations=1)
    blocks = []
    for parameter, points in sweeps.items():
        rows = [
            [f"{p.value:g}", f"{p.metrics['Recall@5']:.4f}", f"{p.metrics['MRR']:.4f}"]
            for p in points
        ]
        blocks.append(
            format_table(
                [parameter, "Recall@5", "MRR"],
                rows,
                title=f"Fig. 10 — sweep over {parameter}",
            )
        )
    save_report("fig10", "\n\n".join(blocks))
    assert set(sweeps) == {"K", "dim", "lr", "batch"}
    assert all(len(points) >= 3 for points in sweeps.values())
