"""Spatial partitioning: region quad-tree and the grid-ablation index."""

from .grid import GridIndex
from .quadtree import QuadTreeNode, RegionQuadTree

__all__ = ["GridIndex", "QuadTreeNode", "RegionQuadTree"]
