"""Dataset presets mirroring the paper's four evaluation datasets.

Table I of the paper:

=====================  =========  =====  ======  ========  ============
Dataset                Check-in   User   POI     Category  Coverage
=====================  =========  =====  ======  ========  ============
Foursquare (NYC)       227,428    1083   38,333  400       482.75 km2
Foursquare (TKY)       573,703    2293   61,858  385       211.98 km2
Weeplaces (California) 971,794    5250   99,733  679       423,967 km2
Weeplaces (Florida)    136,754    2064   25,287  589       139,670 km2
=====================  =========  =====  ======  ========  ============

The presets reproduce the datasets' *shapes* at laptop scale: NYC/TKY
are dense urban regions (TKY denser than NYC), California/Florida are
sparse state-scale regions with city clusters and a coastline (east
for Florida, west for California).  A ``scale`` knob grows everything
proportionally for users who want bigger runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geo import BoundingBox
from ..imagery import (
    Blob,
    CityCenter,
    Coastline,
    ImageryCatalog,
    LandUseMap,
    TileRenderer,
)
from ..roadnet import (
    RoadNetwork,
    generate_state_network,
    generate_urban_network,
    tile_road_adjacency,
)
from ..spatial import RegionQuadTree
from .checkin import CheckinDataset
from .synth import SynthConfig, SyntheticCity, generate_city
from .trajectory import Trajectory, split_into_trajectories

PRESET_NAMES = ("nyc", "tky", "california", "florida")


@dataclass
class DatasetSpec:
    """Full recipe for one benchmark dataset."""

    name: str
    style: str  # "urban" | "state"
    bbox: BoundingBox
    n_users: int
    n_pois: int
    n_categories: int
    n_days: int
    checkins_per_day: float
    n_city_centers: int
    coastal_side: Optional[str]  # None | "east" | "west"
    quadtree_depth: int  # paper parameter D
    quadtree_omega: int  # paper parameter Omega
    top_k: int  # paper parameter K
    imagery_resolution: int = 32

    def scaled(self, scale: float) -> "DatasetSpec":
        """Grow (or shrink) the dataset proportionally."""
        return replace(
            self,
            n_users=max(4, int(self.n_users * scale)),
            n_pois=max(50, int(self.n_pois * scale)),
            n_days=max(10, int(self.n_days * min(scale, 2.0))),
        )


def _spec_presets() -> Dict[str, DatasetSpec]:
    return {
        # Urban: small coverage, high density; TKY denser than NYC
        # (paper: TKY has ~2.5x the check-ins in half the area).
        "nyc": DatasetSpec(
            name="nyc",
            style="urban",
            bbox=BoundingBox(0.0, 0.0, 22.0, 22.0),
            n_users=110,
            n_pois=620,
            n_categories=24,
            n_days=32,
            checkins_per_day=2.8,
            n_city_centers=2,
            coastal_side="east",  # Manhattan's Atlantic side
            quadtree_depth=8,
            quadtree_omega=16,  # paper: 50, scaled to the smaller POI count
            top_k=10,
        ),
        "tky": DatasetSpec(
            name="tky",
            style="urban",
            bbox=BoundingBox(0.0, 0.0, 15.0, 15.0),
            n_users=140,
            n_pois=780,
            n_categories=22,
            n_days=32,
            checkins_per_day=3.2,
            n_city_centers=3,
            coastal_side="east",  # Tokyo Bay
            quadtree_depth=8,
            quadtree_omega=20,  # paper: 100, scaled
            top_k=10,
        ),
        # State: ~1000x the coverage with clustered cities (paper Sec. VI-A).
        "california": DatasetSpec(
            name="california",
            style="state",
            bbox=BoundingBox(0.0, 0.0, 650.0, 800.0),
            n_users=110,
            n_pois=700,
            n_categories=26,
            n_days=32,
            checkins_per_day=2.6,
            n_city_centers=5,
            coastal_side="west",
            quadtree_depth=9,
            quadtree_omega=20,  # paper: 100, scaled
            top_k=8,
        ),
        "florida": DatasetSpec(
            name="florida",
            style="state",
            bbox=BoundingBox(0.0, 0.0, 500.0, 700.0),
            n_users=85,
            n_pois=520,
            n_categories=24,
            n_days=30,
            checkins_per_day=2.4,
            n_city_centers=4,
            coastal_side="east",
            quadtree_depth=8,
            quadtree_omega=16,  # paper: 50, scaled
            top_k=8,
        ),
    }


def get_spec(name: str) -> DatasetSpec:
    presets = _spec_presets()
    if name not in presets:
        raise KeyError(f"unknown dataset preset {name!r}; choose from {sorted(presets)}")
    return presets[name]


@dataclass
class Dataset:
    """A fully materialised benchmark dataset."""

    spec: DatasetSpec
    city: SyntheticCity
    checkins: CheckinDataset
    trajectories: Dict[int, List[Trajectory]]  # user -> trajectory sequence
    quadtree: RegionQuadTree
    road_adjacency: set
    imagery: ImageryCatalog
    # the exact build_dataset() arguments, recorded so checkpoints can
    # rebuild an identical dataset (None for hand-assembled datasets)
    build_args: Optional[Dict] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_pois(self) -> int:
        return len(self.city.pois)

    @property
    def num_tiles(self) -> int:
        return len(self.quadtree)

    def leaf_of_poi(self, poi_id: int) -> int:
        return self.quadtree.leaf_of_poi(poi_id)

    def normalized_location(self, poi_id: int) -> Tuple[float, float]:
        """POI location mapped to the unit square (spatial-encoder input)."""
        x, y = self.city.pois.location_of(poi_id)
        return self.spec.bbox.normalize(x, y)


def _build_land_use(spec: DatasetSpec, rng: np.random.Generator) -> LandUseMap:
    bbox = spec.bbox
    span = min(bbox.width, bbox.height)
    centers: List[CityCenter] = []
    if spec.coastal_side == "east":
        cx_range = (0.35, 0.7)
    elif spec.coastal_side == "west":
        cx_range = (0.3, 0.65)
    else:
        cx_range = (0.2, 0.8)
    for _ in range(spec.n_city_centers):
        cx = bbox.min_x + rng.uniform(*cx_range) * bbox.width
        cy = bbox.min_y + rng.uniform(0.15, 0.85) * bbox.height
        if spec.style == "urban":
            commercial = rng.uniform(0.08, 0.14) * span
            urban = commercial * rng.uniform(2.0, 2.6)
        else:
            commercial = rng.uniform(0.03, 0.05) * span
            urban = commercial * rng.uniform(2.0, 2.5)
        centers.append(CityCenter(cx, cy, commercial, urban))
    parks = [
        Blob(
            bbox.min_x + rng.uniform(0.1, 0.85) * bbox.width,
            bbox.min_y + rng.uniform(0.1, 0.9) * bbox.height,
            rng.uniform(0.03, 0.07) * span,
        )
        for _ in range(3)
    ]
    industrial = [
        Blob(
            bbox.min_x + rng.uniform(0.1, 0.85) * bbox.width,
            bbox.min_y + rng.uniform(0.1, 0.9) * bbox.height,
            rng.uniform(0.04, 0.08) * span,
        )
    ]
    coast = None
    if spec.coastal_side:
        base_frac = 0.82 if spec.coastal_side == "east" else 0.18
        coast = Coastline(
            base=bbox.min_x + base_frac * bbox.width,
            amplitude=0.03 * bbox.width,
            frequency=2.0 * np.pi / bbox.height,
            phase=rng.uniform(0, 2 * np.pi),
            side=spec.coastal_side,
        )
    return LandUseMap(bbox=bbox, centers=centers, parks=parks, industrial=industrial, coast=coast)


def _build_roads(spec: DatasetSpec, land_use: LandUseMap, rng: np.random.Generator) -> RoadNetwork:
    if spec.style == "urban":
        return generate_urban_network(
            spec.bbox, rng, n_rows=12, n_cols=12, centers=[(c.x, c.y) for c in land_use.centers]
        )
    return generate_state_network(
        spec.bbox, rng, city_centers=[(c.x, c.y) for c in land_use.centers]
    )


def build_dataset(
    name: str,
    seed: int = 0,
    scale: float = 1.0,
    imagery_resolution: Optional[int] = None,
    noise_fraction: float = 0.0,
) -> Dataset:
    """Materialise a preset end-to-end (land use, roads, POIs, check-ins,
    quad-tree, road adjacency, imagery catalog).

    ``noise_fraction`` corrupts the imagery (Fig. 12(b) ablation).
    """
    spec = get_spec(name).scaled(scale)
    if imagery_resolution is not None:
        spec = replace(spec, imagery_resolution=imagery_resolution)
    rng = np.random.default_rng(seed)
    land_use = _build_land_use(spec, rng)
    roads = _build_roads(spec, land_use, rng)
    config = SynthConfig(
        n_pois=spec.n_pois,
        n_users=spec.n_users,
        n_categories=spec.n_categories,
        n_days=spec.n_days,
        checkins_per_day=spec.checkins_per_day,
        state_style=(spec.style == "state"),
        seed=seed + 1,
    )
    city = generate_city(spec.bbox, land_use, roads, config)
    checkins = CheckinDataset(city.checkins)
    trajectories = {
        user: split_into_trajectories(checkins.of_user(user)) for user in checkins.users()
    }
    quadtree = RegionQuadTree.build(
        spec.bbox,
        city.pois.xy,
        max_depth=spec.quadtree_depth,
        max_pois=spec.quadtree_omega,
    )
    adjacency = tile_road_adjacency(quadtree, roads)
    renderer = TileRenderer(land_use, roads, resolution=spec.imagery_resolution, seed=seed)
    imagery = ImageryCatalog(renderer, noise_fraction=noise_fraction).bind(quadtree)
    return Dataset(
        spec=spec,
        city=city,
        checkins=checkins,
        trajectories=trajectories,
        quadtree=quadtree,
        road_adjacency=adjacency,
        imagery=imagery,
        build_args=dict(
            name=name,
            seed=seed,
            scale=scale,
            imagery_resolution=imagery_resolution,
            noise_fraction=noise_fraction,
        ),
    )
