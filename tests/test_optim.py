"""Tests for optimisers and LR schedules."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Parameter
from repro.optim import SGD, Adam, ExponentialDecay
from repro.utils import spawn


def _quadratic_loss(p: Parameter) -> Tensor:
    return ((p - 3.0) * (p - 3.0)).sum()


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss = _quadratic_loss(p)
            loss.backward()
            opt.step()
        assert abs(p.data[0] - 3.0) < 1e-2

    def test_skips_params_without_grad(self):
        p, q = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        opt = Adam([p, q], lr=0.1)
        _quadratic_loss(p).backward()
        opt.step()
        assert np.allclose(q.data, [1.0])
        assert not np.allclose(p.data, [1.0])

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_grad_clipping_limits_norm(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=1.0, max_grad_norm=0.5)
        p.grad = np.array([100.0])
        opt._clip()
        assert abs(np.linalg.norm(p.grad) - 0.5) < 1e-9

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.0, weight_decay=0.1)
        # with lr=0 decoupled decay is also zero; use a small lr instead
        opt.lr = 0.1
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 10.0


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_loss(p).backward()
            opt.step()
        assert abs(p.data[0] - 3.0) < 1e-2

    def test_plain_step_is_gradient_descent(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad = np.array([2.0])
        opt.step()
        assert np.allclose(p.data, [0.0])


class TestScheduler:
    def test_exponential_decay_schedule(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=2e-5)
        sched = ExponentialDecay(opt, gamma=0.95)
        sched.step()
        assert np.isclose(opt.lr, 2e-5 * 0.95)
        sched.step()
        assert np.isclose(opt.lr, 2e-5 * 0.95 ** 2)


class TestEndToEndTraining:
    def test_linear_regression_learns(self):
        """A single Linear layer should fit y = 2x + 1."""
        rng = spawn(0)
        layer = Linear(1, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05)
        x = np.linspace(-1, 1, 32).reshape(-1, 1)
        y = 2.0 * x + 1.0
        for _ in range(400):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        assert abs(layer.weight.data[0, 0] - 2.0) < 0.05
        assert abs(layer.bias.data[0] - 1.0) < 0.05
