"""Reverse-mode autodiff engine (the PyTorch substitute for this repo)."""

from .batching import gather_at, gather_last, pad_stack
from .dtype import get_default_dtype, set_default_dtype
from .functional import (
    conv2d,
    cosine_similarity,
    cross_entropy,
    dropout,
    gather_rows,
    l2_normalize,
    log_softmax,
    masked_fill,
    softmax,
)
from .gradcheck import gradcheck, numerical_gradient
from .plan import Plan, PlanError
from .trace import TraceError, TraceRecorder, active_tracer, trace
from .tensor import (
    Tensor,
    arange,
    concat,
    is_grad_enabled,
    maximum,
    no_grad,
    ones,
    stack,
    tensor,
    where,
    zeros,
)

__all__ = [
    "Plan",
    "PlanError",
    "Tensor",
    "TraceError",
    "TraceRecorder",
    "active_tracer",
    "arange",
    "concat",
    "conv2d",
    "cosine_similarity",
    "cross_entropy",
    "dropout",
    "gather_at",
    "gather_last",
    "gather_rows",
    "get_default_dtype",
    "gradcheck",
    "is_grad_enabled",
    "l2_normalize",
    "log_softmax",
    "masked_fill",
    "maximum",
    "no_grad",
    "numerical_gradient",
    "ones",
    "pad_stack",
    "set_default_dtype",
    "softmax",
    "stack",
    "tensor",
    "trace",
    "where",
    "zeros",
]
