"""Dataset statistics (reproduces the paper's Table I)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .datasets import Dataset


@dataclass
class DatasetStats:
    """The Table I row for one dataset."""

    name: str
    checkins: int
    users: int
    pois: int
    categories: int
    coverage: float  # area of the bounding box, in km^2
    trajectories: int
    mean_trajectory_length: float
    leaf_tiles: int

    def as_row(self) -> List[str]:
        return [
            self.name,
            f"{self.checkins:,}",
            str(self.users),
            f"{self.pois:,}",
            str(self.categories),
            f"{self.coverage:,.2f} km2",
            str(self.trajectories),
            f"{self.mean_trajectory_length:.2f}",
            str(self.leaf_tiles),
        ]


def compute_stats(dataset: Dataset) -> DatasetStats:
    trajectory_lengths = [
        len(t) for trajectories in dataset.trajectories.values() for t in trajectories
    ]
    used_categories = len(set(int(c) for c in dataset.city.pois.categories))
    return DatasetStats(
        name=dataset.name,
        checkins=len(dataset.checkins),
        users=dataset.checkins.num_users,
        pois=len(dataset.city.pois),
        categories=used_categories,
        coverage=dataset.spec.bbox.area,
        trajectories=len(trajectory_lengths),
        mean_trajectory_length=float(np.mean(trajectory_lengths)) if trajectory_lengths else 0.0,
        leaf_tiles=len(dataset.quadtree.leaves()),
    )
