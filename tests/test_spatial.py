"""Tests for the region quad-tree and the grid index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox
from repro.spatial import GridIndex, RegionQuadTree

BOX = BoundingBox(0.0, 0.0, 10.0, 10.0)


def _random_points(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.05, 9.95, size=(n, 2))


class TestQuadTreeConstruction:
    def test_no_split_under_threshold(self):
        tree = RegionQuadTree.build(BOX, _random_points(5), max_depth=5, max_pois=10)
        assert len(tree) == 1
        assert tree.root.is_leaf

    def test_splits_over_threshold(self):
        tree = RegionQuadTree.build(BOX, _random_points(50), max_depth=5, max_pois=10)
        assert len(tree) > 1
        assert not tree.root.is_leaf

    def test_omega_respected_when_depth_allows(self):
        tree = RegionQuadTree.build(BOX, _random_points(200, seed=1), max_depth=10, max_pois=8)
        for leaf in tree.leaves():
            assert len(tree.pois_in_leaf(leaf)) <= 8

    def test_max_depth_caps_splitting(self):
        # all points in one corner would need depth >> 2 to satisfy omega
        points = np.full((100, 2), 0.01)
        tree = RegionQuadTree.build(BOX, points, max_depth=2, max_pois=1)
        assert tree.depth() <= 2

    def test_bad_args(self):
        with pytest.raises(ValueError):
            RegionQuadTree(BOX, max_depth=-1)
        with pytest.raises(ValueError):
            RegionQuadTree(BOX, max_pois=0)
        with pytest.raises(ValueError):
            RegionQuadTree.build(BOX, np.zeros((3, 3)))


class TestQuadTreeInvariants:
    def test_every_poi_in_exactly_one_leaf(self):
        points = _random_points(120, seed=2)
        tree = RegionQuadTree.build(BOX, points, max_depth=6, max_pois=10)
        seen = {}
        for leaf in tree.leaves():
            for pid in tree.pois_in_leaf(leaf):
                assert pid not in seen, "POI in two leaves"
                seen[pid] = leaf
        assert len(seen) == len(points)

    def test_leaf_for_point_matches_assignment(self):
        points = _random_points(80, seed=3)
        tree = RegionQuadTree.build(BOX, points, max_depth=6, max_pois=10)
        for pid, (x, y) in enumerate(points):
            assert tree.leaf_for_point(x, y) == tree.leaf_of_poi(pid)

    def test_leaves_cover_region(self):
        tree = RegionQuadTree.build(BOX, _random_points(100, seed=4), max_depth=6, max_pois=10)
        total = sum(tree.node(leaf).bbox.area for leaf in tree.leaves())
        assert total == pytest.approx(BOX.area)

    def test_point_outside_raises(self):
        tree = RegionQuadTree.build(BOX, _random_points(10), max_depth=3, max_pois=5)
        with pytest.raises(ValueError):
            tree.leaf_for_point(100.0, 0.0)

    def test_path_to_root(self):
        tree = RegionQuadTree.build(BOX, _random_points(100, seed=5), max_depth=6, max_pois=10)
        leaf = tree.leaves()[0]
        path = tree.path_to_root(leaf)
        assert path[0] == leaf and path[-1] == 0
        depths = [tree.node(n).depth for n in path]
        assert depths == sorted(depths, reverse=True)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 120), st.integers(0, 10_000))
    def test_property_leaf_unique_and_bounded(self, n, seed):
        points = _random_points(n, seed=seed)
        tree = RegionQuadTree.build(BOX, points, max_depth=6, max_pois=9)
        counted = sum(len(tree.pois_in_leaf(l)) for l in tree.leaves())
        assert counted == n
        if tree.depth() < 6:
            assert all(len(tree.pois_in_leaf(l)) <= 9 for l in tree.leaves())


class TestMinimalSubtree:
    def test_single_leaf_path(self):
        tree = RegionQuadTree.build(BOX, _random_points(100, seed=6), max_depth=6, max_pois=10)
        leaf = tree.leaves()[0]
        nodes, edges = tree.minimal_subtree([leaf])
        assert leaf in nodes
        assert len(edges) == len(nodes) - 1  # a path is a tree

    def test_subtree_is_connected_tree(self):
        tree = RegionQuadTree.build(BOX, _random_points(200, seed=7), max_depth=6, max_pois=10)
        leaves = tree.leaves()[:5]
        nodes, edges = tree.minimal_subtree(leaves)
        assert set(l for l in leaves).issubset(nodes)
        assert len(edges) == len(nodes) - 1
        # every edge endpoint is in the node set
        for parent, child in edges:
            assert parent in nodes and child in nodes

    def test_empty_input(self):
        tree = RegionQuadTree.build(BOX, _random_points(10), max_depth=3, max_pois=5)
        nodes, edges = tree.minimal_subtree([])
        assert nodes == set() and edges == []

    def test_minimality_root_pruned_for_sibling_leaves(self):
        """If all covered leaves share an ancestor below the root, the
        sub-tree must be rooted at that ancestor (no chain to the root)."""
        points = _random_points(300, seed=8)
        tree = RegionQuadTree.build(BOX, points, max_depth=6, max_pois=10)
        # pick a non-root internal node and its descendant leaves
        internal = next(
            n for n in tree.nodes if not n.is_leaf and n.parent_id is not None
        )
        descendants = [
            l for l in tree.leaves()
            if internal.node_id in tree.path_to_root(l)
        ]
        nodes, _ = tree.minimal_subtree(descendants)
        assert 0 not in nodes or internal.node_id == 0


class TestGridIndex:
    def test_cell_count(self):
        grid = GridIndex.build(BOX, _random_points(50), n=4)
        assert len(grid) == 16
        assert len(grid.leaves()) == 16

    def test_every_point_assigned(self):
        points = _random_points(60, seed=9)
        grid = GridIndex.build(BOX, points, n=5)
        total = sum(len(grid.pois_in_leaf(c)) for c in grid.leaves())
        assert total == len(points)

    def test_leaf_for_point_consistency(self):
        points = _random_points(40, seed=10)
        grid = GridIndex.build(BOX, points, n=5)
        for pid, (x, y) in enumerate(points):
            assert grid.leaf_for_point(x, y) == grid.leaf_of_poi(pid)

    def test_bbox_of_tiles(self):
        grid = GridIndex(BOX, 2)
        assert grid.bbox_of(0).min_x == 0 and grid.bbox_of(3).max_x == 10

    def test_neighbors(self):
        grid = GridIndex(BOX, 3)
        assert sorted(grid.neighbors(4)) == [1, 3, 5, 7]  # centre cell
        assert len(grid.neighbors(0)) == 2  # corner

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            GridIndex(BOX, 0)
