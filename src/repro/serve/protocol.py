"""The unified inference contract every next-POI model implements.

Historically TSPN-RA and the ten baselines exposed two divergent
inference surfaces (``PredictionResult`` vs ``BaselineResult``) that
the evaluator papered over with ``hasattr`` probes.  This module
collapses them into one contract:

* one result type, :class:`PredictorResult` (tile fields optional for
  models without a tile-selection step);
* one protocol, :class:`PredictorProtocol` — score candidates, ranked
  top-k, rank-of-target, plus the shared-state convention
  (``compute_embeddings``) that stateless models satisfy trivially by
  returning ``()``;
* one mixin, :class:`PredictorBase`, deriving the convenience methods
  from ``predict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from ..data.trajectory import PredictionSample, Trajectory, Visit


def rank_of_target(
    ranking: Sequence[int], target: int, universe: Optional[int] = None
) -> int:
    """1-based rank of ``target`` in ``ranking`` (paper Eq. 1).

    When the target is absent, the rank is ``universe + 1`` — one past
    the total number of rankable items — so a miss can never count as a
    Recall@K/NDCG@K hit.  Restricted rankings (e.g. the two-step POI
    stage, which only ranks POIs inside the top-K tiles) MUST pass
    ``universe``: the historic ``len(ranking) + 1`` fallback silently
    turned a missed target into a top-K "hit" whenever the candidate
    set held fewer than K items.  Without ``universe`` the fallback is
    kept for full-vocabulary rankings, where both conventions agree.
    """
    for position, item in enumerate(ranking, start=1):
        if item == target:
            return position
    return (universe if universe is not None else len(ranking)) + 1


def target_poi_of(sample) -> int:
    """Ground-truth POI id, or ``-1`` for target-less serving samples."""
    return sample.target.poi_id if sample.target is not None else -1


@dataclass
class PredictorResult:
    """Output of one inference for any conforming model.

    ``ranked_tiles``/``target_tile`` are ``None`` for models without a
    tile-selection step (all baselines).  ``target_poi`` is ``-1`` for
    live serving requests carrying no ground truth.  ``num_pois`` is
    the size of the full POI universe: models whose ranking is
    restricted to a candidate subset (TSPN-RA's two-step path) set it
    so an absent target ranks ``num_pois + 1``, strictly beyond any K,
    instead of just past the (possibly tiny) candidate list.
    """

    ranked_pois: List[int]
    target_poi: int
    ranked_tiles: Optional[List[int]] = None
    target_tile: Optional[int] = None
    num_pois: Optional[int] = None

    @property
    def poi_rank(self) -> int:
        return rank_of_target(self.ranked_pois, self.target_poi, universe=self.num_pois)

    @property
    def tile_rank(self) -> int:
        if self.ranked_tiles is None or self.target_tile is None:
            raise ValueError("this model does not rank tiles")
        return rank_of_target(self.ranked_tiles, self.target_tile)

    def top_k(self, k: int) -> List[int]:
        return self.ranked_pois[:k]


@runtime_checkable
class PredictorProtocol(Protocol):
    """What the evaluator, harness and serving facade rely on."""

    def compute_embeddings(self) -> Tuple[Any, ...]:
        """Shared per-batch state, passed back into ``predict``."""
        ...

    def weights_version(self) -> int:
        """Monotonic counter bumped on weight updates (cache token)."""
        ...

    def predict(self, sample, *shared, k: Optional[int] = None) -> PredictorResult:
        ...

    def predict_batch(
        self, samples, *shared, k: Optional[int] = None
    ) -> List[PredictorResult]:
        ...

    def score_candidates(self, sample, candidate_ids, *shared) -> np.ndarray:
        ...

    def top_k(self, sample, k: int, *shared) -> List[int]:
        ...

    def target_rank(self, sample, *shared) -> int:
        ...

    def set_graph_cache(self, cache) -> bool:
        ...


class PredictorBase:
    """Default implementations of the derived protocol methods.

    Subclasses implement ``predict`` and ``score_candidates``; models
    with shared state override ``compute_embeddings`` (and, when they
    hold trainable weights outside :class:`repro.nn.Module`, the
    persistence hooks).
    """

    def compute_embeddings(self) -> Tuple[Any, ...]:
        return ()

    def weights_version(self) -> int:
        return 0

    def predict(self, sample, *shared, k: Optional[int] = None) -> PredictorResult:
        raise NotImplementedError

    def predict_batch(
        self, samples, *shared, k: Optional[int] = None
    ) -> List[PredictorResult]:
        """Batched inference; the fallback is the per-sample loop.

        Models with a vectorised encode override this (TSPN-RA pads and
        masks the batch; ``NextPOIBaseline`` goes through
        ``score_batch``).  Overrides must produce results identical to
        mapping ``predict`` over the batch.
        """
        return [self.predict(sample, *shared, k=k) for sample in samples]

    def score_candidates(self, sample, candidate_ids, *shared) -> np.ndarray:
        raise NotImplementedError

    def loss_batch(self, samples, *shared):
        """Summed training loss for one mini-batch.

        The trainer's batched entry point.  This default sums
        ``loss_sample`` sequentially — same value, same gradients, no
        speedup — so every gradient-trained model is batch-trainable;
        models with a vectorised trunk override it with one padded
        forward pass (TSPN-RA's ``encode_batch``, the batched RNN
        trunks of the sequential baselines).  Overrides must return the
        *sum* (not mean) of the per-sample losses so the trainer's
        ``1/len(batch)`` scaling matches the per-sample path.
        """
        total = None
        for sample in samples:
            loss = self.loss_sample(sample, *shared)
            total = loss if total is None else total + loss
        if total is None:
            raise ValueError("loss_batch needs a non-empty batch")
        return total

    def top_k(self, sample, k: int, *shared) -> List[int]:
        return self.predict(sample, *shared).top_k(k)

    def target_rank(self, sample, *shared) -> int:
        return self.predict(sample, *shared).poi_rank

    def set_graph_cache(self, cache) -> bool:
        """Adopt an external per-user graph cache; most models have none."""
        return False

    def stream_graph_maintainer(self):
        """Incremental QR-P maintainer for stream pushes; most models
        have no graph stage, so the default opts out."""
        return None

    # ------------------------------------------------------------------
    # persistence hooks (checkpoint side-state beyond parameters)
    # ------------------------------------------------------------------
    def extra_state(self) -> Dict[str, np.ndarray]:
        return {}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        if state:
            raise KeyError(f"unexpected extra state: {sorted(state)}")


# ----------------------------------------------------------------------
# wire format (the HTTP front-end's request/response JSON)
# ----------------------------------------------------------------------
def serve_history_key(user_id: int, history: Sequence[Trajectory]) -> Tuple:
    """Graph-cache key for a live (non-dataset) request.

    Keyed by history *content* so equal requests share one cached QR-P
    graph.  The ``"serve"`` namespace keeps these keys disjoint from
    dataset ``(user, trajectory-index)`` 2-tuples — without it a live
    request could alias a training-time cache entry and serve a stale
    graph.
    """
    digest = hash(tuple(v.poi_id for t in history for v in t.visits))
    return ("serve", user_id, digest)


def _visit_from_json(entry, position: int, num_pois: Optional[int], where: str) -> Visit:
    """One visit from either ``{"poi_id", "timestamp"}`` or a bare id.

    Bare ids get consecutive integer timestamps — convenient for hand-
    written curl payloads where only the visit order matters.
    """
    if isinstance(entry, dict):
        if "poi_id" not in entry:
            raise ValueError(f"{where}[{position}] is missing 'poi_id'")
        poi_id = entry["poi_id"]
        timestamp = entry.get("timestamp", float(position))
    else:
        poi_id, timestamp = entry, float(position)
    if isinstance(poi_id, bool) or not isinstance(poi_id, int):
        raise ValueError(f"{where}[{position}].poi_id must be an integer")
    if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
        raise ValueError(f"{where}[{position}].timestamp must be a number")
    if poi_id < 0 or (num_pois is not None and poi_id >= num_pois):
        raise ValueError(
            f"{where}[{position}].poi_id {poi_id} outside the POI universe"
            + (f" [0, {num_pois})" if num_pois is not None else "")
        )
    return Visit(poi_id=int(poi_id), timestamp=float(timestamp))


def sample_from_json(payload: Dict, num_pois: Optional[int] = None) -> PredictionSample:
    """Build a :class:`PredictionSample` from a request body.

    Expected shape (``prefix`` required and non-empty, the rest
    optional)::

        {"user_id": 7,
         "prefix":  [{"poi_id": 3, "timestamp": 12.5}, 9],
         "history": [[{"poi_id": 1, "timestamp": 0.0}, 2], ...],
         "target":  {"poi_id": 4, "timestamp": 13.0}}

    Visits may be bare POI ids (timestamps default to their position).
    Validation failures raise ``ValueError`` with a field-level message
    — the front-end turns them into 400s *before* the sample can join a
    micro-batch and poison its batch-mates, and ``num_pois`` (when
    given) bounds every POI id so a bad request can never crash the
    batched encode with an out-of-range gather.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    user_id = payload.get("user_id", -1)
    if isinstance(user_id, bool) or not isinstance(user_id, int):
        raise ValueError("user_id must be an integer")
    raw_prefix = payload.get("prefix")
    if not isinstance(raw_prefix, list) or not raw_prefix:
        raise ValueError("prefix must be a non-empty list of visits")
    prefix = [
        _visit_from_json(entry, i, num_pois, "prefix") for i, entry in enumerate(raw_prefix)
    ]
    raw_history = payload.get("history", [])
    if not isinstance(raw_history, list):
        raise ValueError("history must be a list of trajectories")
    history: List[Trajectory] = []
    for t, raw_trajectory in enumerate(raw_history):
        if not isinstance(raw_trajectory, list) or not raw_trajectory:
            raise ValueError(f"history[{t}] must be a non-empty list of visits")
        visits = [
            _visit_from_json(entry, i, num_pois, f"history[{t}]")
            for i, entry in enumerate(raw_trajectory)
        ]
        history.append(Trajectory(user_id=user_id, visits=visits))
    target = None
    if payload.get("target") is not None:
        target = _visit_from_json(payload["target"], len(prefix), num_pois, "target")
    return PredictionSample(
        user_id=user_id,
        history=history,
        prefix=prefix,
        target=target,
        history_key=serve_history_key(user_id, history),
    )


def result_to_json(result: "PredictorResult", k: int = 10) -> Dict:
    """Response body for one :class:`PredictorResult`.

    Always carries the top-``k`` POIs and the universe size; rank and
    target fields appear only for requests that supplied a ground-truth
    target, tile fields only for models with a tile-selection step.
    """
    payload: Dict = {"top_pois": result.top_k(k), "num_pois": result.num_pois}
    if result.ranked_tiles is not None:
        payload["top_tiles"] = result.ranked_tiles[:k]
    if result.target_poi >= 0:
        payload["target_poi"] = result.target_poi
        payload["poi_rank"] = result.poi_rank
    return payload
