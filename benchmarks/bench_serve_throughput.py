"""Serving throughput — cached vs uncached shared-embedding inference.

Seeds the BENCH trajectory for the ``repro.serve`` subsystem: measures
samples/sec when the :class:`~repro.serve.Predictor` facade reuses its
cached embedding tables versus the legacy research loop that recomputed
``compute_embeddings()`` on every ``predict`` call.

Expected shape: the cached path wins by roughly the ratio of
embedding-table cost to per-sample encode cost; the gap widens with
imagery resolution and POI count.
"""

import pytest

from repro.experiments import format_table, prepare, run_one
from repro.serve import compare_throughput

pytestmark = pytest.mark.slow


def bench_serve_throughput(benchmark, profile, save_report):
    small = profile.smaller(0.5)
    data = prepare("nyc", small)
    _, model = run_one("TSPN-RA", data, small)
    test = data.splits.test[:80]

    report = benchmark.pedantic(
        compare_throughput, args=(model, test), rounds=1, iterations=1
    )

    rows = [[key, f"{value:10.2f}"] for key, value in report.items()]
    save_report(
        "serve_throughput",
        format_table(
            ["Metric", "Value"],
            rows,
            title="Serving throughput — cached vs uncached (NYC)",
        ),
    )
    assert report["speedup"] > 1.0, report
