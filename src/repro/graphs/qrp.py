"""QR-P graph construction (paper Sec. II-B, Fig. 3).

Given the region quad-tree Q, the road network's tile adjacency, and a
historical trajectory S, the four construction steps are:

1. extract the minimal sub-tree Q_S covering S's leaf tiles;
2. add ``road`` edges between leaf tiles of Q_S that the road network
   links directly;
3. add each historical POI as a node with a ``contain`` edge to its
   leaf tile;
4. assemble everything into one heterogeneous graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..data.trajectory import Trajectory, Visit, concat_history
from ..spatial import RegionQuadTree
from .hetero import HeteroGraph


@dataclass
class QRPGraph:
    """The assembled graph plus the index maps the model needs.

    ``tile_nodes``/``poi_nodes`` list local node indices in insertion
    order; ``tile_refs``/``poi_refs`` give the corresponding quad-tree
    node ids and POI ids (used to fetch initial embeddings from E_T and
    E_P, paper Eq. 7).
    """

    graph: HeteroGraph
    tile_nodes: List[int]
    tile_refs: List[int]
    poi_nodes: List[int]
    poi_refs: List[int]
    leaf_tile_refs: Set[int]

    @property
    def is_empty(self) -> bool:
        return self.graph.num_nodes == 0


def build_qrp_graph(
    tree: RegionQuadTree,
    road_adjacency: Set[Tuple[int, int]],
    history: Sequence[Trajectory],
) -> QRPGraph:
    """Construct the QR-P graph for a user's historical trajectories.

    An empty history yields an empty graph (the model falls back to
    sequence-only attention for cold-start users).
    """
    visits: List[Visit] = concat_history(list(history))
    graph = HeteroGraph()
    if not visits:
        return QRPGraph(graph, [], [], [], [], set())

    poi_ids = [v.poi_id for v in visits]
    leaf_ids = {tree.leaf_of_poi(p) for p in poi_ids}

    # Step 1: minimal sub-tree and its branch edges.
    subtree_nodes, branch_edges = tree.minimal_subtree(leaf_ids)
    for tile_ref in sorted(subtree_nodes):
        graph.add_node("tile", tile_ref)
    for parent, child in branch_edges:
        graph.add_edge(
            "branch", graph.index_of("tile", parent), graph.index_of("tile", child)
        )

    # Step 2: road edges between leaf tiles of the sub-tree.
    subtree_leaves = {n for n in subtree_nodes if tree.node(n).is_leaf}
    for a, b in road_adjacency:
        if a in subtree_leaves and b in subtree_leaves:
            graph.add_edge("road", graph.index_of("tile", a), graph.index_of("tile", b))

    # Step 3: POI nodes and contain edges.
    for poi in dict.fromkeys(poi_ids):  # unique, order-preserving
        poi_index = graph.add_node("poi", poi)
        leaf_index = graph.index_of("tile", tree.leaf_of_poi(poi))
        graph.add_edge("contain", leaf_index, poi_index)

    graph.validate()
    tile_nodes = graph.nodes_of_type("tile")
    poi_nodes = graph.nodes_of_type("poi")
    return QRPGraph(
        graph=graph,
        tile_nodes=tile_nodes,
        tile_refs=[graph.node_refs[i] for i in tile_nodes],
        poi_nodes=poi_nodes,
        poi_refs=[graph.node_refs[i] for i in poi_nodes],
        leaf_tile_refs=subtree_leaves,
    )


def update_qrp_graph(state, new_trajectory: Trajectory) -> QRPGraph:
    """Incremental counterpart of :func:`build_qrp_graph`.

    ``state`` is a :class:`~repro.graphs.incremental.QRPGraphState`
    (made by a :class:`~repro.graphs.incremental.QRPGraphMaintainer`);
    folding one newly completed session costs O(session) instead of
    O(history) and yields a graph identical to a full rebuild.  Defined
    in :mod:`repro.graphs.incremental`; re-exported here because it is
    this module's construction that it maintains.
    """
    from .incremental import update_qrp_graph as _update

    return _update(state, new_trajectory)


def strip_edges(qrp: QRPGraph, edge_type: str) -> QRPGraph:
    """Copy of the graph without one edge type (Table IV fine-grained
    ablations: "QR-P with no Road" / "QR-P with no Contain")."""
    graph = HeteroGraph()
    graph.node_types = list(qrp.graph.node_types)
    graph.node_refs = list(qrp.graph.node_refs)
    graph._index_of = dict(qrp.graph._index_of)
    for kind, pairs in qrp.graph.edges.items():
        graph.edges[kind] = [] if kind == edge_type else list(pairs)
    return QRPGraph(
        graph=graph,
        tile_nodes=list(qrp.tile_nodes),
        tile_refs=list(qrp.tile_refs),
        poi_nodes=list(qrp.poi_nodes),
        poi_refs=list(qrp.poi_refs),
        leaf_tile_refs=set(qrp.leaf_tile_refs),
    )
