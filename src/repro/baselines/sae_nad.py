"""SAE-NAD baseline [Ma et al., CIKM 2018; ref 9].

Self-Attentive Encoder + Neighbor-Aware Decoder.  The encoder treats
the user's visited POIs as a *set* (attention pooling, no order) —
which is exactly the weakness the paper calls out ("considered user
historical trajectory as a check-in set") — and the decoder boosts POIs
that are geographically close to the user's activity centre.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, softmax
from ..data.trajectory import PredictionSample, concat_history
from ..nn import Linear, Parameter
from ..utils.rng import default_rng
from .base import NextPOIBaseline, SequenceEmbedder

_MAX_SET = 150


class SAENAD(NextPOIBaseline):
    name = "SAE-NAD"

    def __init__(self, num_pois: int, locations: np.ndarray, dim: int = 64, rng=None):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.locations = np.asarray(locations, dtype=np.float64)
        self.embedder = SequenceEmbedder(num_pois, dim, use_time=False, rng=rng)
        self.attention_query = Parameter(np.zeros(dim))
        self.encode = Linear(dim, dim, rng=rng)
        self.head = Linear(dim, num_pois, rng=rng)
        self.neighbor_weight = Parameter(np.array([1.0]))
        self.neighbor_bandwidth = 0.15  # unit-square distance scale

    def score(self, sample: PredictionSample) -> Tensor:
        visits = (concat_history(sample.history) + list(sample.prefix))[-_MAX_SET:]
        embedded = self.embedder(visits)
        # self-attentive pooling over the *set* of check-ins
        weights = softmax(embedded @ self.attention_query, axis=0)
        user_vector = self.encode((embedded * weights.reshape(-1, 1)).sum(axis=0)).tanh()
        logits = self.head(user_vector)
        # neighbour-aware bias: proximity of each POI to the activity centre
        ids = np.array([v.poi_id for v in visits], dtype=np.int64)
        centre = self.locations[ids].mean(axis=0)
        distance = np.sqrt(((self.locations - centre) ** 2).sum(axis=1))
        proximity = np.exp(-distance / self.neighbor_bandwidth)
        return logits + Tensor(proximity) * self.neighbor_weight[0]
