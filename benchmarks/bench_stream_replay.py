"""Prequential streaming replay: incremental state vs full rebuild —
BENCH_stream.

Seeds the BENCH trajectory for the ``repro.stream`` subsystem.  A
trained quick-profile NYC model replays the dataset's check-ins in
global time order through three deployments of the same predictor:

* **baseline** — the serialised, stateless cost model: every arrival
  that warrants a prediction first rebuilds the user's sessions from
  the raw log (the server holds no state) and recomputes the per-user
  QR-P graph from scratch, one request at a time;
* **stream** — the :class:`~repro.stream.UserStateStore` path: O(1)
  sharded appends, session rollover at the Δt gap rule, per-user QR-P
  graphs cached under ``("stream", user, history_version)`` keys and
  retired exactly when the history moves, and predictions flushed
  through the vectorised ``predict_batch`` in cross-user chunks
  (sound under prequential order because every sample is an immutable
  pre-ingest snapshot);
* **incremental** — the stream leg plus O(session) QR-P maintenance:
  the store keeps each user's live graph, session rollovers update it
  incrementally (:class:`~repro.graphs.QRPGraphMaintainer`) and push
  the fresh ``(qrp, masks)`` entry into the serving cache, so a
  rollover is cache-neutral instead of an O(history) rebuild on the
  next miss.

All legs make identical prediction decisions from identical inputs, so
their ranked lists must agree (asserted) — the comparison isolates the
*architecture*, not the model.  Legs run interleaved round-robin over
``ROUNDS`` rounds and each speedup is the median of per-round paired
ratios, the same discipline as BENCH_serve.  The acceptance gates
assert the streaming leg sustains >= 2x the baseline's ingest+predict
events/sec and the incremental leg >= 1.5x (it additionally holds off
rebuild-per-rollover).  Alongside the human-readable table the run
emits ``benchmarks/results/BENCH_stream.json``.  Run standalone with
``PYTHONPATH=src python benchmarks/bench_stream_replay.py``
(the CI ``serve-smoke`` job does exactly that and uploads the JSON).
"""

import json
from pathlib import Path

import pytest

from repro.experiments import format_table, get_profile, prepare, run_one
from repro.serve import Predictor
from repro.stream import compare_replay, events_from_checkins

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).parent / "results"

MAX_EVENTS = 1200
BATCH_SIZE = 32
ROUNDS = 3


def run_bench(profile=None, save_report=None):
    profile = (profile or get_profile("quick")).smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)
    events = events_from_checkins(data.dataset.checkins)

    predictor = Predictor(model, graph_cache_size=512)
    comparison = compare_replay(
        predictor,
        events,
        batch_size=BATCH_SIZE,
        max_events=MAX_EVENTS,
        rounds=ROUNDS,
    )
    reports = comparison.pop("_reports")

    rows = [
        [
            report.leg,
            str(report.events),
            str(report.predictions),
            f"{report.seconds:8.2f}",
            f"{report.events_per_second:9.1f}",
            f"{report.metrics['Recall@10']:.4f}",
            f"{report.metrics['MRR']:.4f}",
        ]
        for report in (
            reports["baseline"],
            reports["stream"],
            reports["incremental"],
        )
    ]
    table = format_table(
        ["Leg", "Events", "Predictions", "Seconds", "Events/s", "Recall@10", "MRR"],
        rows,
        title=(
            "Prequential streaming replay — incremental user state vs "
            f"serialised full rebuild (NYC, stream {comparison['speedup']:.2f}x, "
            f"incremental {comparison['incremental_speedup']:.2f}x, "
            f"median of {ROUNDS} paired rounds)"
        ),
    )
    if save_report is not None:
        save_report("stream_replay", table)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "stream_replay.txt").write_text(table + "\n")
        print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_point = {
        "bench": "stream_replay",
        "dataset": "nyc",
        "model": "TSPN-RA",
        **comparison,
    }
    out = RESULTS_DIR / "BENCH_stream.json"
    out.write_text(json.dumps(trajectory_point, indent=2) + "\n")
    print(f"[BENCH trajectory point saved to {out}]")

    # identical inputs + deterministic eval-mode inference => identical
    # ranked lists; a mismatch means the store mis-split a session (or
    # an incremental graph diverged from the rebuild)
    assert comparison["ranked_lists_identical"], trajectory_point
    assert comparison["incremental_ranked_identical"], trajectory_point
    assert comparison["speedup"] >= 2.0, trajectory_point
    assert comparison["incremental_speedup"] >= 1.5, trajectory_point
    return trajectory_point


def bench_stream_replay(profile, save_report):
    run_bench(profile=profile, save_report=save_report)


if __name__ == "__main__":
    run_bench()
