"""Async serving under load: closed-loop generator — BENCH_serve_async.

Seeds the BENCH trajectory for the ``repro.serve.server`` runtime.
A *closed-loop* load generator (each client thread keeps exactly one
request outstanding: submit, wait, repeat) drives an in-process
:class:`~repro.serve.InferenceServer` at several concurrency levels
under two batching configurations:

* **serial** — ``workers=1, max_batch_size=1``: the per-request
  baseline every client-facing latency number in the related systems
  (MobTCast, SANST) is reported against; concurrency only queues.
* **batched** — ``max_batch_size=16, max_wait_ms=4``: the dynamic
  micro-batching scheduler coalesces concurrent clients into one
  vectorised ``predict_batch`` pass (plans off — pure eager).
* **compiled** — the batched scheduler serving captured inference
  plans in float32, the compiled serving configuration; the cell also
  records the pool-wide plan-cache counters (plans/traces/hits/misses)
  scraped from the same ``stats()`` surface ``/stats`` exposes.

Per (config, concurrency) cell the run records sustained samples/sec
and end-to-end per-request latency percentiles (p50/p95/p99, enqueue
to completion — queueing + batching delay + inference).  Two extra
legs at top concurrency re-run the compiled configuration with request
tracing off and at the serving default 1% sampling; their throughput
deltas against the compiled cell land in the JSON as
``obs_overhead`` — the standing measurement that the trace hooks stay
in the noise.  The
acceptance gate asserts the micro-batched server sustains >= 2x the
serial samples/sec at the highest concurrency; the compiled leg's
speedups over serial and batched are recorded (the hard compiled
gate lives in ``bench_serve_throughput.py`` where legs interleave).
Alongside the human-readable table the run emits
``benchmarks/results/BENCH_serve_async.json``.  Run standalone with
``PYTHONPATH=src python benchmarks/bench_serve_async.py``
(the CI ``serve-smoke`` job does exactly that and uploads the JSON).
"""

import json
import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import format_table, get_profile, prepare, run_one
from repro.obs import activate, maybe_trace
from repro.serve import InferenceServer, ServerConfig, interpolated_percentile

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).parent / "results"

CONFIGS = {
    "serial": ServerConfig(
        workers=1, max_batch_size=1, max_wait_ms=0.0, max_queue=4096, compile=False
    ),
    "batched": ServerConfig(
        workers=1, max_batch_size=16, max_wait_ms=4.0, max_queue=4096, compile=False
    ),
    "compiled": ServerConfig(
        workers=1,
        max_batch_size=16,
        max_wait_ms=4.0,
        max_queue=4096,
        compile=True,
        plan_dtype="float32",
    ),
}
CONCURRENCY_LEVELS = (4, 16)
REQUESTS_PER_CLIENT = 24
WARMUP_REQUESTS = 8
OBS_REPETITIONS = 3


def _closed_loop(server, samples, clients, requests_per_client):
    """Drive the server with ``clients`` synchronous request loops.

    Closed loop: offered load adapts to service rate (each client has
    one request in flight), so throughput measures sustainable
    capacity rather than queue growth.  Each request runs the same
    sampling wrap the HTTP handler applies (``maybe_trace`` at the
    server's configured rate, slow-ring offer on completion), so the
    obs-overhead legs exercise the real traced path, not just the
    span no-ops.
    """
    latencies = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)
    sample_rate = server.config.trace_sample

    def client(index):
        mine = []
        barrier.wait()  # line up so every client offers load at once
        for j in range(requests_per_client):
            sample = samples[(index + j * clients) % len(samples)]
            start = time.perf_counter()
            trace = maybe_trace(sample_rate)
            with activate(trace):
                server.predict(sample, timeout=60.0)
            if trace is not None:
                server.slow_ring.offer(trace)
            mine.append(time.perf_counter() - start)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    total = clients * requests_per_client
    millis = sorted(1000.0 * s for s in latencies)
    return {
        "clients": clients,
        "requests": total,
        "wall_seconds": wall,
        "sps": total / wall if wall > 0 else float("inf"),
        **{f"p{p}_ms": interpolated_percentile(millis, p) for p in (50, 95, 99)},
    }


def run_bench(profile=None, save_report=None):
    profile = (profile or get_profile("quick")).smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)
    samples = data.splits.test[:64]

    cells = []
    for config_name, config in CONFIGS.items():
        for clients in CONCURRENCY_LEVELS:
            server = InferenceServer(model, config=config).start()
            try:
                _closed_loop(server, samples, clients=2, requests_per_client=WARMUP_REQUESTS)
                cell = _closed_loop(server, samples, clients, REQUESTS_PER_CLIENT)
                if server.plan_cache is not None:
                    plan_stats = server.stats()["plans"]
                    cell["plans"] = len(plan_stats["plans"])
                    for counter in ("traces", "hits", "misses"):
                        cell[f"plan_{counter}"] = plan_stats[counter]
            finally:
                server.stop(drain=True)
            cell = {"config": config_name, **cell}
            cells.append(cell)
            print(
                f"{config_name:8s} clients={clients:3d}  "
                f"{cell['sps']:8.1f} samples/s  p50 {cell['p50_ms']:6.2f} ms  "
                f"p99 {cell['p99_ms']:6.2f} ms"
            )

    # Observability overhead at top load: the compiled configuration
    # with tracing off (the span no-op path) vs the serving default 1%
    # sampling.  Legs interleave over OBS_REPETITIONS rounds and each
    # keeps its best sustained rate — back-to-back best-vs-best cancels
    # the run-to-run drift a single pair of cells drowns in (the drift
    # is larger than the effect being measured).  The off leg's delta
    # against the compiled cell above doubles as the noise floor.
    top = CONCURRENCY_LEVELS[-1]
    obs_cells = []
    best = {}
    for repetition in range(OBS_REPETITIONS):
        for leg, sample_rate in (("obs_off", 0.0), ("obs_1pct", 0.01)):
            config = replace(CONFIGS["compiled"], trace_sample=sample_rate)
            server = InferenceServer(model, config=config).start()
            try:
                _closed_loop(
                    server, samples, clients=2, requests_per_client=WARMUP_REQUESTS
                )
                cell = _closed_loop(server, samples, top, REQUESTS_PER_CLIENT)
                cell["trace_sample"] = sample_rate
                cell["traces_sampled"] = server.slow_ring.observed
                cell["repetition"] = repetition
            finally:
                server.stop(drain=True)
            obs_cells.append({"config": leg, **cell})
            if leg not in best or cell["sps"] > best[leg]["sps"]:
                best[leg] = cell
            print(
                f"{leg:8s} clients={top:3d}  "
                f"{cell['sps']:8.1f} samples/s  p50 {cell['p50_ms']:6.2f} ms  "
                f"p99 {cell['p99_ms']:6.2f} ms  (traces: {cell['traces_sampled']})"
            )

    serial_sps = next(
        c["sps"] for c in cells if c["config"] == "serial" and c["clients"] == top
    )
    batched_sps = next(
        c["sps"] for c in cells if c["config"] == "batched" and c["clients"] == top
    )
    compiled_sps = next(
        c["sps"] for c in cells if c["config"] == "compiled" and c["clients"] == top
    )
    speedup = batched_sps / serial_sps if serial_sps > 0 else float("inf")
    compiled_speedup = compiled_sps / serial_sps if serial_sps > 0 else float("inf")
    compiled_vs_batched = compiled_sps / batched_sps if batched_sps > 0 else float("inf")
    off_sps = best["obs_off"]["sps"]
    traced_sps = best["obs_1pct"]["sps"]
    # 1% sampling is measured against the off leg (same interleaved
    # rounds); the off leg against the compiled cell is the noise floor
    obs_overhead = {
        "obs_off": 1.0 - off_sps / compiled_sps if compiled_sps > 0 else 0.0,
        "obs_1pct": 1.0 - traced_sps / off_sps if off_sps > 0 else 0.0,
    }
    print(
        f"obs overhead at {top} clients (best of {OBS_REPETITIONS}): "
        f"sampling off {obs_overhead['obs_off'] * 100:+.2f}% vs compiled "
        f"(noise floor), 1% sampling {obs_overhead['obs_1pct'] * 100:+.2f}% "
        f"vs sampling off"
    )

    rows = [
        [
            cell["config"],
            str(cell["clients"]),
            f"{cell['sps']:9.1f}",
            f"{cell['p50_ms']:8.2f}",
            f"{cell['p95_ms']:8.2f}",
            f"{cell['p99_ms']:8.2f}",
        ]
        for cell in cells
    ]
    table = format_table(
        ["Config", "Clients", "Samples/s", "p50 ms", "p95 ms", "p99 ms"],
        rows,
        title=(
            "Async serving — serial vs micro-batched vs compiled under closed-loop "
            f"load (NYC, batched {speedup:.2f}x / compiled {compiled_speedup:.2f}x "
            f"at {top} clients)"
        ),
    )
    if save_report is not None:
        save_report("serve_async", table)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "serve_async.txt").write_text(table + "\n")
        print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_point = {
        "bench": "serve_async",
        "dataset": "nyc",
        "configs": {
            name: {
                "workers": config.workers,
                "max_batch_size": config.max_batch_size,
                "max_wait_ms": config.max_wait_ms,
                "compile": config.compile,
            }
            for name, config in CONFIGS.items()
        },
        "concurrency_levels": list(CONCURRENCY_LEVELS),
        "requests_per_client": REQUESTS_PER_CLIENT,
        "plan_dtype": CONFIGS["compiled"].plan_dtype,
        "results": [
            {key: (round(value, 4) if isinstance(value, float) else value)
             for key, value in cell.items()}
            for cell in cells
        ],
        "batched_speedup_at_top_load": round(speedup, 4),
        "compiled_speedup_at_top_load": round(compiled_speedup, 4),
        "compiled_vs_batched_at_top_load": round(compiled_vs_batched, 4),
        "obs_overhead": {
            "clients": top,
            "cells": [
                {key: (round(value, 4) if isinstance(value, float) else value)
                 for key, value in cell.items()}
                for cell in obs_cells
            ],
            "sampling_off_overhead": round(obs_overhead["obs_off"], 4),
            "sampling_1pct_overhead": round(obs_overhead["obs_1pct"], 4),
        },
    }
    out = RESULTS_DIR / "BENCH_serve_async.json"
    out.write_text(json.dumps(trajectory_point, indent=2) + "\n")
    print(f"[BENCH trajectory point saved to {out}]")

    assert speedup >= 2.0, trajectory_point
    return trajectory_point


def bench_serve_async(profile, save_report):
    run_bench(profile=profile, save_report=save_report)


if __name__ == "__main__":
    run_bench()
