"""Unit tests for the core Tensor ops and the backward pass."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    concat,
    gradcheck,
    maximum,
    no_grad,
    stack,
    tensor,
    where,
)


def _t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestBasicOps:
    def test_add_values(self):
        out = _t([1.0, 2.0]) + _t([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_add_grad(self):
        a, b = _t([[1.0, 2.0], [3.0, 4.0]]), _t([[5.0, 6.0], [7.0, 8.0]])
        assert gradcheck(lambda x, y: x + y, [a, b])

    def test_add_broadcast_grad(self):
        a, b = _t([[1.0, 2.0], [3.0, 4.0]]), _t([10.0, 20.0])
        assert gradcheck(lambda x, y: x + y, [a, b])

    def test_scalar_radd(self):
        out = 2.0 + _t([1.0])
        out.backward()
        assert np.allclose(out.data, [3.0])

    def test_sub_grad(self):
        assert gradcheck(lambda x, y: x - y, [_t([3.0, 1.0]), _t([[1.0], [2.0]])])

    def test_mul_grad(self):
        assert gradcheck(lambda x, y: x * y, [_t([[1.5, -2.0]]), _t([[2.0], [3.0]])])

    def test_div_grad(self):
        assert gradcheck(lambda x, y: x / y, [_t([1.0, 4.0]), _t([2.0, 8.0])])

    def test_pow_grad(self):
        assert gradcheck(lambda x: x ** 3, [_t([1.0, -2.0, 0.5])])

    def test_neg(self):
        assert gradcheck(lambda x: -x, [_t([1.0, -1.0])])

    def test_matmul_2d(self):
        a, b = _t(np.random.default_rng(0).normal(size=(3, 4))), _t(
            np.random.default_rng(1).normal(size=(4, 2))
        )
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_matmul_vec(self):
        a = _t(np.random.default_rng(0).normal(size=(3, 4)))
        v = _t(np.random.default_rng(1).normal(size=4))
        assert gradcheck(lambda x, y: x @ y, [a, v])

    def test_matmul_batched(self):
        rng = np.random.default_rng(2)
        a = _t(rng.normal(size=(2, 3, 4)))
        b = _t(rng.normal(size=(2, 4, 5)))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_matmul_broadcast_batch(self):
        rng = np.random.default_rng(3)
        a = _t(rng.normal(size=(2, 3, 4)))
        b = _t(rng.normal(size=(4, 5)))
        assert gradcheck(lambda x, y: x @ y, [a, b])


class TestElementwise:
    @pytest.mark.parametrize(
        "name",
        ["exp", "tanh", "sigmoid", "relu", "abs", "sin", "cos", "sqrt", "log"],
    )
    def test_unary_grad(self, name):
        data = [0.5, 1.5, 2.5] if name in ("sqrt", "log") else [-1.2, 0.3, 2.0]
        x = _t(data)
        assert gradcheck(lambda t: getattr(t, name)(), [x], atol=1e-4)

    def test_leaky_relu_negative_slope(self):
        x = _t([-2.0, 3.0])
        out = x.leaky_relu(0.1)
        assert np.allclose(out.data, [-0.2, 3.0])
        assert gradcheck(lambda t: t.leaky_relu(0.1), [x])

    def test_clip_blocks_grad_outside(self):
        x = _t([-2.0, 0.5, 2.0])
        out = x.clip(-1.0, 1.0)
        out.backward(np.ones(3))
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        assert gradcheck(lambda x: x.sum(), [_t([[1.0, 2.0], [3.0, 4.0]])])

    def test_sum_axis(self):
        assert gradcheck(lambda x: x.sum(axis=0), [_t([[1.0, 2.0], [3.0, 4.0]])])

    def test_sum_keepdims(self):
        assert gradcheck(
            lambda x: x.sum(axis=1, keepdims=True), [_t([[1.0, 2.0], [3.0, 4.0]])]
        )

    def test_mean_matches_numpy(self):
        x = _t([[1.0, 2.0], [3.0, 5.0]])
        assert np.allclose(x.mean(axis=1).data, [1.5, 4.0])
        assert gradcheck(lambda t: t.mean(axis=1), [x])

    def test_max_axis_grad(self):
        x = _t([[1.0, 5.0], [7.0, 3.0]])
        assert gradcheck(lambda t: t.max(axis=1), [x])

    def test_max_ties_split_grad(self):
        x = _t([2.0, 2.0])
        out = x.max()
        out.backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_min(self):
        x = _t([[3.0, 1.0], [2.0, 4.0]])
        assert np.allclose(x.min(axis=1).data, [1.0, 2.0])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        assert gradcheck(lambda x: x.reshape(3, 2), [_t([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])])

    def test_transpose_grad(self):
        rng = np.random.default_rng(0)
        assert gradcheck(lambda x: x.transpose(1, 0, 2), [_t(rng.normal(size=(2, 3, 4)))])

    def test_default_transpose_reverses(self):
        x = _t(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_getitem_int_index(self):
        x = _t([[1.0, 2.0], [3.0, 4.0]])
        assert gradcheck(lambda t: t[1], [x])

    def test_getitem_fancy_index_accumulates(self):
        x = _t([1.0, 2.0, 3.0])
        out = x[np.array([0, 0, 2])]
        out.backward(np.ones(3))
        assert np.allclose(x.grad, [2.0, 0.0, 1.0])

    def test_concat_grad(self):
        a, b = _t([[1.0, 2.0]]), _t([[3.0, 4.0], [5.0, 6.0]])
        assert gradcheck(lambda x, y: concat([x, y], axis=0), [a, b])

    def test_stack_grad(self):
        a, b = _t([1.0, 2.0]), _t([3.0, 4.0])
        assert gradcheck(lambda x, y: stack([x, y], axis=0), [a, b])

    def test_expand_squeeze(self):
        x = _t([1.0, 2.0])
        assert x.expand_dims(0).shape == (1, 2)
        assert x.expand_dims(0).squeeze(0).shape == (2,)
        assert gradcheck(lambda t: t.expand_dims(1), [x])


class TestSelectors:
    def test_where_grad_routing(self):
        a, b = _t([1.0, 2.0]), _t([10.0, 20.0])
        out = where(np.array([True, False]), a, b)
        out.backward(np.ones(2))
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_maximum_values_and_grad(self):
        a, b = _t([1.0, 5.0]), _t([3.0, 2.0])
        out = maximum(a, b)
        assert np.allclose(out.data, [3.0, 5.0])
        out.backward(np.ones(2))
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = _t([2.0])
        out = x * x + x
        out.backward()
        assert np.allclose(x.grad, [5.0])  # d(x^2+x)/dx = 2x+1

    def test_backward_requires_grad(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_blocks_graph(self):
        x = _t([1.0])
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = _t([3.0])
        y = (x * 2.0).detach() * x
        y.backward()
        assert np.allclose(x.grad, [6.0])  # only the second factor contributes

    def test_diamond_graph(self):
        x = _t([1.0, 2.0])
        a = x * 2.0
        b = x + 1.0
        out = (a * b).sum()
        out.backward()
        # d/dx of 2x(x+1) = 4x + 2
        assert np.allclose(x.grad, [6.0, 10.0])

    def test_backward_shape_mismatch_raises(self):
        x = _t([1.0, 2.0])
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_second_backward_accumulates_on_leaf(self):
        x = _t([1.0])
        y = x * 3.0
        y.backward()
        y2 = x * 3.0
        y2.backward()
        assert np.allclose(x.grad, [6.0])

    def test_int_input_promoted_to_float(self):
        assert tensor([1, 2, 3]).dtype == np.float64
