"""Checkpoint weights in ``multiprocessing.shared_memory``.

PR 4's worker pool shares one checkpoint's weights across *threads* by
sharing the :class:`~repro.nn.module.Parameter` objects themselves.
:class:`SharedWeights` extends that zero-copy scheme across the
``fork``/``spawn`` process boundary: the cluster parent packs every
``state_dict`` array into one shared-memory block, and each shard
worker attaches read-only numpy views over the same physical pages —
N shard processes, one copy of the weights in RAM, under either start
method.

The manifest (block name + per-array offset/shape/dtype) is plain data,
so it rides the worker spec through ``spawn`` pickling.  Lifecycle: the
creating process owns the block and unlinks it on cluster shutdown;
attachers only ever close.  Views are marked read-only — a worker is an
inference replica, and scribbling on shared weights would corrupt every
shard at once.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict

import numpy as np

_ALIGN = 64  # cache-line alignment for each packed array


def _aligned(size: int) -> int:
    return (size + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedWeights:
    """One shared-memory block holding a model's parameter arrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: Dict,
        owner: bool,
    ):
        self._shm = shm
        self.manifest = manifest
        self.owner = owner

    # ------------------------------------------------------------------
    # creation (parent) / attachment (workers)
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedWeights":
        """Pack ``arrays`` (e.g. ``model.state_dict()``) into a new block."""
        entries: Dict[str, Dict] = {}
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            entries[name] = {
                "offset": offset,
                "shape": list(array.shape),
                "dtype": str(array.dtype),
            }
            offset += _aligned(array.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        manifest = {"shm_name": shm.name, "size": shm.size, "entries": entries}
        for name, array in arrays.items():
            entry = entries[name]
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=entry["dtype"],
                buffer=shm.buf,
                offset=entry["offset"],
            )
            view[...] = array
            del view  # leave no exported views: unlink() must not hit BufferError
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: Dict) -> "SharedWeights":
        """Attach to an existing block from its manifest (worker side).

        Python 3.11 registers the name with the resource tracker on
        attach as well as on create.  Shard workers inherit the
        *parent's* tracker through ``spawn``, and registration there is
        an idempotent set-add — so attaching is tracker-neutral and the
        owner's single ``unlink`` is the one cleanup.  (Do not
        ``resource_tracker.unregister`` here: with a shared tracker
        that would erase the owner's registration out from under it.)
        """
        shm = shared_memory.SharedMemory(name=manifest["shm_name"])
        return cls(shm, manifest, owner=False)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def arrays(self, writeable: bool = False) -> Dict[str, np.ndarray]:
        """Numpy views over the shared pages (read-only by default)."""
        out: Dict[str, np.ndarray] = {}
        for name, entry in self.manifest["entries"].items():
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=entry["dtype"],
                buffer=self._shm.buf,
                offset=entry["offset"],
            )
            view.flags.writeable = writeable
            out[name] = view
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:
            # live views still reference the buffer (e.g. a model keeps
            # serving); the mapping dies with the process instead
            pass

    def unlink(self) -> None:
        """Destroy the block (owner only; attachers merely close)."""
        if self.owner:
            self.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


def assign_shared_parameters(model, arrays: Dict[str, np.ndarray]) -> int:
    """Point every model parameter at its shared-memory view, zero-copy.

    The cross-process twin of ``load_state_dict``: same name/shape
    checks, but the data is *adopted*, not copied — the worker's
    parameters literally are the parent's pages.  Bumps each
    parameter's ``version`` so ``weights_version``-keyed caches refresh,
    and returns the model's new ``weights_version``.
    """
    own = dict(model.named_parameters())
    missing = set(own) - set(arrays)
    unexpected = set(arrays) - set(own)
    if missing or unexpected:
        raise KeyError(
            f"shared weights mismatch: missing={sorted(missing)} "
            f"unexpected={sorted(unexpected)}"
        )
    for name, parameter in own.items():
        view = arrays[name]
        if parameter.data.shape != view.shape:
            raise ValueError(f"shape mismatch for {name}")
        parameter.data = view
        parameter.version += 1
    return model.weights_version()
