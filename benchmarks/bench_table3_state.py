"""Table III — model comparison on the state datasets (California / Florida).

Paper shape to reproduce: the sparse, state-scale distribution hurts
models whose negatives or transitions are purely local (STiSAN, STRNN);
history-aware models stay competitive; TSPN-RA leads or ties.
"""

from repro.experiments import best_baseline, format_results, improvement_row
from repro.experiments.tables import run_table3


def bench_table3(benchmark, profile, save_report):
    results = benchmark.pedantic(run_table3, args=(profile,), rounds=1, iterations=1)
    blocks = []
    for dataset, table in results.items():
        block = format_results(
            table, title=f"Table III — {dataset.capitalize()}", highlight="TSPN-RA"
        )
        strongest = best_baseline(table, exclude="TSPN-RA")
        improvements = improvement_row(table["TSPN-RA"], table[strongest])
        block += f"\nimprovement vs best baseline ({strongest}): " + "  ".join(
            f"{k}={v}" for k, v in improvements.items()
        )
        blocks.append(block)
    save_report("table3", "\n\n".join(blocks))
    assert results  # both datasets ran
