"""STRNN baseline [Liu et al., AAAI 2016; ref 5].

Extends a vanilla RNN with spatial and temporal *transition matrices*:
the input projection interpolates between learned endpoint matrices
according to the time gap and spatial distance of consecutive visits —
the defining mechanism of STRNN.  The paper finds this model weak on
both dataset families, which the reproduction preserves (transition
matrices generalise poorly on sparse check-ins).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..data.trajectory import PredictionSample
from ..nn import Linear, Module, Parameter
from ..nn import init as nn_init
from ..utils.rng import default_rng
from .base import NextPOIBaseline, SequenceEmbedder


class STRNN(NextPOIBaseline):
    name = "STRNN"

    def __init__(
        self,
        num_pois: int,
        locations: np.ndarray,
        dim: int = 64,
        max_gap_hours: float = 24.0,
        rng=None,
    ):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.locations = np.asarray(locations, dtype=np.float64)  # unit square
        self.max_gap = max_gap_hours
        self.max_dist = float(np.sqrt(2.0))
        self.embedder = SequenceEmbedder(num_pois, dim, use_time=False, rng=rng)
        self.w_h = Parameter(nn_init.xavier_uniform((dim, dim), rng))
        # endpoint matrices for temporal / spatial interpolation
        self.w_t0 = Parameter(nn_init.xavier_uniform((dim, dim), rng))
        self.w_t1 = Parameter(nn_init.xavier_uniform((dim, dim), rng))
        self.w_d0 = Parameter(nn_init.xavier_uniform((dim, dim), rng))
        self.w_d1 = Parameter(nn_init.xavier_uniform((dim, dim), rng))
        self.head = Linear(dim, num_pois, rng=rng)

    def score(self, sample: PredictionSample) -> Tensor:
        visits = sample.prefix
        embedded = self.embedder(sample)
        hidden = Tensor(np.zeros(self.dim))
        prev = None
        for index, visit in enumerate(visits):
            if prev is None:
                t_frac, d_frac = 0.0, 0.0
            else:
                gap = min(visit.timestamp - prev.timestamp, self.max_gap) / self.max_gap
                dist = float(
                    np.linalg.norm(self.locations[visit.poi_id] - self.locations[prev.poi_id])
                )
                t_frac = gap
                d_frac = min(dist / self.max_dist, 1.0)
            w_t = self.w_t0 * (1.0 - t_frac) + self.w_t1 * t_frac
            w_d = self.w_d0 * (1.0 - d_frac) + self.w_d1 * d_frac
            x = embedded[index]
            hidden = (w_t @ x + w_d @ x + self.w_h @ hidden).tanh()
            prev = visit
        return self.head(hidden)
