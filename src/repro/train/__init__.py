"""Training loop and configuration."""

from .trainer import TrainConfig, Trainer, TrainHistory

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]
