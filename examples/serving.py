"""Serving tour: checkpoint a model, run the async HTTP server, query it.

The serving slice of the API tour (quickstart.py covers train/eval).
Everything here also works from the shell::

    repro train nyc --save model.npz
    repro serve --checkpoint model.npz --port 8151
    curl -s localhost:8151/predict -d '{"user_id": 7, "prefix": [3, 9], "k": 5}'
    curl -s localhost:8151/stats

Runs in about a minute on a laptop CPU:

    python examples/serving.py
"""

import json
import threading
import urllib.request

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.serve import HttpFrontend, InferenceServer, ServerConfig, save_checkpoint
from repro.train import TrainConfig, Trainer
from repro.utils import spawn


def post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    # 1. Train briefly and save a checkpoint (in real deployments the
    #    server starts from `repro train ... --save model.npz`).
    dataset = build_dataset("nyc", seed=7, scale=0.3, imagery_resolution=32)
    splits = split_samples(make_samples(dataset), seed=7)
    model = TSPNRA.from_dataset(
        dataset, TSPNRAConfig(dim=32, fusion_layers=1, hgat_layers=1, top_k=10), rng=spawn(7)
    )
    Trainer(
        model, TrainConfig(epochs=3, batch_size=8, lr=5e-3, max_train_samples=200, seed=7)
    ).fit(splits.train)
    checkpoint = save_checkpoint(model, "serving_demo.npz", dataset=dataset)
    print(f"checkpoint saved to {checkpoint}")

    # 2. The async serving runtime: a worker pool of Predictor replicas
    #    sharing the checkpoint's weights, fed by a dynamic micro-batch
    #    scheduler (flush at 16 requests or 5 ms, whichever first), with
    #    a bounded admission queue.  `repro serve` wraps exactly this.
    config = ServerConfig(workers=2, max_batch_size=16, max_wait_ms=5.0, max_queue=256)
    with InferenceServer(model, config=config, dataset=dataset) as server:
        with HttpFrontend(server, port=0) as front:  # port=0: ephemeral
            print(f"serving on {front.url}")

            # 3. /healthz — liveness plus the weights version token.
            print("healthz:", get(front.url + "/healthz"))

            # 4. /predict — one user's in-progress trajectory.  Visits
            #    are {"poi_id", "timestamp"} objects, or bare POI ids
            #    when only the order matters; "history" holds earlier
            #    trajectories and feeds the QR-P graph.
            sample = next((s for s in splits.test if s.history), splits.test[0])
            body = post(
                front.url + "/predict",
                {
                    "user_id": sample.user_id,
                    "prefix": [
                        {"poi_id": v.poi_id, "timestamp": v.timestamp} for v in sample.prefix
                    ],
                    "history": [
                        [{"poi_id": v.poi_id, "timestamp": v.timestamp} for v in t.visits]
                        for t in sample.history
                    ],
                    "target": {
                        "poi_id": sample.target.poi_id,
                        "timestamp": sample.target.timestamp,
                    },
                    "k": 5,
                },
            )
            print(f"predict: top-5 {body['top_pois']}, target ranked {body['poi_rank']}")

            # 5. /recommend — the target-less live flavour.
            body = post(
                front.url + "/recommend",
                {"user_id": 0, "prefix": [v.poi_id for v in sample.prefix], "k": 5},
            )
            print(f"recommend: {body['recommendations']}")

            # 6. Concurrent clients are what the scheduler is for: these
            #    eight threads' requests coalesce into micro-batches.
            def client(index):
                s = splits.test[index % len(splits.test)]
                post(front.url + "/predict",
                     {"user_id": s.user_id, "prefix": [v.poi_id for v in s.prefix]})

            threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            # 7. /stats — queue depth and rejections (admission control),
            #    batch sizes, and per-request p50/p95/p99 latency.
            stats = get(front.url + "/stats")
            print(
                f"stats: {stats['requests']['completed']} requests in "
                f"{stats['batches']['count']} batches "
                f"(mean size {stats['batches']['mean_size']:.1f}), "
                f"request p99 {stats['requests']['p99_ms']:.2f} ms"
            )

            # 8. Hot weight reload: POST /reload swaps the checkpoint's
            #    weights into every worker (shared parameters), bumping
            #    weights_version so cached embeddings refresh themselves.
            print("reload:", post(front.url + "/reload", {"checkpoint": str(checkpoint)}))
    # leaving the `with` blocks drained in-flight requests and stopped
    # the pool and the HTTP listener.
    print("server drained and stopped")


if __name__ == "__main__":
    main()
