"""repro.obs — zero-dependency observability for the serving stack.

Five layers, importable with no dependency on the rest of :mod:`repro`
(so :mod:`repro.core.model` can open spans without an import cycle):

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket mergeable
  histograms, and sliding-window counters in a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — trace/span request timelines with
  thread-local, future-hand-off, and cross-process (carrier dict)
  propagation, plus the :class:`SlowRing` behind ``/debug/slow``;
* :mod:`repro.obs.expo` — Prometheus text rendering/parsing and the
  scrape differ behind ``repro obs-report``;
* :mod:`repro.obs.quality` — live prequential Recall@K/MRR/NDCG joined
  from the ingest stream, stratified by cold-start bucket;
* :mod:`repro.obs.drift` — PSI/KL input-drift gauges vs a frozen
  reference window.
"""

from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedCounter,
    get_registry,
    merge_histogram_snapshots,
    merge_windowed_snapshots,
    snapshot_percentile,
)
from .tracing import (
    SlowRing,
    Span,
    Trace,
    activate,
    current_trace,
    maybe_trace,
    span,
    span_creation_count,
)
from .expo import diff_scrapes, format_report, parse_prometheus, render_prometheus
from .quality import STRATA, QualityMonitor, cold_start_stratum
from .drift import DriftDetector

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedCounter",
    "MetricsRegistry",
    "get_registry",
    "merge_histogram_snapshots",
    "merge_windowed_snapshots",
    "snapshot_percentile",
    "SlowRing",
    "Span",
    "Trace",
    "activate",
    "current_trace",
    "maybe_trace",
    "span",
    "span_creation_count",
    "diff_scrapes",
    "format_report",
    "parse_prometheus",
    "render_prometheus",
    "QualityMonitor",
    "cold_start_stratum",
    "STRATA",
    "DriftDetector",
]
