"""GRU baseline [Cho et al., ref 34].

Plain gated recurrent network over the prefix sequence; the final
hidden state scores the full POI vocabulary through a linear head.
The trunk is purely sequential, so ``score_batch`` runs one padded
batch through the batch-aware GRU and gathers each sample's hidden
state at its true last step — identical logits, one pass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import Tensor, cross_entropy
from ..data.trajectory import PredictionSample
from ..nn import GRU, Linear
from ..utils.rng import default_rng
from .base import NextPOIBaseline, SequenceEmbedder, last_hidden_batch


class GRUBaseline(NextPOIBaseline):
    name = "GRU"

    def __init__(self, num_pois: int, dim: int = 64, rng=None):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.embedder = SequenceEmbedder(num_pois, dim, rng=rng)
        self.rnn = GRU(dim, dim, rng=rng)
        self.head = Linear(dim, num_pois, rng=rng)

    def score(self, sample: PredictionSample) -> Tensor:
        sequence = self.embedder(sample)
        _, hidden = self.rnn(sequence)
        return self.head(hidden)

    def score_batch(self, samples: Sequence[PredictionSample]) -> np.ndarray:
        """Vectorised scoring: padded batch through one GRU unroll."""
        return self.head(last_hidden_batch(self.embedder, self.rnn, samples)).data

    def loss_batch(self, samples: Sequence[PredictionSample], *shared) -> Tensor:
        """Summed cross-entropy via one differentiable padded unroll."""
        hidden = last_hidden_batch(self.embedder, self.rnn, samples)
        targets = np.asarray([s.target.poi_id for s in samples], dtype=np.int64)
        return cross_entropy(self.head(hidden), targets, reduction="sum")
