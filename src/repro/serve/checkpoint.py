"""Model persistence: config + weights + dataset recipe in one file.

A checkpoint is a compressed ``.npz`` holding

* ``__meta__`` — JSON: format version, model name, model config and
  the dataset build recipe (the ``build_dataset`` keyword arguments);
* ``param::<name>`` — every entry of ``model.state_dict()``;
* ``extra::<name>`` — non-parameter arrays the model needs at
  inference time (``model.extra_state()``, e.g. Graph-Flashback's
  fitted transition matrix or MC's count tables).

``load_checkpoint`` rebuilds the dataset from the recipe (or reuses a
caller-provided one), reconstructs the model through the same factory
paths the experiment harness uses, and restores the weights — so a
trained model round-trips with bit-identical evaluation metrics.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

CHECKPOINT_FORMAT = 1
_PARAM = "param::"
_EXTRA = "extra::"


@dataclass
class LoadedCheckpoint:
    """What ``load_checkpoint`` returns: the restored model plus context."""

    model: Any
    dataset: Any
    meta: Dict[str, Any]


def _model_meta(model) -> Dict[str, Any]:
    from ..baselines import BASELINE_NAMES
    from ..core.model import TSPNRA

    if isinstance(model, TSPNRA):
        return {"model_name": model.name, "model_config": asdict(model.config)}
    if model.name not in BASELINE_NAMES:
        # fail at save time, not with a silently unloadable file
        raise ValueError(
            f"cannot checkpoint {type(model).__name__} (name={model.name!r}): "
            "load_checkpoint reconstructs models via make_baseline, so the "
            "name must be registered in repro.baselines.BASELINE_NAMES"
        )
    if not model.requires_gradient_training:  # count-based models (MC)
        return {"model_name": model.name, "model_config": {"smoothing": model.smoothing}}
    return {"model_name": model.name, "model_config": {"dim": model.dim}}


def save_checkpoint(model, path, dataset=None) -> Path:
    """Serialise ``model`` (and the dataset recipe, if given) to ``path``.

    Passing ``dataset`` records its build arguments so the checkpoint
    is self-contained; without it, ``load_checkpoint`` requires the
    caller to supply a compatible dataset.
    """
    meta: Dict[str, Any] = {"format": CHECKPOINT_FORMAT, "num_pois": model.num_pois}
    meta.update(_model_meta(model))
    if dataset is not None:
        if dataset.build_args is None:
            raise ValueError("dataset has no build recipe; construct it via build_dataset()")
        meta["dataset"] = dataset.build_args
    arrays = {_PARAM + name: value for name, value in model.state_dict().items()}
    arrays.update({_EXTRA + name: value for name, value in model.extra_state().items()})
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, __meta__=np.array(json.dumps(meta)), **arrays)
    return path


def read_checkpoint(path):
    """Raw ``(meta, params, extra)`` of a checkpoint file, no rebuild.

    The weights-only read path: hot weight reload
    (:meth:`repro.serve.InferenceServer.reload_weights`) swaps new
    parameters into an already-constructed model without paying for a
    dataset rebuild, and :func:`load_checkpoint` builds on it.
    """
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(data["__meta__"].item())
        params = {k[len(_PARAM):]: data[k] for k in data.files if k.startswith(_PARAM)}
        extra = {k[len(_EXTRA):]: data[k] for k in data.files if k.startswith(_EXTRA)}
    found = meta.get("format")
    if found != CHECKPOINT_FORMAT:
        raise ValueError(
            f"checkpoint {path!s} uses format {found!r}, but this build "
            f"supports format {CHECKPOINT_FORMAT}; re-save it with a repro "
            "version whose CHECKPOINT_FORMAT matches"
        )
    return meta, params, extra


def apply_extra_state(model, extra: Dict[str, np.ndarray], strict: bool = True) -> Dict:
    """Feed ``extra::`` arrays into the model's persistence hook.

    ``strict=True`` passes everything through, so a key the model does
    not consume raises (the model's ``load_extra_state`` rejects
    leftovers).  ``strict=False`` is the forward-compatible weights-only
    path: only the keys the model itself would *write* today (its
    ``extra_state()`` key set) are applied, and unknown ``extra::``
    entries — e.g. side-state introduced by a newer schema — are
    returned rather than raised, so old builds can still serve new
    checkpoints' weights.
    """
    if strict:
        model.load_extra_state(extra)
        return {}
    known = set(model.extra_state())
    model.load_extra_state({k: v for k, v in extra.items() if k in known})
    return {k: v for k, v in extra.items() if k not in known}


def build_dataset_from_meta(meta, path="<checkpoint>"):
    """Rebuild the dataset a checkpoint's ``meta`` recipe describes.

    Shard workers call this directly: the recipe is seeded, so every
    worker rebuilds the *identical* dataset without shipping it across
    the process boundary.
    """
    from ..data import build_dataset

    recipe = meta.get("dataset")
    if recipe is None:
        raise ValueError("checkpoint carries no dataset recipe; pass dataset=")
    try:
        return build_dataset(**recipe)
    except (KeyError, TypeError) as error:
        # An unknown preset name surfaces as a bare KeyError deep in
        # build_dataset, and a recipe written by a newer schema can
        # carry arguments this build_dataset doesn't accept — both
        # mean "this checkpoint's dataset isn't available here".
        raise ValueError(
            f"checkpoint {path!s}: cannot rebuild its dataset from recipe "
            f"{recipe!r}: {error}"
        ) from error


def build_model_from_meta(meta, dataset, rng=None):
    """Construct the (unweighted) model skeleton ``meta`` describes.

    The factory half of :func:`load_checkpoint`, exposed for callers
    that source weights elsewhere — e.g. cluster workers adopting
    shared-memory views instead of re-reading the ``.npz``.
    """
    from ..baselines import make_baseline
    from ..baselines.markov import MarkovChain
    from ..core.config import TSPNRAConfig
    from ..core.model import TSPNRA

    num_pois = len(dataset.city.pois)
    if num_pois != meta["num_pois"]:
        raise ValueError(
            f"dataset has {num_pois} POIs but the checkpoint was trained on {meta['num_pois']}"
        )
    name = meta["model_name"]
    config = meta["model_config"]
    if name == TSPNRA.name:
        return TSPNRA.from_dataset(dataset, TSPNRAConfig(**config), rng=rng)
    if name == MarkovChain.name:
        return MarkovChain(num_pois, **config)
    locations = np.array(
        [dataset.spec.bbox.normalize(x, y) for x, y in dataset.city.pois.xy]
    )
    return make_baseline(name, num_pois, locations, dim=config["dim"], rng=rng)


def load_checkpoint(path, dataset=None, rng=None, strict: bool = True) -> LoadedCheckpoint:
    """Restore a model saved by :func:`save_checkpoint`.

    ``dataset`` skips the rebuild when the caller already holds the
    (identical) dataset the model was trained on.  ``strict=False``
    tolerates unknown ``extra::`` keys (see :func:`apply_extra_state`);
    the ignored key names land in ``meta["ignored_extra"]`` so callers
    can surface them.
    """
    meta, params, extra = read_checkpoint(path)
    if dataset is None:
        dataset = build_dataset_from_meta(meta, path=path)
    model = build_model_from_meta(meta, dataset, rng=rng)
    model.load_state_dict(params)
    ignored = apply_extra_state(model, extra, strict=strict)
    if ignored:
        meta = {**meta, "ignored_extra": sorted(ignored)}
    model.eval()
    return LoadedCheckpoint(model=model, dataset=dataset, meta=meta)
