"""Focused tests for the two-step prediction helpers."""

import numpy as np
import pytest

from repro.core.two_step import (
    candidate_pois,
    rank_by_cosine,
    rank_of_target,
    rank_pois,
    rank_tiles,
    select_tiles,
)


class _FakeTileSystem:
    def __init__(self, mapping):
        self._mapping = mapping

    def pois_in_leaf(self, leaf):
        return list(self._mapping.get(leaf, []))


class TestRanking:
    def test_rank_by_cosine_scale_invariant(self):
        out = np.array([2.0, 1.0])
        cands = np.random.default_rng(0).normal(size=(6, 2))
        a = rank_by_cosine(out, cands)
        b = rank_by_cosine(out * 100.0, cands * 0.01)
        assert np.array_equal(a, b)

    def test_rank_by_cosine_stable_on_ties(self):
        out = np.array([1.0, 0.0])
        cands = np.array([[2.0, 0.0], [2.0, 0.0]])  # identical rows: exact tie
        assert list(rank_by_cosine(out, cands)) == [0, 1]

    def test_select_tiles_top_k(self):
        out = np.array([1.0, 0.0])
        leaf_ids = [10, 20, 30]
        embeddings = np.array([[0.0, 1.0], [1.0, 0.0], [0.7, 0.7]])
        assert select_tiles(out, embeddings, leaf_ids, k=2) == [20, 30]

    def test_rank_tiles_full_list(self):
        out = np.array([1.0, 0.0])
        leaf_ids = [10, 20]
        embeddings = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert rank_tiles(out, embeddings, leaf_ids) == [20, 10]


class TestCandidates:
    def test_candidate_pois_concatenates_in_tile_order(self):
        system = _FakeTileSystem({1: [5, 6], 2: [7]})
        assert candidate_pois(system, [2, 1]) == [7, 5, 6]

    def test_empty_tiles_yield_empty(self):
        system = _FakeTileSystem({})
        assert candidate_pois(system, [1, 2]) == []

    def test_rank_pois_empty_candidates(self):
        assert rank_pois(np.array([1.0, 0.0]), np.zeros((0, 2)), []) == []

    def test_rank_pois_orders_by_similarity(self):
        out = np.array([1.0, 0.0])
        ids = [100, 200]
        emb = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert rank_pois(out, emb, ids) == [200, 100]


class TestRankOfTarget:
    def test_found(self):
        assert rank_of_target([4, 2, 9], 9) == 3

    def test_missing_is_len_plus_one(self):
        assert rank_of_target([], 1) == 1  # |R|+1 with empty R
        assert rank_of_target([2, 3], 9) == 3
