"""Shard worker subprocesses: one durable ``InferenceServer`` each.

A :class:`ShardWorker` subprocess owns one consistent-hash shard of the
user space: its own :class:`~repro.stream.state.UserStateStore`, its
own event log + snapshots under ``<persist>/shard-NN/``, and a full
:class:`~repro.serve.server.InferenceServer` (micro-batch scheduler and
predictor pool) whose model weights are zero-copy views into the
parent's shared-memory block (:mod:`repro.cluster.sharedmem`).

Startup is recovery: the worker main rebuilds the dataset from the
checkpoint recipe (deterministic — every shard and every restart sees
the identical dataset), attaches the shared weights, folds its
persistence directory back into a store, and only then reports ready.
A SIGKILLed shard restarted by the supervisor therefore comes back
with the exact acknowledged ``state_version``s it died with.

Two pipes per worker keep supervision honest: data operations
(check-ins, predictions) travel the *data* pipe, while heartbeats and
stats travel the *control* pipe, serviced by a dedicated thread — a
shard grinding through a deep batch queue still answers pings.

Start method defaults to ``spawn``: forking a parent that already runs
scheduler/HTTP threads would snapshot locks in unknown states.  The
worker entry point and :class:`WorkerSpec` are module-level and
plain-data for exactly that reason.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import signal
import threading
import time
import traceback
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..obs.tracing import Trace, activate, span
from ..stream.events import event_from_json
from ..stream.state import StoreConfig
from .recovery import DurableIngest, recover_store
from .sharedmem import SharedWeights, assign_shared_parameters
from .wal import EventLogWriter

logger = logging.getLogger("repro.cluster.worker")

DEFAULT_START_METHOD = "spawn"
READY_TIMEOUT_S = 60.0


class ShardError(RuntimeError):
    """A shard failed to start, died, or stopped answering."""


@dataclass
class WorkerSpec:
    """Everything a shard worker needs, shippable through ``spawn``.

    The checkpoint travels as ``meta`` (JSON-safe dict) plus the
    shared-memory ``manifest`` — never as weight arrays.  Store and
    server knobs are plain fields so the spec pickles under any start
    method.
    """

    shard_index: int
    persist_dir: str
    checkpoint_meta: Dict
    weights_manifest: Dict
    fsync: str = "rotate"
    snapshot_interval: int = 1000
    segment_max_records: int = 10000
    store_shards: int = 4
    max_sessions: int = 64
    max_session_visits: int = 512
    gap_hours: float = 72.0
    server_workers: int = 1
    max_batch_size: int = 16
    max_wait_ms: float = 2.0
    max_queue: int = 256
    request_timeout_s: float = 30.0
    compile: bool = True
    plan_dtype: str = "float64"
    trace_sample: float = 0.0
    quality_window: float = 3600.0
    quality_topk: int = 20

    def store_config(self) -> StoreConfig:
        return StoreConfig(
            num_shards=self.store_shards,
            max_sessions=self.max_sessions,
            max_session_visits=self.max_session_visits,
            gap_hours=self.gap_hours,
        )


def _error(code: int, error: Exception) -> Dict:
    return {"ok": False, "code": code, "error": str(error)}


class _WorkerRuntime:
    """The in-process half of a shard worker (also used by tests directly)."""

    def __init__(self, spec: WorkerSpec):
        from ..serve.checkpoint import build_dataset_from_meta, build_model_from_meta
        from ..serve.protocol import result_to_json, sample_from_json
        from ..serve.server import InferenceServer, ServerConfig

        self._result_to_json = result_to_json
        self._sample_from_json = sample_from_json
        self.spec = spec
        self.weights = SharedWeights.attach(spec.weights_manifest)
        dataset = build_dataset_from_meta(spec.checkpoint_meta)
        model = build_model_from_meta(spec.checkpoint_meta, dataset)
        assign_shared_parameters(model, self.weights.arrays())
        model.eval()
        self.recovery = recover_store(spec.persist_dir, config=spec.store_config())
        self.log = EventLogWriter(
            spec.persist_dir,
            fsync=spec.fsync,
            segment_max_records=spec.segment_max_records,
            next_seq=self.recovery.last_seq + 1,
        )
        self.ingest = DurableIngest(
            store=self.recovery.store,
            log=self.log,
            snapshot_interval=spec.snapshot_interval,
        )
        self.server = InferenceServer(
            model,
            config=ServerConfig(
                workers=spec.server_workers,
                max_batch_size=spec.max_batch_size,
                max_wait_ms=spec.max_wait_ms,
                max_queue=spec.max_queue,
                request_timeout_s=spec.request_timeout_s,
                compile=spec.compile,
                plan_dtype=spec.plan_dtype,
                trace_sample=spec.trace_sample,
                quality_window=spec.quality_window,
                quality_topk=spec.quality_topk,
            ),
            dataset=dataset,
            ingest=self.ingest,
        )
        self.server.start()
        # First-prediction warmup: a fresh interpreter pays one-time
        # costs on its first batch (graph construction, numpy buffer
        # and cache allocation) that are ~10x a steady-state predict.
        # Paying them on a throwaway sample here moves that stall into
        # startup — before the ready ack, so a shard never joins the
        # ring cold.
        warmup = self._sample_from_json(
            {"prefix": [0]}, num_pois=self.server.num_pois
        )
        self.server.predict(warmup, timeout=spec.request_timeout_s)

    # ------------------------------------------------------------------
    # operations (each returns a JSON-safe reply dict)
    # ------------------------------------------------------------------
    def handle(self, request: Dict) -> Dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return _error(400, ValueError(f"unknown op {op!r}"))
        # Cross-process tracing: a sampled router request ships a
        # carrier dict; the shard joins the trace, records its spans
        # (op envelope, scheduler queue wait, model stages, WAL append)
        # and returns them in the reply for the router to graft under
        # its routing span.  Unsampled requests skip all of it.
        child = Trace.from_carrier(request.get("trace"))
        try:
            if child is None:
                return handler(request)
            with activate(child):
                with span(f"shard.{op}", shard=self.spec.shard_index):
                    reply = handler(request)
            reply["spans"] = child.export_spans()
            return reply
        except Exception as error:  # a bug in the op, not the transport
            logger.exception("shard %d op %r failed", self.spec.shard_index, op)
            return _error(500, error)

    def _op_checkin(self, request: Dict) -> Dict:
        try:
            event = event_from_json(request["event"], num_pois=self.server.num_pois)
        except ValueError as error:
            return _error(400, error)
        try:
            result = self.ingest.ingest(event)
        except ValueError as error:
            # out-of-order arrival: same conflict the single-process
            # tier maps to HTTP 409 — the router propagates it unchanged
            return _error(409, error)
        # keep the WAL bounded even when check-ins arrive one at a time
        # (streamed batches also compact at their tail)
        self.ingest.maybe_snapshot()
        return {"ok": True, "result": result.as_dict()}

    def _op_predict(self, request: Dict) -> Dict:
        user_id = request.get("user_id")
        k = request.get("k", 10)
        try:
            future = self.server.submit_user(user_id)
        except KeyError:
            return _error(404, KeyError(f"no check-in state for user {user_id}"))
        except ValueError as error:
            return _error(400, error)
        return self._await(future, k)

    def _op_predict_raw(self, request: Dict) -> Dict:
        try:
            sample = self._sample_from_json(
                request["payload"], num_pois=self.server.num_pois
            )
        except ValueError as error:
            return _error(400, error)
        try:
            future = self.server.submit(sample)
        except ValueError as error:
            return _error(400, error)
        return self._await(future, request.get("k", 10))

    def _await(self, future, k: int) -> Dict:
        from ..serve.scheduler import QueueFullError, SchedulerClosedError

        try:
            result = future.result(self.spec.request_timeout_s)
        except FutureTimeoutError as error:
            future.cancel()
            return _error(504, error)
        except QueueFullError as error:
            return _error(429, error)
        except SchedulerClosedError as error:
            return _error(503, error)
        except Exception as error:
            return _error(500, error)
        return {"ok": True, "result": self._result_to_json(result, k=k)}

    def _op_stream(self, request: Dict) -> Dict:
        """Batched ingest with pipelined interleaved predictions.

        One pipe round-trip carries many events (the bench's unit of
        work): each event is acknowledged individually, and every
        ``predict_every``-th event is followed by a history-less
        prediction for its user.  Predictions are *submitted* inline —
        ``submit_user`` snapshots the store at submit time, so the
        result reflects exactly the state after that event — but
        resolved lazily through a bounded window, letting the
        micro-batch scheduler coalesce them across users while the
        ingest loop keeps running (the same pipelining the in-process
        prequential replay gets from ``predict_batch``).
        """
        from collections import deque

        from ..serve.scheduler import QueueFullError, SchedulerClosedError

        predict_every = request.get("predict_every", 0)
        k = request.get("k", 10)
        acks: List[Dict] = []
        predictions: List[Dict] = []
        pending: deque = deque()
        max_pending = max(4 * self.spec.max_batch_size, 8)

        def drain_one() -> None:
            user, future = pending.popleft()
            predictions.append({"user_id": user, **self._await(future, k)})

        for index, payload in enumerate(request["events"]):
            ack = self._op_checkin({"event": payload})
            acks.append(ack)
            if predict_every and ack["ok"] and (index + 1) % predict_every == 0:
                user = payload["user_id"]
                try:
                    future = self.server.submit_user(user)
                except (QueueFullError, SchedulerClosedError) as error:
                    predictions.append({"user_id": user, **_error(429, error)})
                    continue
                pending.append((user, future))
                if len(pending) >= max_pending:
                    drain_one()
        while pending:
            drain_one()
        self.ingest.maybe_snapshot()
        return {"ok": True, "acks": acks, "predictions": predictions}

    def _op_versions(self, request: Dict) -> Dict:
        store = self.ingest.store
        versions = {
            str(user): {
                "state_version": store.state_version(user),
                "history_version": store.snapshot(user).history_version,
            }
            for user in store.users()
        }
        return {"ok": True, "users": versions}

    def _op_snapshot(self, request: Dict) -> Dict:
        path = self.ingest.maybe_snapshot(force=True)
        return {"ok": True, "snapshot": path.name if path else None}

    def _op_stats(self, request: Dict) -> Dict:
        stats = self.server.stats()
        stats["shard"] = self.spec.shard_index
        stats["recovery"] = self.recovery.as_dict()
        return {"ok": True, "stats": stats}

    def _op_metrics(self, request: Dict) -> Dict:
        """Registry snapshot for the router's /metrics aggregation.

        JSON-safe instrument dumps travel the control pipe; the router
        stamps each with a ``shard`` label before rendering, so one
        scrape shows the whole ring side by side."""
        return {
            "ok": True,
            "shard": self.spec.shard_index,
            "metrics": self.server.registry.snapshot(),
        }

    def _op_quality(self, request: Dict) -> Dict:
        """The shard's prequential-quality/drift report (control pipe).

        The per-stratum blocks carry raw windowed sums, so the router
        merges shard reports by addition and recomputes cluster-wide
        ratios — never averaging per-shard ratios.
        """
        return {
            "ok": True,
            "shard": self.spec.shard_index,
            "quality": self.server.quality_report(),
        }

    def _op_slow(self, request: Dict) -> Dict:
        """The shard's own slow-trace exemplars (local sampling only)."""
        return {
            "ok": True,
            "shard": self.spec.shard_index,
            "slow": self.server.slow_requests(request.get("n", 10)),
        }

    def _op_ping(self, request: Dict) -> Dict:
        return {"ok": True, "pong": request.get("nonce")}

    def close(self, final_snapshot: bool = True) -> None:
        self.server.stop()
        if final_snapshot:
            self.ingest.maybe_snapshot(force=True)
        self.log.close()
        self.weights.close()


def _control_loop(runtime: _WorkerRuntime, conn) -> None:
    """Service ping/stats on the control pipe until it closes."""
    try:
        while True:
            request = conn.recv()
            conn.send(runtime.handle(request))
    except (EOFError, OSError):
        return


def _shard_worker_main(spec: WorkerSpec, data_conn, ctl_conn) -> None:
    """Entry point of the shard subprocess (module-level for spawn)."""
    # A terminal Ctrl-C signals the whole foreground process group;
    # shards must not die on it mid-write or the parent's graceful
    # shutdown (drain + final snapshot) never reaches them.  The
    # parent coordinates shutdown over the control pipe — or SIGKILL,
    # which is what the recovery path is for.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    logging.basicConfig(level=logging.WARNING)
    try:
        runtime = _WorkerRuntime(spec)
    except Exception as error:
        payload = _error(500, error)
        payload["traceback"] = traceback.format_exc()
        try:
            ctl_conn.send(payload)
        except OSError:
            pass
        return
    ctl_conn.send({"ok": True, "ready": True, "recovery": runtime.recovery.as_dict()})
    control = threading.Thread(
        target=_control_loop,
        args=(runtime, ctl_conn),
        name=f"shard-{spec.shard_index}-control",
        daemon=True,
    )
    control.start()
    try:
        while True:
            try:
                request = data_conn.recv()
            except (EOFError, OSError):
                # parent went away: persist what we have and exit
                runtime.close(final_snapshot=True)
                return
            if request.get("op") == "shutdown":
                runtime.close(final_snapshot=True)
                try:
                    data_conn.send({"ok": True, "stopped": True})
                except OSError:
                    pass
                return
            data_conn.send(runtime.handle(request))
    finally:
        try:
            data_conn.close()
        except OSError:
            pass


class ShardHandle:
    """Parent-side proxy for one shard worker process.

    ``request`` serialises data-pipe round-trips under a lock (any
    router thread may call in); ``ping``/``control_stats`` use the
    control pipe so they bypass a busy data plane.  A transport error
    or timeout marks the shard dead — the supervisor decides whether
    to restart it.

    Connections are generation-tagged: each successful ``start`` bumps
    the generation, and a failure observed on a previous generation's
    conn (a request that was in flight across a restart) is ignored by
    ``_mark_dead`` — it says nothing about the freshly started process,
    and honouring it would stamp a healthy shard dead until the next
    heartbeat pass needlessly restarted it.
    """

    def __init__(self, spec: WorkerSpec, context=None):
        self.spec = spec
        self._ctx = context or mp.get_context(DEFAULT_START_METHOD)
        self._process = None
        self._data_conn = None
        self._ctl_conn = None
        self._data_lock = threading.Lock()
        self._ctl_lock = threading.Lock()
        self._state_lock = threading.Lock()  # conns + generation + dead_reason
        self._generation = 0
        self.dead_reason: Optional[str] = None
        self.restarts = 0
        self.last_recovery: Optional[Dict] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: float = READY_TIMEOUT_S) -> Dict:
        """Spawn the worker and block until it reports ready."""
        if self.alive:
            raise ShardError(f"shard {self.spec.shard_index} already running")
        parent_data, child_data = self._ctx.Pipe()
        parent_ctl, child_ctl = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(self.spec, child_data, child_ctl),
            name=f"repro-shard-{self.spec.shard_index}",
            daemon=True,
        )
        process.start()
        child_data.close()
        child_ctl.close()
        if not parent_ctl.poll(timeout):
            process.kill()
            raise ShardError(
                f"shard {self.spec.shard_index} not ready after {timeout}s"
            )
        ready = parent_ctl.recv()
        if not ready.get("ok"):
            process.join(5.0)
            raise ShardError(
                f"shard {self.spec.shard_index} failed to start: "
                f"{ready.get('error')}\n{ready.get('traceback', '')}"
            )
        with self._state_lock:
            self._process = process
            self._data_conn = parent_data
            self._ctl_conn = parent_ctl
            self._generation += 1
            self.dead_reason = None
        self.last_recovery = ready.get("recovery")
        return ready

    @property
    def alive(self) -> bool:
        return (
            self._process is not None
            and self._process.is_alive()
            and self.dead_reason is None
        )

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def _mark_dead(self, reason: str, generation: Optional[int] = None) -> None:
        """Stamp the shard dead — unless the failure was observed on a
        conn from a previous generation, i.e. a request that was in
        flight while the shard restarted underneath it."""
        with self._state_lock:
            if generation is not None and generation != self._generation:
                return
            self.dead_reason = reason

    def _roundtrip(self, plane: str, payload: Dict, timeout: float) -> Dict:
        # conn and generation must be read atomically: a restart between
        # the two reads would pair the old conn with the new generation,
        # letting its failure falsely kill the fresh process
        with self._state_lock:
            conn = self._data_conn if plane == "data" else self._ctl_conn
            generation = self._generation
            dead_reason = self.dead_reason
        if conn is None or dead_reason is not None:
            raise ShardError(
                f"shard {self.spec.shard_index} is down ({dead_reason})"
            )
        lock = self._data_lock if plane == "data" else self._ctl_lock
        with lock:
            try:
                conn.send(payload)
                if not conn.poll(timeout):
                    self._mark_dead(f"timeout on {payload.get('op')!r}", generation)
                    raise ShardError(
                        f"shard {self.spec.shard_index} timed out on "
                        f"{payload.get('op')!r} after {timeout}s"
                    )
                return conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
                self._mark_dead(f"{type(error).__name__}: {error}", generation)
                raise ShardError(
                    f"shard {self.spec.shard_index} transport failed: {error}"
                ) from error

    def request(self, payload: Dict, timeout: float = 60.0) -> Dict:
        """One data-plane round-trip (check-ins, predictions, streams)."""
        return self._roundtrip("data", payload, timeout)

    def ping(self, timeout: float = 5.0) -> bool:
        try:
            reply = self._roundtrip("control", {"op": "ping"}, timeout)
            return bool(reply.get("ok"))
        except ShardError:
            return False

    def control_stats(self, timeout: float = 30.0) -> Dict:
        return self._roundtrip("control", {"op": "stats"}, timeout)

    def control_metrics(self, timeout: float = 30.0) -> Dict:
        """Registry snapshot over the control pipe (/metrics aggregation)."""
        return self._roundtrip("control", {"op": "metrics"}, timeout)

    def control_quality(self, timeout: float = 30.0) -> Dict:
        """Quality/drift report over the control pipe (/quality merge)."""
        return self._roundtrip("control", {"op": "quality"}, timeout)

    def control_slow(self, n: int = 10, timeout: float = 30.0) -> Dict:
        """The shard's slow-trace exemplars over the control pipe."""
        return self._roundtrip("control", {"op": "slow", "n": n}, timeout)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful stop: drain, final snapshot, exit."""
        if self._process is None:
            return
        try:
            if self.dead_reason is None:
                self.request({"op": "shutdown"}, timeout=timeout)
        except ShardError:
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(5.0)
        self._close_conns()
        self._mark_dead("shutdown")

    def kill(self) -> None:
        """SIGKILL, no warning — the crash the recovery path is for."""
        if self._process is not None:
            self._process.kill()
            self._process.join(10.0)
        self._close_conns()
        self._mark_dead("killed")

    def restart(self, timeout: float = READY_TIMEOUT_S) -> Dict:
        """Start a fresh process over the same persistence directory.

        Requests still blocked on the old conns fail with a transport
        error, but their ``_mark_dead`` carries the old generation and
        is ignored — the restarted shard stays healthy.
        """
        self._close_conns()
        with self._state_lock:
            self._process = None
            self.dead_reason = None
        ready = self.start(timeout=timeout)
        self.restarts += 1
        return ready

    def _close_conns(self) -> None:
        with self._state_lock:
            conns = (self._data_conn, self._ctl_conn)
            self._data_conn = None
            self._ctl_conn = None
        for conn in conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
