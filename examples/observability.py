"""Observability tour: traces, histograms, and scraping the stack.

The serving runtime grew production habits — micro-batching, compiled
plans, WAL durability, a shard ring — and ``repro.obs`` is how you see
any of it working: every layer feeds one :class:`MetricsRegistry`
(counters, gauges, fixed-bucket histograms) and a sampled request
carries a trace through every hand-off — HTTP thread to scheduler
queue to worker batch to the model's encode/rank stages.  Six stops:

1. instruments: observe latencies into a histogram, read exact
   percentiles back (mergeable across workers — no latency lists);
2. a traced request: serve over real HTTP with ``trace_sample=1.0``
   and print the span tree ``GET /debug/slow`` returns — queue wait,
   batch assembly, plan replay, two-step ranking, stage by stage;
3. the scrape: ``GET /metrics`` as Prometheus text — every counter the
   JSON ``/stats`` surface reports, plus bucketed latency series;
4. the diff: two scrapes a few hundred requests apart turned into the
   rate/latency table ``repro obs-report`` prints;
5. the off switch: with ``trace_sample=0.0`` the span hooks allocate
   *nothing* — proven with the Span allocation probe, not a promise;
6. model quality, live: a stateful server records every served top-K,
   the user's next ``POST /checkin`` joins it as the delayed label, and
   the scrape grows prequential ``repro_quality_recall`` /
   ``repro_quality_mrr`` series by cold-start stratum — plus the
   ``GET /quality`` JSON report and the drift detector's PSI gauges.

Runs in under a minute on a laptop CPU:

    python examples/observability.py
"""

import json
import threading
import urllib.request

from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.obs import (
    MetricsRegistry,
    diff_scrapes,
    format_report,
    parse_prometheus,
    span_creation_count,
)
from repro.serve import HttpFrontend, InferenceServer, ServerConfig
from repro.utils import spawn


def post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def get_text(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.read().decode("utf-8")


def print_span(node, depth=0):
    tags = node.get("tags", {})
    tag_text = ("  " + " ".join(f"{k}={v}" for k, v in tags.items())) if tags else ""
    print(
        f"      {'  ' * depth}{node['name']:<24} "
        f"+{node['offset_ms']:7.2f} ms  {node['duration_ms']:7.2f} ms{tag_text}"
    )
    for child in node.get("children", ()):
        print_span(child, depth + 1)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. instruments: a histogram is 17 buckets, not a latency list
    # ------------------------------------------------------------------
    print("=" * 68)
    print("1. the metrics core: fixed-bucket histograms")
    print("=" * 68)
    registry = MetricsRegistry()
    latency = registry.histogram("demo_latency_seconds", "a worked example")
    for i in range(1, 1001):
        latency.observe(0.001 + (i % 50) * 0.0004)  # 1.0 .. 20.6 ms
    p = latency.percentiles((50, 95, 99))
    print(f"   1000 observations -> count={latency.count}, "
          f"p50 {p['p50'] * 1000:.2f} ms, p95 {p['p95'] * 1000:.2f} ms, "
          f"p99 {p['p99'] * 1000:.2f} ms")
    print("   memory: O(buckets) forever; two workers' histograms merge "
          "by adding counts")

    # ------------------------------------------------------------------
    # 2. a traced request through the full serving stack
    # ------------------------------------------------------------------
    print()
    print("=" * 68)
    print("2. one request, every stage: GET /debug/slow")
    print("=" * 68)
    dataset = build_dataset("nyc", seed=7, scale=0.3, imagery_resolution=32)
    splits = split_samples(make_samples(dataset), seed=7)
    model = TSPNRA.from_dataset(
        dataset,
        TSPNRAConfig(dim=32, fusion_layers=1, hgat_layers=1, top_k=10),
        rng=spawn(7),
    )
    model.eval()
    config = ServerConfig(
        workers=2, max_batch_size=8, max_wait_ms=2.0, trace_sample=1.0
    )
    server = InferenceServer(model, config=config).start()
    front = HttpFrontend(server, port=0).start()
    try:
        def fire(count, offset=0):
            def client(index):
                sample = splits.test[(offset + index) % len(splits.test)]
                post(front.url + "/predict", {
                    "user_id": sample.user_id,
                    "prefix": [v.poi_id for v in sample.prefix],
                    "k": 5,
                })

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(count)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        fire(16)
        slow = json.loads(get_text(front.url + "/debug/slow?n=1"))["slow"]
        trace = slow[0]
        print(f"   slowest sampled request {trace['trace_id']} "
              f"({trace['duration_ms']:.2f} ms):")
        for root in trace["spans"]:
            print_span(root)

        # --------------------------------------------------------------
        # 3. the Prometheus scrape
        # --------------------------------------------------------------
        print()
        print("=" * 68)
        print("3. GET /metrics: the same numbers, scrape-able")
        print("=" * 68)
        first_scrape = get_text(front.url + "/metrics")
        interesting = [
            line for line in first_scrape.splitlines()
            if line.startswith(("serve_request_requests_total",
                                "scheduler_queue_depth",
                                "plan_cache_hits_total",
                                "serve_request_batch_latency_seconds_bucket"))
        ]
        for line in interesting[:8]:
            print(f"   {line}")
        print(f"   ... {len(parse_prometheus(first_scrape))} series in all")

        # --------------------------------------------------------------
        # 4. diffing two scrapes: repro obs-report
        # --------------------------------------------------------------
        print()
        print("=" * 68)
        print("4. two scrapes -> one interval report (repro obs-report)")
        print("=" * 68)
        fire(48, offset=16)
        second_scrape = get_text(front.url + "/metrics")
        report = format_report(diff_scrapes(first_scrape, second_scrape),
                               min_delta=0)
        for line in report.splitlines():
            print(f"   {line}")
    finally:
        front.stop()
        server.stop(drain=True)

    # ------------------------------------------------------------------
    # 5. sampling off: allocation-free, not just cheap
    # ------------------------------------------------------------------
    print()
    print("=" * 68)
    print("5. trace_sample=0.0 allocates no spans at all")
    print("=" * 68)
    server = InferenceServer(
        model,
        config=ServerConfig(workers=1, max_batch_size=8, max_wait_ms=2.0,
                            trace_sample=0.0),
    ).start()
    front = HttpFrontend(server, port=0).start()
    try:
        sample = splits.test[0]
        payload = {"user_id": sample.user_id,
                   "prefix": [v.poi_id for v in sample.prefix]}
        post(front.url + "/predict", payload)  # warm every lazy path
        before = span_creation_count()
        for _ in range(20):
            post(front.url + "/predict", payload)
        after = span_creation_count()
        print(f"   20 requests served, Span allocations: {after - before}")
        assert after == before, "sampling-off serving must not allocate spans"
    finally:
        front.stop()
        server.stop(drain=True)
    # ------------------------------------------------------------------
    # 6. model quality: the next check-in grades the last answer
    # ------------------------------------------------------------------
    print()
    print("=" * 68)
    print("6. live prequential quality: GET /quality")
    print("=" * 68)
    from repro.stream import StoreConfig, UserStateStore

    store = UserStateStore(StoreConfig())
    server = InferenceServer(
        model,
        config=ServerConfig(workers=1, max_batch_size=8, max_wait_ms=2.0,
                            quality_window=3600.0, quality_topk=10),
        dataset=dataset,
        state_store=store,
    ).start()
    front = HttpFrontend(server, port=0).start()
    try:
        seen_users = set()
        demo = []
        for sample in splits.test:
            if sample.user_id in seen_users or len(sample.prefix) < 2:
                continue
            seen_users.add(sample.user_id)
            demo.append(sample)
            if len(demo) == 24:
                break
        for sample in demo:
            # replay the prefix as live check-ins, ask for a ranked list,
            # then check the user in where they *actually* went next:
            # that last event is the delayed label and joins the served
            # prediction on the ingest path
            for visit in sample.prefix:
                post(front.url + "/checkin", {
                    "user_id": sample.user_id,
                    "poi_id": visit.poi_id,
                    "timestamp": visit.timestamp,
                })
            post(front.url + "/predict", {"user_id": sample.user_id, "k": 10})
            post(front.url + "/checkin", {
                "user_id": sample.user_id,
                "poi_id": sample.target.poi_id,
                "timestamp": sample.target.timestamp,
            })
        quality = json.loads(get_text(front.url + "/quality"))
        joins = sum(quality["joins"].values())
        assert joins > 0, "the next check-in must join the served prediction"
        overall = quality["strata"]["all"]
        print(f"   {len(demo)} predictions served, {joins} joined by the "
              "user's next check-in")
        print(f"   windowed recall@10 {overall['recall']['10']:.3f}, "
              f"mrr {overall['mrr']:.3f}  (pending {quality['pending']})")
        print("   by cold-start stratum (completed sessions before serving):")
        for stratum in ("0", "1", "2+"):
            s = quality["strata"][stratum]
            print(f"     {stratum:>2}: joins {s['window']['joins']:.0f}, "
                  f"recall@10 {s['recall']['10']:.3f}")
        drift = quality["drift"]
        print(f"   drift: {drift['events']} events sketched, frozen="
              f"{drift['frozen']}, alert={drift['alert']}")
        scrape = get_text(front.url + "/metrics")
        quality_lines = [
            line for line in scrape.splitlines()
            if line.startswith(("repro_quality_recall", "repro_quality_joins"))
        ]
        for line in quality_lines[:6]:
            print(f"   {line}")
        print(f"   ... plus drift PSI/KL gauges, all in the same scrape")
    finally:
        front.stop()
        server.stop(drain=True)

    print()
    print("   the cluster tier speaks the same protocol: the router samples,")
    print("   ships a trace carrier over the shard pipe, and grafts the")
    print("   shard's spans under its routing span; its GET /metrics merges")
    print('   every shard registry with shard="NN" labels, and GET /quality')
    print("   sums the shards' windowed joins/hits before re-dividing.")


if __name__ == "__main__":
    main()
