"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, softmax

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=64
)


def small_arrays(max_dims=2, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_add_commutative(a):
    x, y = Tensor(a), Tensor(a[::-1].copy() if a.ndim == 1 else a.T.copy().reshape(a.shape))
    assert np.allclose((x + y).data, (y + x).data)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sum_grad_is_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(a))


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_linearity_of_grad(a):
    """grad of (2x + 3x) equals grad of 5x."""
    x1 = Tensor(a, requires_grad=True)
    (x1 * 2.0 + x1 * 3.0).sum().backward()
    x2 = Tensor(a, requires_grad=True)
    (x2 * 5.0).sum().backward()
    assert np.allclose(x1.grad, x2.grad)


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_is_distribution(a):
    out = softmax(Tensor(a), axis=-1).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=50, deadline=None)
@given(small_arrays(), finite_floats)
def test_softmax_shift_invariance(a, c):
    base = softmax(Tensor(a), axis=-1).data
    shifted = softmax(Tensor(a + c), axis=-1).data
    assert np.allclose(base, shifted, atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_relu_grad_is_indicator(a):
    x = Tensor(a, requires_grad=True)
    x.relu().sum().backward()
    assert np.allclose(x.grad, (a > 0).astype(float))


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_reshape_preserves_sum_grad(a):
    x = Tensor(a, requires_grad=True)
    x.reshape(-1).sum().backward()
    assert np.allclose(x.grad, np.ones_like(a))


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (3, 4), elements=finite_floats),
    arrays(np.float64, (4, 2), elements=finite_floats),
)
def test_matmul_matches_numpy(a, b):
    out = Tensor(a) @ Tensor(b)
    assert np.allclose(out.data, a @ b)
