"""Fixed-granularity grid index.

This is the partitioning scheme the paper's ablation swaps in for the
quad-tree ("Grid Replace Quad-tree", Table IV).  It exposes the same
tile interface as :class:`~repro.spatial.quadtree.RegionQuadTree` so the
model can be built over either.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..geo import BoundingBox


class GridIndex:
    """Uniform ``n x n`` partition of a region."""

    def __init__(self, bbox: BoundingBox, n: int):
        if n < 1:
            raise ValueError("grid resolution must be >= 1")
        self.bbox = bbox
        self.n = n
        self._cell_w = bbox.width / n
        self._cell_h = bbox.height / n
        self._pois_in_cell: Dict[int, List[int]] = {}
        self._leaf_of_poi: Dict[int, int] = {}

    @classmethod
    def build(cls, bbox: BoundingBox, points: np.ndarray, n: int, poi_ids=None) -> "GridIndex":
        grid = cls(bbox, n)
        points = np.asarray(points, dtype=np.float64)
        ids = list(range(len(points))) if poi_ids is None else list(poi_ids)
        for pid, (x, y) in zip(ids, points):
            cell = grid.leaf_for_point(x, y)
            grid._pois_in_cell.setdefault(cell, []).append(pid)
            grid._leaf_of_poi[pid] = cell
        return grid

    def __len__(self) -> int:
        return self.n * self.n

    def leaves(self) -> List[int]:
        return list(range(self.n * self.n))

    def leaf_for_point(self, x: float, y: float) -> int:
        if not self.bbox.contains_closed(x, y):
            raise ValueError(f"point ({x}, {y}) outside region")
        col = min(int((x - self.bbox.min_x) / self._cell_w), self.n - 1)
        row = min(int((y - self.bbox.min_y) / self._cell_h), self.n - 1)
        return row * self.n + col

    def leaf_of_poi(self, poi_id: int) -> int:
        return self._leaf_of_poi[poi_id]

    def pois_in_leaf(self, cell: int) -> List[int]:
        return list(self._pois_in_cell.get(cell, []))

    def bbox_of(self, cell: int) -> BoundingBox:
        row, col = divmod(cell, self.n)
        return BoundingBox(
            self.bbox.min_x + col * self._cell_w,
            self.bbox.min_y + row * self._cell_h,
            self.bbox.min_x + (col + 1) * self._cell_w,
            self.bbox.min_y + (row + 1) * self._cell_h,
        )

    def neighbors(self, cell: int) -> List[int]:
        """4-neighbourhood, used when the grid stands in for road adjacency."""
        row, col = divmod(cell, self.n)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.n and 0 <= c < self.n:
                out.append(r * self.n + c)
        return out
