"""Ingestion pipeline: append events, roll sessions, retire stale graphs.

:class:`StreamIngest` is the thin layer between arriving
:class:`~repro.stream.events.CheckinEvent`\\ s and the serving stack:

* every event is appended to the :class:`~repro.stream.state.UserStateStore`
  (which rolls sessions at the Δt gap boundary);
* when an append changes a user's completed-session history, the now-
  stale QR-P graph entry is dropped from every registered serving cache
  — **exactly once per ``history_version`` bump**, because the store
  reports the retired key on precisely the append that moved the
  version.  This rides ``state_version`` the same way the shared
  embedding tables ride ``weights_version``: the version is baked into
  the cache key, so even a missed drop can only waste an LRU slot,
  never serve a stale graph.

Registered caches are the per-worker QR-P graph LRUs of an
:class:`~repro.serve.InferenceServer` (or a single offline
:class:`~repro.serve.Predictor` during replay).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from ..utils.cache import LRUCache
from .events import CheckinEvent
from .state import AppendResult, StoreConfig, UserStateStore


class StreamIngest:
    """Append check-ins and keep the serving caches coherent.

    Thread-safe: the store serialises per-user appends on shard locks,
    cache drops go through the locked :class:`LRUCache`, and the
    pipeline's own counters sit behind one small lock.
    """

    def __init__(
        self,
        store: Optional[UserStateStore] = None,
        caches: Iterable[Optional[LRUCache]] = (),
    ):
        self.store = store if store is not None else UserStateStore(StoreConfig())
        self._caches: List[LRUCache] = [c for c in caches if c is not None]
        self._lock = threading.Lock()
        self.events = 0
        self.rollovers = 0
        self.invalidations = 0  # cache entries actually removed

    def register_cache(self, cache: Optional[LRUCache]) -> None:
        """Add a serving-layer graph cache to the invalidation set.

        ``None`` is accepted and ignored so callers can pass
        ``predictor.graph_cache`` unconditionally (models without a
        graph stage have no cache).
        """
        if cache is not None:
            self._caches.append(cache)

    def register_predictor(self, predictor) -> None:
        """Register a :class:`~repro.serve.Predictor`'s graph cache."""
        self.register_cache(getattr(predictor, "graph_cache", None))

    def ingest(self, event: CheckinEvent) -> AppendResult:
        """Append one event; drop the graph-cache key it made stale."""
        result = self.store.append(event)
        dropped = 0
        if result.invalidated_key is not None:
            for cache in self._caches:
                if cache.pop(result.invalidated_key) is not None:
                    dropped += 1
        with self._lock:
            self.events += 1
            if result.session_rolled:
                self.rollovers += 1
            self.invalidations += dropped
        return result

    def ingest_many(self, events: Iterable[CheckinEvent]) -> List[AppendResult]:
        return [self.ingest(event) for event in events]

    def stats(self) -> Dict:
        """Pipeline counters merged with the store's roll-up."""
        with self._lock:
            counters = {
                "ingested": self.events,
                "rollovers": self.rollovers,
                "cache_invalidations": self.invalidations,
                "registered_caches": len(self._caches),
            }
        return {**self.store.stats(), **counters}
