"""Experiment profiles: how much compute a reproduction run spends.

The paper's experiments ran on GPUs against datasets with 10^5–10^6
check-ins; this reproduction runs the same *pipelines* at selectable
scale.  ``quick`` is sized for a laptop-CPU benchmark suite run;
``full`` grows the datasets, model width and training length for
tighter numbers.  Select via the ``REPRO_PROFILE`` environment
variable or explicitly in code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class ExperimentProfile:
    """All scale knobs shared by table/figure runners."""

    name: str
    dataset_scale: float  # multiplies preset users/POIs
    dim: int  # model width d_m
    fusion_layers: int
    hgat_layers: int
    epochs: int
    batch_size: int
    lr: float
    max_train_samples: Optional[int]
    eval_samples: Optional[int]  # cap on test samples per evaluation
    imagery_resolution: int
    seed: int = 0

    def smaller(self, factor: float = 0.5) -> "ExperimentProfile":
        """A reduced copy (used by the heavier sweep figures)."""
        return replace(
            self,
            dataset_scale=self.dataset_scale * factor,
            max_train_samples=(
                None
                if self.max_train_samples is None
                else max(40, int(self.max_train_samples * factor))
            ),
            eval_samples=(
                None
                if self.eval_samples is None
                else max(30, int(self.eval_samples * factor))
            ),
        )


QUICK = ExperimentProfile(
    name="quick",
    dataset_scale=0.6,
    dim=32,
    fusion_layers=1,
    hgat_layers=1,
    epochs=6,
    batch_size=8,
    lr=5e-3,
    max_train_samples=400,
    eval_samples=150,
    imagery_resolution=32,
)

FULL = ExperimentProfile(
    name="full",
    dataset_scale=1.0,
    dim=64,
    fusion_layers=2,
    hgat_layers=2,
    epochs=10,
    batch_size=8,
    lr=2e-3,
    max_train_samples=1500,
    eval_samples=400,
    imagery_resolution=32,
)

_PROFILES = {"quick": QUICK, "full": FULL}


def current_profile() -> ExperimentProfile:
    """Profile selected by ``REPRO_PROFILE`` (default: quick)."""
    name = os.environ.get("REPRO_PROFILE", "quick").lower()
    if name not in _PROFILES:
        raise KeyError(f"REPRO_PROFILE={name!r} unknown; use one of {sorted(_PROFILES)}")
    return _PROFILES[name]


def get_profile(name: str) -> ExperimentProfile:
    return _PROFILES[name]
