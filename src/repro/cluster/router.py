"""The cluster front-end: shard pool ownership, routing, supervision.

:class:`ClusterRouter` is the parent process's brain.  It reads the
checkpoint once, publishes the weights into shared memory, spawns one
:class:`~repro.cluster.worker.ShardHandle` per shard over per-shard
persistence directories (``<persist>/shard-NN/``), and routes every
user-keyed operation through the consistent-hash ring.  A supervisor
thread heartbeats the pool and restarts any shard that dies or stops
answering — the restarted process recovers its durable state before
reporting ready, so a crash costs availability of one shard's users
for the recovery window and nothing else.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import (
    MetricsRegistry,
    SlowRing,
    maybe_trace,
    render_prometheus,
)
from .ring import HashRing
from .sharedmem import SharedWeights
from .wal import FSYNC_POLICIES
from .worker import ShardError, ShardHandle, WorkerSpec

logger = logging.getLogger("repro.cluster.router")


@dataclass
class ClusterConfig:
    """Knobs of the multi-process tier."""

    num_shards: int = 2
    fsync: str = "rotate"
    snapshot_interval: int = 1000
    segment_max_records: int = 10000
    store_shards: int = 4
    max_sessions: int = 64
    max_session_visits: int = 512
    gap_hours: float = 72.0
    server_workers: int = 1
    max_batch_size: int = 16
    max_wait_ms: float = 2.0
    request_timeout_s: float = 30.0
    compile: bool = True
    plan_dtype: str = "float64"
    heartbeat_interval_s: float = 2.0
    heartbeat_timeout_s: float = 5.0
    auto_restart: bool = True
    trace_sample: float = 0.0
    slow_ring_size: int = 64
    quality_window: float = 3600.0
    quality_topk: int = 20

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        if self.slow_ring_size < 1:
            raise ValueError("slow_ring_size must be >= 1")


class ClusterRouter:
    """Owns N shard workers and routes user-keyed operations to them."""

    def __init__(self, checkpoint_path, persist_dir, config: Optional[ClusterConfig] = None):
        from ..serve.checkpoint import read_checkpoint

        self.config = config or ClusterConfig()
        self.checkpoint_path = str(checkpoint_path)
        self.persist_dir = Path(persist_dir)
        meta, params, extra = read_checkpoint(checkpoint_path)
        if extra:
            # extra:: arrays (MC count tables etc.) aren't in state_dict,
            # so the shared-weights path can't carry them yet
            raise ValueError(
                "cluster serving supports state_dict-only checkpoints; "
                f"this one carries extra state: {sorted(extra)}"
            )
        if "dataset" not in meta:
            raise ValueError(
                "cluster serving needs a self-contained checkpoint "
                "(saved with dataset=) so every shard can rebuild the dataset"
            )
        self.meta = meta
        self.weights = SharedWeights.create(params)
        self.ring = HashRing(range(self.config.num_shards))
        self.shards: List[ShardHandle] = [
            ShardHandle(self._spec(index)) for index in range(self.config.num_shards)
        ]
        self._supervisor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        self._lock = threading.Lock()
        self.restarts_total = 0
        # Router-side observability: its own registry (shard registries
        # are scraped over the control pipe at /metrics time, never
        # mirrored here) plus a worst-N ring of sampled routed requests.
        self.registry = MetricsRegistry()
        self.slow_ring = SlowRing(self.config.slow_ring_size)
        self._routed = self.registry.counter(
            "router_requests", "Routed operations by op",
        )
        self._route_errors = self.registry.counter(
            "router_request_errors", "Routed operations whose reply was not ok",
        )
        self._traces_sampled = self.registry.counter(
            "router_traces_sampled", "Routed requests that carried a trace",
        )
        self._route_seconds = self.registry.histogram(
            "router_request_seconds", "Round-trip latency through the shard pipe",
        )
        self.registry.gauge(
            "cluster_shards", "Configured shard count", fn=lambda: len(self.shards),
        )
        self.registry.gauge(
            "cluster_restarts", "Shard restarts since router start",
            fn=lambda: self.restarts_total,
        )

    def _spec(self, index: int) -> WorkerSpec:
        c = self.config
        return WorkerSpec(
            shard_index=index,
            persist_dir=str(self.persist_dir / f"shard-{index:02d}"),
            checkpoint_meta=self.meta,
            weights_manifest=self.weights.manifest,
            fsync=c.fsync,
            snapshot_interval=c.snapshot_interval,
            segment_max_records=c.segment_max_records,
            store_shards=c.store_shards,
            max_sessions=c.max_sessions,
            max_session_visits=c.max_session_visits,
            gap_hours=c.gap_hours,
            server_workers=c.server_workers,
            max_batch_size=c.max_batch_size,
            max_wait_ms=c.max_wait_ms,
            request_timeout_s=c.request_timeout_s,
            compile=c.compile,
            plan_dtype=c.plan_dtype,
            trace_sample=c.trace_sample,
            quality_window=c.quality_window,
            quality_topk=c.quality_topk,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterRouter":
        if self._started:
            raise RuntimeError("cluster already started")
        # all shards boot concurrently: spawn, dataset rebuild, recovery
        # and warmup overlap instead of paying N serial cold starts
        def boot(shard: ShardHandle) -> None:
            ready = shard.start()
            logger.info(
                "shard %d up (pid %s): %s",
                shard.spec.shard_index,
                shard.pid,
                ready.get("recovery"),
            )

        try:
            with ThreadPoolExecutor(max_workers=len(self.shards)) as pool:
                list(pool.map(boot, self.shards))
        except ShardError:
            for shard in self.shards:
                if shard.alive:
                    shard.kill()
            self.weights.unlink()
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, name="cluster-supervisor", daemon=True
        )
        self._started = True
        self._supervisor.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(self.config.heartbeat_interval_s + 5.0)
            self._supervisor = None
        for shard in self.shards:
            shard.shutdown()
        self.weights.unlink()
        self._started = False

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval_s):
            for shard in self.shards:
                if self._stop.is_set():
                    return
                healthy = shard.alive and shard.ping(
                    timeout=self.config.heartbeat_timeout_s
                )
                if healthy or not self.config.auto_restart:
                    continue
                logger.warning(
                    "shard %d unhealthy (%s); restarting",
                    shard.spec.shard_index,
                    shard.dead_reason or "ping failed",
                )
                try:
                    self.restart_shard(shard.spec.shard_index)
                except ShardError as error:
                    logger.error(
                        "shard %d restart failed: %s", shard.spec.shard_index, error
                    )

    def restart_shard(self, index: int) -> Dict:
        """Restart one shard (supervisor path; also callable directly)."""
        shard = self.shards[index]
        with self._lock:
            if shard.alive and shard.ping(timeout=self.config.heartbeat_timeout_s):
                return {"ok": True, "already_running": True}
            if shard._process is not None and shard._process.is_alive():
                shard.kill()  # wedged, not dead: clear it before respawn
            ready = shard.restart()
            self.restarts_total += 1
            logger.info(
                "shard %d recovered: %s", index, ready.get("recovery")
            )
            return ready

    # ------------------------------------------------------------------
    # routed operations
    # ------------------------------------------------------------------
    def shard_for(self, user_id: int) -> ShardHandle:
        return self.shards[self.ring.shard_for(user_id)]

    def _route(self, shard: ShardHandle, payload: Dict, timeout: float) -> Dict:
        """One routed round-trip: metrics always, tracing when sampled.

        A sampled request opens a ``route.<op>`` span, ships the trace
        carrier in the payload, and grafts the shard's exported spans
        back under that span (right-aligned at reply arrival — the two
        processes' monotonic clocks share no epoch, so durations and
        in-trace order travel, absolute times do not).  The finished
        trace is offered to the router's slow ring.
        """
        trace = maybe_trace(self.config.trace_sample)
        self._routed.inc()
        start = time.monotonic()
        try:
            if trace is None:
                reply = shard.request(payload, timeout=timeout)
            else:
                index = trace.begin(
                    f"route.{payload.get('op')}", shard=shard.spec.shard_index
                )
                reply = shard.request(
                    dict(payload, trace=trace.carrier()), timeout=timeout
                )
                spans = reply.pop("spans", None) if isinstance(reply, dict) else None
                if spans:
                    trace.graft(spans, parent=index)
                trace.finish(index)
                self._traces_sampled.inc()
                self.slow_ring.offer(trace)
        finally:
            self._route_seconds.observe(time.monotonic() - start)
        if not reply.get("ok"):
            self._route_errors.inc()
        return reply

    def checkin(self, payload: Dict) -> Dict:
        """Route one check-in body; the shard's reply comes back as-is.

        A malformed body (no integer ``user_id``) can't be routed and
        fails here with a 400-shaped reply; everything else — including
        the 409 out-of-order conflict — is the shard's verdict,
        propagated unchanged.
        """
        user_id = payload.get("user_id")
        if isinstance(user_id, bool) or not isinstance(user_id, int):
            return {"ok": False, "code": 400, "error": "user_id must be an integer"}
        return self._route(
            self.shard_for(user_id),
            {"op": "checkin", "event": payload},
            timeout=self.config.request_timeout_s,
        )

    def predict_user(self, user_id: int, k: int = 10) -> Dict:
        return self._route(
            self.shard_for(user_id),
            {"op": "predict", "user_id": user_id, "k": k},
            timeout=self.config.request_timeout_s,
        )

    def predict_raw(self, payload: Dict, k: int = 10) -> Dict:
        """Full-body prediction, routed by ``user_id`` (default shard 0).

        Stateless requests ship their own history, so any shard can
        serve them; routing by user keeps a user's QR-P graph cache
        warm on one shard instead of smeared across all of them.
        """
        user_id = payload.get("user_id")
        shard = (
            self.shard_for(user_id)
            if isinstance(user_id, int) and not isinstance(user_id, bool)
            else self.shards[0]
        )
        return self._route(
            shard,
            {"op": "predict_raw", "payload": payload, "k": k},
            timeout=self.config.request_timeout_s,
        )

    def stream_events(
        self, events: List[Dict], predict_every: int = 0, k: int = 10
    ) -> Dict:
        """Partition a batch of event bodies by shard and fan out.

        Every shard's sub-tape goes out concurrently (one thread per
        shard blocked on its pipe, workers ingesting in parallel
        processes).  Relative order *within a user* is preserved (a
        user maps to exactly one shard and the partition is stable),
        which is the only order the store's monotonic-timestamp rule
        cares about.
        """
        by_shard: Dict[int, List[Dict]] = {}
        for payload in events:
            user_id = payload.get("user_id")
            if isinstance(user_id, bool) or not isinstance(user_id, int):
                raise ValueError("every event needs an integer user_id")
            by_shard.setdefault(self.ring.shard_for(user_id), []).append(payload)

        # One trace covers the whole fan-out: each shard's sub-tape gets
        # its own route.stream span (opened from the pool thread — Trace
        # appends are thread-safe) with the shard's spans grafted under it.
        trace = maybe_trace(self.config.trace_sample)

        def one_shard(index: int, batch: List[Dict]) -> Dict:
            request = {
                "op": "stream",
                "events": batch,
                "predict_every": predict_every,
                "k": k,
            }
            span_index = None
            if trace is not None:
                span_index = trace.begin("route.stream", shard=index, events=len(batch))
                request["trace"] = trace.carrier()
            reply = self.shards[index].request(
                request, timeout=max(self.config.request_timeout_s, 120.0)
            )
            if trace is not None:
                spans = reply.pop("spans", None) if isinstance(reply, dict) else None
                if spans:
                    trace.graft(spans, parent=span_index)
                trace.finish(span_index)
            if not reply.get("ok"):
                raise ShardError(f"shard {index} stream failed: {reply.get('error')}")
            return reply

        self._routed.inc()
        start = time.monotonic()
        try:
            with ThreadPoolExecutor(max_workers=len(by_shard) or 1) as pool:
                replies = list(
                    pool.map(lambda item: one_shard(*item), sorted(by_shard.items()))
                )
        finally:
            self._route_seconds.observe(time.monotonic() - start)
            if trace is not None:
                self._traces_sampled.inc()
                self.slow_ring.offer(trace)
        acks = 0
        rejected = 0
        predictions = 0
        for reply in replies:
            acks += sum(1 for a in reply["acks"] if a.get("ok"))
            rejected += sum(1 for a in reply["acks"] if not a.get("ok"))
            predictions += len(reply["predictions"])
        return {"acks": acks, "rejected": rejected, "predictions": predictions}

    def user_versions(self) -> Dict[str, Dict]:
        """Cluster-wide ``user -> version`` map (kill-recover assertions)."""
        merged: Dict[str, Dict] = {}
        for shard in self.shards:
            reply = shard.request({"op": "versions"}, timeout=30.0)
            if reply.get("ok"):
                merged.update(reply["users"])
        return merged

    def snapshot_all(self) -> List[Optional[str]]:
        """Force a snapshot on every shard (e.g. before planned restart)."""
        out: List[Optional[str]] = []
        for shard in self.shards:
            reply = shard.request({"op": "snapshot"}, timeout=60.0)
            out.append(reply.get("snapshot") if reply.get("ok") else None)
        return out

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        shards = []
        for shard in self.shards:
            alive = shard.alive and shard.ping(timeout=self.config.heartbeat_timeout_s)
            shards.append(
                {
                    "shard": shard.spec.shard_index,
                    "status": "ok" if alive else "down",
                    "pid": shard.pid,
                    "restarts": shard.restarts,
                    "reason": shard.dead_reason,
                }
            )
        healthy = sum(1 for s in shards if s["status"] == "ok")
        return {
            "status": "ok" if healthy == len(shards) else
            ("degraded" if healthy else "down"),
            "shards": shards,
        }

    def metrics_text(self) -> str:
        """Prometheus text for the whole cluster (``GET /metrics``).

        The router's own instruments expose unlabelled; every shard's
        registry snapshot comes over the control pipe and is stamped
        with a ``shard`` label, so one scrape shows the ring side by
        side.  A shard that cannot answer contributes only
        ``repro_shard_up{shard="NN"} 0`` — a scrape never fails because
        a shard is mid-restart.
        """
        snapshots: List[Dict] = list(self.registry.snapshot())
        for shard in self.shards:
            label = f"{shard.spec.shard_index:02d}"
            up = 0.0
            try:
                reply = shard.control_metrics(timeout=self.config.heartbeat_timeout_s)
                if reply.get("ok"):
                    up = 1.0
                    for snap in reply.get("metrics", []):
                        snap["labels"] = {**snap.get("labels", {}), "shard": label}
                        snapshots.append(snap)
            except ShardError:
                pass
            snapshots.append(
                {
                    "name": "repro_shard_up",
                    "kind": "gauge",
                    "help": "1 if the shard answered the metrics scrape",
                    "labels": {"shard": label},
                    "value": up,
                }
            )
        return render_prometheus(snapshots)

    def quality(self) -> Dict:
        """Cluster-wide model-quality report (``GET /quality``).

        Each shard's prequential summary comes over the control pipe;
        the cluster section merges the **raw windowed sums** (joins,
        hits, MRR/NDCG numerators) by addition and recomputes the
        ratios from the sums — averaging per-shard ratios would weight
        an idle shard equal to a busy one.  A shard that cannot answer
        contributes a ``status: down`` entry; the scrape never fails
        because a shard is mid-restart.
        """
        shards: List[Dict] = []
        reports: List[Dict] = []
        for shard in self.shards:
            index = shard.spec.shard_index
            try:
                reply = shard.control_quality(
                    timeout=self.config.heartbeat_timeout_s
                )
            except ShardError as error:
                shards.append(
                    {"shard": index, "status": "down", "error": str(error)}
                )
                continue
            if not reply.get("ok"):
                shards.append(
                    {"shard": index, "status": "down", "error": reply.get("error")}
                )
                continue
            report = reply.get("quality", {})
            shards.append({"shard": index, "status": "ok", "quality": report})
            if report.get("enabled"):
                reports.append(report)

        if not reports:
            return {"enabled": False, "shards": shards}

        ks = sorted(
            {str(k) for r in reports for k in r.get("ks", [])}, key=int
        )
        strata_names = sorted(
            {s for r in reports for s in r.get("strata", {})}
        )
        cluster: Dict = {
            "pending": sum(r.get("pending", 0) for r in reports),
            "expired": sum(r.get("expired", 0) for r in reports),
            "replaced": sum(r.get("replaced", 0) for r in reports),
            "evicted": sum(r.get("evicted", 0) for r in reports),
            "predictions": {},
            "joins": {},
            "strata": {},
        }
        for key in ("predictions", "joins"):
            merged: Dict[str, int] = {}
            for r in reports:
                for s, v in r.get(key, {}).items():
                    merged[s] = merged.get(s, 0) + int(v)
            cluster[key] = merged
        for s in strata_names:
            windows = [
                r["strata"][s]["window"] for r in reports if s in r.get("strata", {})
            ]
            joins = sum(w.get("joins", 0) for w in windows)
            mrr_sum = sum(w.get("mrr_sum", 0.0) for w in windows)
            hits = {
                k: sum(w.get("hits", {}).get(k, 0) for w in windows) for k in ks
            }
            ndcg_sum = {
                k: sum(w.get("ndcg_sum", {}).get(k, 0.0) for w in windows)
                for k in ks
            }
            cluster["strata"][s] = {
                "window": {
                    "joins": joins,
                    "hits": hits,
                    "mrr_sum": mrr_sum,
                    "ndcg_sum": ndcg_sum,
                },
                "recall": {k: (v / joins if joins else 0.0) for k, v in hits.items()},
                "mrr": mrr_sum / joins if joins else 0.0,
                "ndcg": {
                    k: (v / joins if joins else 0.0) for k, v in ndcg_sum.items()
                },
            }
        store_strata: Dict[str, int] = {}
        for r in reports:
            for s, v in r.get("store_strata", {}).items():
                store_strata[s] = store_strata.get(s, 0) + int(v)
        if store_strata:
            cluster["store_strata"] = store_strata
        # drift stays per-shard (each shard sees a different event slice,
        # so PSI merges make no sense); the cluster alert is an any-of
        cluster["drift_alert"] = any(
            r.get("drift", {}).get("alert", False) for r in reports
        )
        return {"enabled": True, "shards": shards, "cluster": cluster}

    def slow_requests(self, n: int = 10) -> List[Dict]:
        """The router's worst sampled routed requests (``/debug/slow``)."""
        return self.slow_ring.slow(n)

    def stats(self) -> Dict:
        """Cluster-wide roll-up plus per-shard detail (``GET /stats``)."""
        per_shard = []
        totals = {
            "queue_depth": 0,
            "in_flight": 0,
            "users": 0,
            "events": 0,
            "requests_completed": 0,
        }
        for shard in self.shards:
            entry: Dict = {"shard": shard.spec.shard_index, "restarts": shard.restarts}
            try:
                reply = shard.control_stats()
            except ShardError as error:
                entry["status"] = "down"
                entry["error"] = str(error)
                per_shard.append(entry)
                continue
            stats = reply.get("stats", {})
            stream = stats.get("stream", {})  # flat store+pipeline roll-up
            entry.update(
                {
                    "status": "ok",
                    "queue_depth": stats.get("queue_depth", 0),
                    "in_flight": stats.get("in_flight", 0),
                    "users": stream.get("users", 0),
                    "events": stream.get("events", 0),
                    "requests_completed": stats.get("requests", {}).get("completed", 0),
                    "durability": stream.get("durability", {}),
                    "recovery": stats.get("recovery", {}),
                    "plans": stats.get("plans", {"enabled": False}),
                }
            )
            for key in totals:
                totals[key] += entry.get(key, 0)
            per_shard.append(entry)
        return {
            "cluster": {
                "num_shards": len(self.shards),
                "restarts_total": self.restarts_total,
                "totals": totals,
                "shards": per_shard,
            },
            "checkpoint": self.checkpoint_path,
            "model": self.meta.get("model_name"),
            "weights": {
                "shm_name": self.weights.manifest["shm_name"],
                "bytes": self.weights.manifest["size"],
            },
            "tracing": {
                "sample_rate": self.config.trace_sample,
                "sampled": int(self._traces_sampled.value),
                "slow_ring": len(self.slow_ring),
            },
        }
