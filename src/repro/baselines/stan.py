"""STAN baseline [Luo et al., WWW 2021; ref 10].

Bi-layer spatio-temporal attention with explicit interval matrices:
attention logits are biased by learned functions of the pairwise
spatial distances and temporal gaps between visits, and scoring adds a
personalised item frequency (PIF) term — STAN's two defining pieces.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, masked_fill, softmax
from ..data.trajectory import PredictionSample, concat_history
from ..nn import Linear, Parameter, causal_mask
from ..utils.rng import default_rng
from .base import NextPOIBaseline, SequenceEmbedder


class STAN(NextPOIBaseline):
    name = "STAN"

    def __init__(
        self,
        num_pois: int,
        locations: np.ndarray,
        dim: int = 64,
        max_gap_hours: float = 48.0,
        rng=None,
    ):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.locations = np.asarray(locations, dtype=np.float64)
        self.max_gap = max_gap_hours
        self.embedder = SequenceEmbedder(num_pois, dim, rng=rng)
        self.q1 = Linear(dim, dim, rng=rng)
        self.k1 = Linear(dim, dim, rng=rng)
        self.v1 = Linear(dim, dim, rng=rng)
        self.q2 = Linear(dim, dim, rng=rng)
        self.k2 = Linear(dim, dim, rng=rng)
        self.v2 = Linear(dim, dim, rng=rng)
        # learned linear interval biases (slope for distance and time gap)
        self.spatial_slope = Parameter(np.array([-1.0]))
        self.temporal_slope = Parameter(np.array([-1.0]))
        self.head = Linear(dim, num_pois, rng=rng)
        self.pif_weight = Parameter(np.array([1.0]))

    def _interval_bias(self, sample: PredictionSample) -> Tensor:
        ids = np.array(sample.prefix_poi_ids, dtype=np.int64)
        times = np.array([v.timestamp for v in sample.prefix])
        coords = self.locations[ids]
        dists = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
        gaps = np.minimum(np.abs(times[:, None] - times[None, :]), self.max_gap) / self.max_gap
        bias = (
            Tensor(dists) * self.spatial_slope[0] + Tensor(gaps) * self.temporal_slope[0]
        )
        return bias

    def _attention_layer(self, x: Tensor, q, k, v, bias: Tensor, mask) -> Tensor:
        scores = (q(x) @ k(x).transpose()) * (1.0 / np.sqrt(self.dim)) + bias
        weights = softmax(masked_fill(scores, mask, -1e9), axis=-1)
        return weights @ v(x)

    def score(self, sample: PredictionSample) -> Tensor:
        x = self.embedder(sample)
        bias = self._interval_bias(sample)
        mask = causal_mask(x.shape[0])
        x = x + self._attention_layer(x, self.q1, self.k1, self.v1, bias, mask)
        x = x + self._attention_layer(x, self.q2, self.k2, self.v2, bias, mask)
        logits = self.head(x[x.shape[0] - 1])
        # PIF: personalised item frequency over prefix + history
        frequency = np.zeros(self.num_pois)
        for visit in sample.prefix:
            frequency[visit.poi_id] += 1.0
        for visit in concat_history(sample.history):
            frequency[visit.poi_id] += 1.0
        return logits + Tensor(np.log1p(frequency)) * self.pif_weight[0]
