"""Dynamic micro-batching: coalesce concurrent requests into batches.

The serving story of the batched encode (PR 2/3): ``predict_batch`` is
~4x faster per sample than the per-sample loop, but only if someone
*forms* batches.  Online traffic arrives as individual requests from
many clients; the :class:`MicroBatchScheduler` queues them and lets the
worker pool pull *micro-batches* — a batch is flushed when it reaches
``max_batch_size`` or when ``max_wait_ms`` has elapsed since its oldest
request entered the queue, whichever comes first.  That bounds the
batching delay any single request can pay (tail latency) while keeping
batches full under load.

Admission control is a bounded queue: once ``max_queue`` requests are
waiting, further :meth:`~MicroBatchScheduler.submit` calls raise
:class:`QueueFullError` immediately instead of growing the backlog
without bound — the HTTP front-end maps this to a 429.  Graceful
shutdown (:meth:`~MicroBatchScheduler.close` with ``drain=True``)
stops admissions but lets the workers finish everything already
queued; with ``drain=False`` the backlog is failed fast.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from ..obs import MetricsRegistry
from ..obs.tracing import Trace, current_trace


class QueueFullError(RuntimeError):
    """Backpressure: the bounded request queue is at capacity."""


class SchedulerClosedError(RuntimeError):
    """The scheduler no longer admits requests (shutting down)."""


@dataclass
class ServeRequest:
    """One queued prediction request.

    ``future`` resolves to the request's :class:`PredictorResult` (or
    the exception its batch raised); ``enqueued_at`` anchors both the
    flush deadline of the batch it joins and the end-to-end request
    latency the server reports.  ``trace`` carries the submitting
    thread's active trace across the future hand-off — the worker
    thread that executes the batch records queue-wait and inference
    spans into it (:func:`~repro.obs.current_trace` is thread-local
    and does not survive the queue on its own).
    """

    sample: object
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    trace: Optional[Trace] = None


class MicroBatchScheduler:
    """Bounded request queue with size-or-deadline batch formation.

    Producers call :meth:`submit`; consumers (the worker pool) call
    :meth:`next_batch`, which blocks until it can hand back a non-empty
    batch, and returns ``None`` only when the scheduler is closed and
    drained (or an explicit ``timeout`` expires while idle).
    """

    def __init__(
        self,
        max_batch_size: int = 16,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self._queue: Deque[ServeRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # counters live in the metrics registry (a private one for a
        # standalone scheduler; the server's when embedded), read back
        # through the properties below
        self.registry = registry if registry is not None else MetricsRegistry()
        self._submitted = self.registry.counter(
            "scheduler_submitted", "Requests admitted to the queue"
        )
        self._rejected = self.registry.counter(
            "scheduler_rejected", "Requests rejected by backpressure"
        )
        self._dispatched = self.registry.counter(
            "scheduler_dispatched", "Requests handed to workers in batches"
        )
        self._batches = self.registry.counter(
            "scheduler_batches", "Micro-batches formed"
        )
        self._cancelled = self.registry.counter(
            "scheduler_cancelled", "Requests dropped after client cancellation"
        )
        self._batch_size = self.registry.histogram(
            "scheduler_batch_size",
            "Formed micro-batch sizes",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        self.registry.gauge(
            "scheduler_queue_depth", "Requests currently queued", fn=self.depth
        )

    # -- historical counter surface ------------------------------------
    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    @property
    def dispatched(self) -> int:
        return int(self._dispatched.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def cancelled(self) -> int:
        return int(self._cancelled.value)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, sample) -> Future:
        """Queue one sample; returns the future its result lands on.

        Raises :class:`QueueFullError` when the queue is at capacity
        and :class:`SchedulerClosedError` after :meth:`close`.
        """
        request = ServeRequest(sample=sample, trace=current_trace())
        with self._not_empty:
            if self._closed:
                raise SchedulerClosedError("scheduler is closed to new requests")
            if len(self._queue) >= self.max_queue:
                self._rejected.inc()
                raise QueueFullError(
                    f"request queue full ({len(self._queue)}/{self.max_queue})"
                )
            self._queue.append(request)
            self._submitted.inc()
            self._not_empty.notify()
        return request.future

    def depth(self) -> int:
        """Requests currently waiting (excludes in-flight batches)."""
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def next_batch(self, timeout: Optional[float] = None) -> Optional[List[ServeRequest]]:
        """Block until a micro-batch is ready, then return it.

        The batch starts with the oldest queued request and grows until
        either ``max_batch_size`` is reached or ``max_wait_ms`` has
        passed since that oldest request was enqueued — so the deadline
        covers time spent *waiting in the queue*, not just time spent
        in this call, and a request's batching delay is bounded even
        when every worker was busy when it arrived.

        Returns ``None`` when the scheduler is closed and the queue is
        drained, or when ``timeout`` (seconds) expires with nothing
        queued.  After ``close()``, remaining requests are still handed
        out (in batches, without deadline waits) until the queue is
        empty.  Requests whose future was cancelled (a client gave up
        waiting) are dropped here instead of wasting a batch slot.
        """
        with self._not_empty:
            while True:
                first = self._pop_live_locked()
                if first is not None:
                    break
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None  # idle timeout: let the caller re-check
            batch = [first]
            deadline = first.enqueued_at + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch_size:
                if self._queue:
                    request = self._pop_live_locked()
                    if request is not None:
                        batch.append(request)
                    continue
                if self._closed:
                    break  # drain mode: no point waiting for arrivals
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._not_empty.wait(remaining)
            self._dispatched.inc(len(batch))
            self._batches.inc()
            self._batch_size.observe(len(batch))
            return batch

    def _pop_live_locked(self) -> Optional[ServeRequest]:
        """Pop the oldest non-cancelled request; ``None`` if queue empty.

        Caller holds the lock.  Cancelled requests (client timed out
        and abandoned the future) are discarded and counted.
        """
        while self._queue:
            request = self._queue.popleft()
            if not request.future.cancelled():
                return request
            self._cancelled.inc()
        return None

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop admitting requests.

        ``drain=True`` (graceful): everything already queued will still
        be served; workers see ``None`` from :meth:`next_batch` once
        the queue empties.  ``drain=False``: the backlog is cleared and
        every pending future fails with :class:`SchedulerClosedError`.
        """
        with self._not_empty:
            self._closed = True
            abandoned = []
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
            self._not_empty.notify_all()
        for request in abandoned:
            if not request.future.cancelled():
                request.future.set_exception(
                    SchedulerClosedError("scheduler closed before this request ran")
                )

    def stats(self) -> dict:
        """Queue counters, read from the registry instruments."""
        with self._lock:
            depth = len(self._queue)
            closed = self._closed
        return {
            "queue_depth": depth,
            "max_queue": self.max_queue,
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "dispatched": self.dispatched,
            "cancelled": self.cancelled,
            "batches_formed": self.batches,
            "closed": closed,
        }
