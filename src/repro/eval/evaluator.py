"""Evaluation loop: run a model over test samples and compute metrics.

Every model conforms to :class:`repro.serve.protocol.PredictorProtocol`,
so the loop is contract-driven: compute the shared state once
(``compute_embeddings()``, ``()`` for stateless models), feed the whole
sample set through the model's vectorised ``predict_batch`` (in
fixed-size chunks so padded batches stay small), and read ranks off
the unified result type.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..autograd import no_grad
from ..data.trajectory import PredictionSample
from .metrics import DEFAULT_KS, metric_table

# Chunk size for batched evaluation: bounds the (batch, seq, dim)
# padded tensors without giving up the batched encode's amortisation.
EVAL_BATCH_SIZE = 128


def _collect(model, samples: Sequence[PredictionSample], rank_attr: str) -> List[int]:
    """Shared loop: ``rank_attr`` per sample via the batched encode.

    Restores the model's prior train/eval mode on exit instead of
    unconditionally flipping it back to training.
    """
    was_training = getattr(model, "training", False)
    model.eval()
    try:
        with no_grad():
            shared = model.compute_embeddings()
            ranks: List[int] = []
            for lo in range(0, len(samples), EVAL_BATCH_SIZE):
                batch = samples[lo : lo + EVAL_BATCH_SIZE]
                ranks.extend(
                    getattr(result, rank_attr)
                    for result in model.predict_batch(batch, *shared)
                )
            return ranks
    finally:
        model.train(was_training)


def collect_ranks(model, samples: Sequence[PredictionSample]) -> List[int]:
    """Target POI rank for every sample."""
    return _collect(model, samples, "poi_rank")


def collect_tile_ranks(model, samples: Sequence[PredictionSample]) -> List[int]:
    """Target *tile* rank per sample (used by the Fig. 11 analysis)."""
    return _collect(model, samples, "tile_rank")


def evaluate(
    model,
    samples: Sequence[PredictionSample],
    ks: Iterable[int] = DEFAULT_KS,
) -> Dict[str, float]:
    """Metric table (Recall@K / NDCG@K / MRR) over a sample set."""
    return metric_table(collect_ranks(model, samples), ks=ks)
