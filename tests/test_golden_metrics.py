"""Golden-metrics regression test for the seeded quick-profile eval.

Freezes the full train+evaluate pipeline output (Recall@K / NDCG@K /
MRR with the PR 2 ``num_pois + 1`` miss-rank semantics, batched
trainer) into ``tests/golden/quick_nyc_metrics.json``.  Ranks are
integers, so the metrics are exact rationals: any rank-semantics or
trainer regression shifts them far beyond the 1e-9 gate and fails
loudly, while benign refactors reproduce them exactly.

To regenerate after an *intentional* semantics change::

    PYTHONPATH=src python tests/test_golden_metrics.py

which rewrites the fixture in place (review the metric deltas in the
diff and justify them in the PR).
"""

import json
from pathlib import Path

import pytest

from repro.eval import metric_table
from repro.experiments import get_profile, prepare, run_one
from repro.serve import Predictor
from repro.utils.rng import set_seed

GOLDEN = Path(__file__).parent / "golden" / "quick_nyc_metrics.json"

# Float32 plan replay may swap near-ties in the ranking, so its
# aggregate metrics are tolerance-gated rather than exact.  The bound
# is deliberately tight: on the seeded quick profile the observed
# deltas are < 0.005 absolute; 0.02 leaves room for legitimate
# tie-break churn without letting a real regression through.
FLOAT32_METRIC_TOLERANCE = 0.02


def _current_metrics():
    # Dropout draws from the process-wide default generator; pin it so
    # the run is reproducible regardless of which tests ran before.
    set_seed(0)
    profile = get_profile("quick")
    data = prepare("nyc", profile, seed=profile.seed)
    metrics, model = run_one(
        "TSPN-RA", data, profile, seed=profile.seed, use_batched=True
    )
    return metrics, model, data, profile


@pytest.fixture(scope="module")
def trained():
    """One seeded quick-profile train shared by every gate below."""
    return _current_metrics()


@pytest.mark.slow
def test_quick_profile_metrics_match_golden(trained):
    golden = json.loads(GOLDEN.read_text())
    metrics, _, _, profile = trained
    assert golden["preset"] == "nyc" and golden["profile"] == profile.name
    assert set(metrics) == set(golden["metrics"])
    for name, frozen in golden["metrics"].items():
        assert metrics[name] == pytest.approx(frozen, abs=1e-9), (
            f"{name} drifted from the golden fixture: "
            f"{metrics[name]!r} != {frozen!r} — if intentional, regenerate "
            f"via `PYTHONPATH=src python {Path(__file__).name}`"
        )


@pytest.mark.slow
def test_float32_compiled_plans_within_golden_tolerance(trained):
    """Float32 plan replay stays inside the documented metric envelope.

    Float64 plans are bit-identical to eager and therefore covered by
    the exact 1e-9 gate above; the float32 serving configuration is
    allowed to swap near-ties, so its Recall@K / NDCG@K / MRR must
    land within ``FLOAT32_METRIC_TOLERANCE`` of the golden fixture.
    """
    golden = json.loads(GOLDEN.read_text())
    _, model, data, profile = trained
    test = data.splits.test
    if profile.eval_samples is not None:
        test = test[: profile.eval_samples]
    predictor = Predictor(model, compile=True, plan_dtype="float32")
    ranks = []
    for start in range(0, len(test), 16):
        ranks.extend(
            r.poi_rank for r in predictor.predict_batch(test[start : start + 16])
        )
    metrics = metric_table(ranks)
    assert predictor.plan_cache is not None and predictor.plan_cache.traces >= 1
    for name, frozen in golden["metrics"].items():
        assert metrics[name] == pytest.approx(
            frozen, abs=FLOAT32_METRIC_TOLERANCE
        ), (
            f"{name} outside the float32 envelope: "
            f"{metrics[name]!r} vs golden {frozen!r} "
            f"(tolerance {FLOAT32_METRIC_TOLERANCE})"
        )


def regenerate():
    metrics, _, _, profile = _current_metrics()
    payload = {
        "description": (
            "Seeded quick-profile TSPN-RA eval on the synthetic NYC preset, "
            "batched trainer (use_batched=True), PR 2 miss-rank semantics "
            "(absent target ranks num_pois + 1). Regenerate with "
            "tests/test_golden_metrics.py::regenerate if semantics change "
            "intentionally."
        ),
        "preset": "nyc",
        "profile": profile.name,
        "seed": profile.seed,
        "metrics": metrics,
    }
    GOLDEN.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"regenerated {GOLDEN}")
    print(json.dumps(metrics, indent=2))


if __name__ == "__main__":
    regenerate()
