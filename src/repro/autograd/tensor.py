"""Reverse-mode automatic differentiation on top of numpy.

This module is the substrate that replaces PyTorch for the whole
reproduction (see DESIGN.md, Section 2).  It provides a :class:`Tensor`
wrapping an ``numpy.ndarray`` together with a dynamically built
computation graph.  Calling :meth:`Tensor.backward` walks the graph in
reverse topological order and accumulates gradients into every tensor
created with ``requires_grad=True``.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects (not tensors); no
  higher-order differentiation is supported, which keeps the engine
  small and is all the paper's training loop needs.
* Broadcasting follows numpy semantics.  Every op funnels its upstream
  gradient through :func:`unbroadcast` so that gradient shapes always
  match parameter shapes.
* A module-level switch (:func:`no_grad`) disables graph construction
  during evaluation, mirroring ``torch.no_grad``.
* Every op also carries a *replay kernel* — the same numpy expression
  as the eager forward, packaged as ``kernel(out, *arrays)`` — so that
  :mod:`repro.autograd.trace` can capture one eager run into a
  graph-free :class:`~repro.autograd.plan.Plan`.  Kernels mirror the
  eager computation exactly; a float64 plan replay is bit-identical to
  the eager pass by construction.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .dtype import get_default_dtype

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]


class _GradMode(threading.local):
    """Per-thread grad-mode flag.

    Grad mode must be thread-local: the serving worker pool runs
    ``no_grad`` inference on several threads at once, and a process-wide
    flag would let one thread's ``no_grad`` exit re-enable (or keep
    disabled) graph construction underneath another thread mid-forward.
    Each thread starts with gradients enabled, like torch.
    """

    enabled = True


_grad_mode = _GradMode()


class _TraceState(threading.local):
    """Per-thread active trace recorder (``None`` outside ``trace()``).

    Lives here rather than in ``trace.py`` so that :meth:`Tensor._make`
    — the single funnel every op passes through — can consult it
    without a circular import.  Thread-local for the same reason grad
    mode is: one serving thread tracing a plan must not capture ops
    from its neighbours.
    """

    tracer = None


_trace_state = _TraceState()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used by evaluation loops so that forward passes do not retain
    references to intermediate arrays.  The switch is per-thread.
    """
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether new ops will be recorded on the autograd graph
    (in the calling thread)."""
    return _grad_mode.enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that its shape matches ``shape``.

    numpy broadcasting may have expanded an operand along new leading
    axes or along size-1 axes; the adjoint of broadcasting is summation
    over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype if dtype is not None else get_default_dtype())


def _ufunc_kernel(fn) -> Callable:
    """Replay kernel for a numpy ufunc-style call.

    Writes into the step's reused buffer when numpy accepts it (same
    shape/dtype after the first run); falls back to a fresh allocation
    otherwise.  Results are identical either way — ``out=`` only
    changes where the bytes land.
    """

    def kernel(out, *args):
        if out is not None:
            try:
                return fn(*args, out=out)
            except (TypeError, ValueError):
                pass
        return fn(*args)

    return kernel


_K_ADD = _ufunc_kernel(np.add)
_K_SUB = _ufunc_kernel(np.subtract)
_K_MUL = _ufunc_kernel(np.multiply)
_K_DIV = _ufunc_kernel(np.true_divide)
_K_NEG = _ufunc_kernel(np.negative)
_K_MATMUL = _ufunc_kernel(np.matmul)
_K_EXP = _ufunc_kernel(np.exp)
_K_LOG = _ufunc_kernel(np.log)
_K_SQRT = _ufunc_kernel(np.sqrt)
_K_TANH = _ufunc_kernel(np.tanh)
_K_ABS = _ufunc_kernel(np.abs)
_K_SIN = _ufunc_kernel(np.sin)
_K_COS = _ufunc_kernel(np.cos)


def _k_sigmoid(out, a):
    return 1.0 / (1.0 + np.exp(-a))


def _k_relu(out, a):
    return a * (a > 0)


class Tensor:
    """A numpy array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts.  Floating point data keeps
        its dtype; everything else is converted to the engine default
        (:func:`repro.autograd.get_default_dtype`, ``float64`` unless
        reconfigured).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_grad_fns", "_op")
    __array_priority__ = 100  # make numpy defer to our reflected operators

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(get_default_dtype())
        self.data: np.ndarray = array
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._grad_fns: Tuple[Optional[Callable[[np.ndarray], np.ndarray]], ...] = ()
        self._op = ""

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        grad_fns: Sequence[Optional[Callable[[np.ndarray], np.ndarray]]],
        op: str,
        kernel: Optional[Callable] = None,
        extra: Sequence = (),
    ) -> "Tensor":
        """Build an op-result tensor (and record it when tracing).

        ``kernel`` is the op's replay kernel (``kernel(out, *arrays)``,
        mirroring the eager forward exactly); ``extra`` lists
        array-valued non-differentiable arguments (masks, index arrays)
        the kernel needs beyond the parents' data.  Both are ignored in
        eager mode; a ``None`` kernel makes the op untraceable.
        """
        requires = _grad_mode.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._grad_fns = tuple(grad_fns)
            out._op = op
        tracer = _trace_state.tracer
        if tracer is not None:
            tracer.record(out, parents, op, kernel, extra)
        return out

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Accumulate gradients of ``self`` w.r.t. every graph leaf.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without requires_grad")
        if grad is None:
            seed = np.ones_like(self.data)
        else:
            seed = _as_array(grad).astype(self.data.dtype, copy=False)
            if seed.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {seed.shape} does not match tensor shape {self.data.shape}"
                )

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): seed}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._parents:
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            # Interior node: route gradient to parents, and also keep it
            # if the user asked for it explicitly (retain semantics for
            # leaves only would lose information in diagnostics).
            for parent, fn in zip(node._parents, node._grad_fns):
                if fn is None or not parent.requires_grad:
                    continue
                contribution = fn(node_grad)
                if contribution is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g, self.shape),
                lambda g: unbroadcast(g, other.shape),
            ),
            "add",
            kernel=_K_ADD,
        )

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g, self.shape),
                lambda g: unbroadcast(-g, other.shape),
            ),
            "sub",
            kernel=_K_SUB,
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g * other.data, self.shape),
                lambda g: unbroadcast(g * self.data, other.shape),
            ),
            "mul",
            kernel=_K_MUL,
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: unbroadcast(g / other.data, self.shape),
                lambda g: unbroadcast(-g * self.data / (other.data ** 2), other.shape),
            ),
            "div",
            kernel=_K_DIV,
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), (lambda g: -g,), "neg", kernel=_K_NEG)

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        base = self.data

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return g * exponent * base ** (exponent - 1)

        return Tensor._make(
            data, (self,), (grad_fn,), "pow", kernel=lambda out, a: a ** exponent
        )

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data
        a, b = self.data, other.data

        def grad_a(g: np.ndarray) -> np.ndarray:
            if b.ndim == 1:
                ga = np.outer(g, b) if g.ndim == 1 else np.expand_dims(g, -1) * b
            elif g.ndim == 1:  # a was 1-D: g (m,) @ b^T
                ga = g @ np.swapaxes(b, -1, -2)
            else:
                ga = g @ np.swapaxes(b, -1, -2)
            return unbroadcast(ga, a.shape)

        def grad_b(g: np.ndarray) -> np.ndarray:
            if a.ndim == 1:
                gb = np.outer(a, g) if g.ndim == 1 else np.expand_dims(a, -1) * g
            elif g.ndim == 1:  # b was 1-D
                gb = np.swapaxes(a, -1, -2) @ g
            else:
                gb = np.swapaxes(a, -1, -2) @ g
            return unbroadcast(gb, b.shape)

        return Tensor._make(
            data, (self, other), (grad_a, grad_b), "matmul", kernel=_K_MATMUL
        )

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__matmul__(self)

    # comparisons yield plain numpy bool arrays (no gradient flows).
    def __gt__(self, other: ArrayLike):
        return self.data > _as_array(other)

    def __ge__(self, other: ArrayLike):
        return self.data >= _as_array(other)

    def __lt__(self, other: ArrayLike):
        return self.data < _as_array(other)

    def __le__(self, other: ArrayLike):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._make(data, (self,), (lambda g: g * data,), "exp", kernel=_K_EXP)

    def log(self) -> "Tensor":
        return Tensor._make(
            np.log(self.data), (self,), (lambda g: g / self.data,), "log", kernel=_K_LOG
        )

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._make(
            data, (self,), (lambda g: g / (2.0 * data),), "sqrt", kernel=_K_SQRT
        )

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._make(
            data, (self,), (lambda g: g * (1.0 - data ** 2),), "tanh", kernel=_K_TANH
        )

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._make(
            data, (self,), (lambda g: g * data * (1.0 - data),), "sigmoid",
            kernel=_k_sigmoid,
        )

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._make(
            self.data * mask, (self,), (lambda g: g * mask,), "relu", kernel=_k_relu
        )

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        factor = np.where(mask, 1.0, slope)
        return Tensor._make(
            self.data * factor, (self,), (lambda g: g * factor,), "leaky_relu",
            kernel=lambda out, a: a * np.where(a > 0, 1.0, slope),
        )

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(
            np.abs(self.data), (self,), (lambda g: g * sign,), "abs", kernel=_K_ABS
        )

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._make(
            np.clip(self.data, low, high), (self,), (lambda g: g * mask,), "clip",
            kernel=lambda out, a: np.clip(a, low, high),
        )

    def sin(self) -> "Tensor":
        return Tensor._make(
            np.sin(self.data), (self,), (lambda g: g * np.cos(self.data),), "sin",
            kernel=_K_SIN,
        )

    def cos(self) -> "Tensor":
        return Tensor._make(
            np.cos(self.data), (self,), (lambda g: -g * np.sin(self.data),), "cos",
            kernel=_K_COS,
        )

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).copy() if np.ndim(g) == 0 else np.full(shape, g)
            g_exp = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    g_exp = np.expand_dims(g_exp, ax)
            return np.broadcast_to(g_exp, shape).copy()

        def kernel(out, a):
            if a.dtype == np.float32 and axis in (-1, a.ndim - 1):
                # float32 plans are tolerance-verified, not bit-exact:
                # a matmul row-sum sidesteps numpy's per-row reduce
                # overhead on short last axes
                s = a @ np.ones(a.shape[-1], dtype=a.dtype)
                return s[..., None] if keepdims else s
            return a.sum(axis=axis, keepdims=keepdims)

        return Tensor._make(data, (self,), (grad_fn,), "sum", kernel=kernel)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = (self.data == data).astype(self.data.dtype)
                mask /= mask.sum()
                return mask * g
            g_exp, d_exp = g, data
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    g_exp = np.expand_dims(g_exp, ax)
                    d_exp = np.expand_dims(d_exp, ax)
            mask = (self.data == d_exp).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return mask * g_exp

        return Tensor._make(
            data, (self,), (grad_fn,), "max",
            kernel=lambda out, a: a.max(axis=axis, keepdims=keepdims),
        )

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        return Tensor._make(
            self.data.reshape(shape),
            (self,),
            (lambda g: g.reshape(original),),
            "reshape",
            kernel=lambda out, a: a.reshape(shape),
        )

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        return Tensor._make(
            self.data.transpose(axes),
            (self,),
            (lambda g: g.transpose(inverse),),
            "transpose",
            kernel=lambda out, a: a.transpose(axes),
        )

    def swapaxes(self, a: int, b: int) -> "Tensor":
        return Tensor._make(
            np.swapaxes(self.data, a, b),
            (self,),
            (lambda g: np.swapaxes(g, a, b),),
            "swapaxes",
            kernel=lambda out, arr: np.swapaxes(arr, a, b),
        )

    def expand_dims(self, axis: int) -> "Tensor":
        return Tensor._make(
            np.expand_dims(self.data, axis),
            (self,),
            (lambda g: np.squeeze(g, axis=axis),),
            "expand_dims",
            kernel=lambda out, a: np.expand_dims(a, axis),
        )

    def squeeze(self, axis: int) -> "Tensor":
        return Tensor._make(
            np.squeeze(self.data, axis=axis),
            (self,),
            (lambda g: np.expand_dims(g, axis),),
            "squeeze",
            kernel=lambda out, a: np.squeeze(a, axis=axis),
        )

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data.astype(np.int64)
        data = self.data[index]
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            out = np.zeros(shape, dtype=g.dtype)
            np.add.at(out, index, g)
            return out

        if isinstance(index, np.ndarray) and index.dtype != np.bool_:
            # Integer-array gathers take the index as a traced extra so
            # a replayed plan re-gathers with each batch's indices.
            return Tensor._make(
                data, (self,), (grad_fn,), "getitem",
                kernel=lambda out, a, idx: a[idx], extra=(index,),
            )
        return Tensor._make(
            data, (self,), (grad_fn,), "getitem",
            kernel=lambda out, a: a[index],
        )


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (adjoint: split)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_grad_fn(start: int, stop: int):
        def grad_fn(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        return grad_fn

    grad_fns = [make_grad_fn(offsets[i], offsets[i + 1]) for i in range(len(tensors))]
    return Tensor._make(
        data, tensors, grad_fns, "concat",
        kernel=lambda out, *arrs: np.concatenate(arrs, axis=axis),
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def make_grad_fn(i: int):
        def grad_fn(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return grad_fn

    grad_fns = [make_grad_fn(i) for i in range(len(tensors))]
    return Tensor._make(
        data, tensors, grad_fns, "stack",
        kernel=lambda out, *arrs: np.stack(arrs, axis=axis),
    )


def where(condition: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select; gradients flow to both branches through masks."""
    if isinstance(condition, Tensor):
        condition = condition.data
    # asarray (not astype) keeps an already-bool array's identity so a
    # traced plan can link it back to its feed.
    cond = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(cond, a.data, b.data)
    return Tensor._make(
        data,
        (a, b),
        (
            lambda g: unbroadcast(g * cond, a.shape),
            lambda g: unbroadcast(g * (~cond), b.shape),
        ),
        "where",
        kernel=lambda out, x, y, c: np.where(c, x, y),
        extra=(cond,),
    )


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum with subgradient split on ties."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    take_a = a.data >= b.data
    # the eager value and the replay kernel are the same ufunc, so the
    # two paths agree bit-for-bit even on NaN inputs (np.maximum
    # propagates NaN; a hand-rolled ``where(x >= y, x, y)`` would not)
    data = np.maximum(a.data, b.data)
    return Tensor._make(
        data,
        (a, b),
        (
            lambda g: unbroadcast(g * take_a, a.shape),
            lambda g: unbroadcast(g * (~take_a), b.shape),
        ),
        "maximum",
        kernel=_ufunc_kernel(np.maximum),
    )


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=get_default_dtype()), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=get_default_dtype()), requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=get_default_dtype()), requires_grad=requires_grad)
