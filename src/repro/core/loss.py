"""ArcFace-style additive angular-margin losses (paper Eq. 8).

Both prediction steps use

    loss = -log( exp(s cos(theta_t + m)) /
                 (exp(s cos(theta_t + m)) + sum_{c != t} exp(s cos theta_c)) )

where theta_c is the angle between the fused output vector and
candidate c's embedding.  The margin m pushes the output toward the
target embedding while pushing other candidates away.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat, l2_normalize, log_softmax


def cosine_scores(output: Tensor, candidates: Tensor) -> Tensor:
    """cos(theta) between one output vector and each candidate row."""
    normed_out = l2_normalize(output.reshape(1, -1), axis=-1)
    normed_cand = l2_normalize(candidates, axis=-1)
    return (normed_cand @ normed_out.reshape(-1, 1)).reshape(-1)


def arcface_loss(
    output: Tensor,
    candidates: Tensor,
    target_index: int,
    scale: float = 16.0,
    margin: float = 0.2,
) -> Tensor:
    """Eq. 8 for one sample.

    ``candidates`` has shape ``(C, dim)`` and must include the target
    row at ``target_index``.
    """
    n = candidates.shape[0]
    if not 0 <= target_index < n:
        raise IndexError("target_index outside candidate set")
    cos = cosine_scores(output, candidates)  # (C,)
    cos = cos.clip(-1.0 + 1e-7, 1.0 - 1e-7)
    target_cos = cos[target_index]
    # cos(theta + m) = cos theta cos m - sin theta sin m
    sin_target = (1.0 - target_cos * target_cos).sqrt()
    margined = target_cos * float(np.cos(margin)) - sin_target * float(np.sin(margin))
    one_hot = np.zeros(n)
    one_hot[target_index] = 1.0
    hot = Tensor(one_hot)
    logits = (cos * (1.0 - hot) + margined * hot) * scale
    log_probs = log_softmax(logits.reshape(1, -1), axis=-1)
    return -log_probs[0, target_index]


def combined_loss(tile_loss: Tensor, poi_loss: Tensor, beta: float = 1.0) -> Tensor:
    """Total objective: beta * loss_tau + loss_p."""
    return tile_loss * beta + poi_loss
