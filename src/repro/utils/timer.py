"""Wall-clock and peak-memory probes used by the Table V harness."""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class TimerResult:
    """Outcome of a measured block."""

    seconds: float
    peak_bytes: Optional[int] = None

    @property
    def pretty_time(self) -> str:
        """Format as mm:ss like the paper's Table V."""
        minutes, seconds = divmod(self.seconds, 60.0)
        return f"{int(minutes):02d}:{seconds:04.1f}"

    @property
    def peak_megabytes(self) -> float:
        return (self.peak_bytes or 0) / (1024.0 * 1024.0)


class Stopwatch:
    """Context manager measuring wall-clock time and (optionally) peak memory."""

    def __init__(self, trace_memory: bool = False):
        self.trace_memory = trace_memory
        self.result: Optional[TimerResult] = None
        self._started_trace = False

    def __enter__(self) -> "Stopwatch":
        if self.trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_trace = True
        if self.trace_memory:
            tracemalloc.reset_peak()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        peak = None
        if self.trace_memory:
            _, peak = tracemalloc.get_traced_memory()
            if self._started_trace:
                tracemalloc.stop()
        self.result = TimerResult(seconds=elapsed, peak_bytes=peak)


@dataclass
class Ledger:
    """Accumulates named timings across a run (train vs. infer phases)."""

    entries: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.entries[name] = self.entries.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self.entries.get(name, 0.0)
