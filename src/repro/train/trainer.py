"""Training loop shared by TSPN-RA and the learned baselines.

Implements the paper's protocol: Adam with exponentially decayed
learning rate, mini-batches of samples, loss summed per batch.

Two loss contracts are supported, both taking the shared per-batch
state returned by ``compute_embeddings()`` (``()`` for stateless
models):

* ``loss_sample(sample, *shared)`` — the scalar loss of one sample.
  The per-sample path sums these over the mini-batch; any model that
  implements only this still trains.
* ``loss_batch(samples, *shared)`` — the *summed* loss of a whole
  mini-batch computed in one padded, differentiable forward pass (one
  ``(batch, seq, dim)`` encode instead of ``batch`` sequential ones).
  This is the default path (:attr:`TrainConfig.use_batched`); the
  trainer falls back to the per-sample loop automatically for models
  without ``loss_batch``.  Implementations must return the sum — the
  trainer applies the ``1/len(batch)`` scaling itself, so both paths
  optimise exactly the same objective (values agree bit-for-bit at
  identical weights; gradients agree to floating-point accumulation
  order, see ``tests/test_train_batched.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..data.trajectory import PredictionSample
from ..optim import Adam, ExponentialDecay
from ..utils.rng import spawn


@dataclass
class TrainConfig:
    """Training hyper-parameters.

    The paper trains 40 epochs at lr=2e-5 with batch size 8 on GPU;
    the scaled-down CPU default is fewer epochs at a proportionally
    larger learning rate (the Fig. 10 bench sweeps both).

    ``use_batched`` selects the batched ``loss_batch`` path (the
    escape hatch back to the per-sample loop is ``use_batched=False``
    — useful when bisecting a regression between the two paths).
    """

    epochs: int = 3
    batch_size: int = 8
    lr: float = 2e-3
    lr_decay: float = 0.95
    max_grad_norm: float = 5.0
    max_train_samples: Optional[int] = None
    seed: int = 0
    use_batched: bool = True
    verbose: bool = False


@dataclass
class TrainHistory:
    """Per-epoch mean loss (plus anything callbacks append)."""

    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    def improved(self) -> bool:
        """Did loss go down from first to last epoch?"""
        return len(self.epoch_losses) >= 2 and self.epoch_losses[-1] < self.epoch_losses[0]


class Trainer:
    """Mini-batch trainer."""

    def __init__(self, model, config: Optional[TrainConfig] = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.lr,
            max_grad_norm=self.config.max_grad_norm,
        )
        self.scheduler = ExponentialDecay(self.optimizer, gamma=self.config.lr_decay)

    @property
    def batched(self) -> bool:
        """Whether training will go through ``loss_batch``."""
        return self.config.use_batched and callable(
            getattr(self.model, "loss_batch", None)
        )

    def fit(
        self,
        samples: Sequence[PredictionSample],
        epoch_callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainHistory:
        rng = spawn(self.config.seed)
        samples = list(samples)
        if self.config.max_train_samples is not None and len(samples) > self.config.max_train_samples:
            picked = rng.choice(len(samples), size=self.config.max_train_samples, replace=False)
            samples = [samples[i] for i in picked]
        history = TrainHistory()
        was_training = getattr(self.model, "training", True)
        self.model.train()
        try:
            for epoch in range(self.config.epochs):
                order = rng.permutation(len(samples))
                losses: List[float] = []
                for start in range(0, len(order), self.config.batch_size):
                    batch = [samples[i] for i in order[start:start + self.config.batch_size]]
                    loss_value = self._train_batch(batch)
                    losses.append(loss_value)
                mean_loss = float(np.mean(losses)) if losses else float("nan")
                history.epoch_losses.append(mean_loss)
                if self.config.verbose:
                    print(f"epoch {epoch + 1}/{self.config.epochs}: loss={mean_loss:.4f}")
                if epoch_callback is not None:
                    epoch_callback(epoch, mean_loss)
                self.scheduler.step()
        finally:
            # restore the caller's train/eval mode (mirrors the
            # evaluator and compare_throughput) instead of leaving the
            # model unconditionally in train mode
            self.model.train(was_training)
        return history

    def _train_batch(self, batch: Sequence[PredictionSample]) -> float:
        self.optimizer.zero_grad()
        shared = self.model.compute_embeddings()
        if self.batched:
            total = self.model.loss_batch(batch, *shared)
        else:
            total = None
            for sample in batch:
                loss = self.model.loss_sample(sample, *shared)
                total = loss if total is None else total + loss
        total = total * (1.0 / len(batch))
        total.backward()
        self.optimizer.step()
        return float(total.item())
