"""Train/validation/test splitting.

The paper randomly assigns 80% of trajectories to training, 10% to
validation and 10% to test (Sec. VI-A, implementation details).  The
split happens at the *sample* level here: a sample's history is always
composed of the user's earlier trajectories regardless of which split
the current trajectory landed in, matching how the original pipeline
feeds full user history at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .datasets import Dataset
from .trajectory import PredictionSample, samples_from_trajectories


@dataclass
class SplitSamples:
    train: List[PredictionSample]
    valid: List[PredictionSample]
    test: List[PredictionSample]

    def __iter__(self):
        return iter((self.train, self.valid, self.test))

    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.valid), len(self.test)


def make_samples(
    dataset: Dataset,
    last_only: bool = False,
    min_prefix: int = 1,
) -> List[PredictionSample]:
    """All prediction samples across users (time-ordered within a user)."""
    samples: List[PredictionSample] = []
    for user, trajectories in dataset.trajectories.items():
        samples.extend(
            samples_from_trajectories(trajectories, min_prefix=min_prefix, last_only=last_only)
        )
    return samples


def split_samples(
    samples: List[PredictionSample],
    seed: int = 0,
    fractions: Tuple[float, float, float] = (0.8, 0.1, 0.1),
) -> SplitSamples:
    """Randomly split 80/10/10 **by trajectory** (paper protocol).

    The unit of assignment is the trajectory, not the sample: all
    prediction samples carved from one trajectory land in the same
    split.  Splitting at the sample level would leak — a trajectory's
    longer-prefix training sample contains its shorter-prefix test
    sample's transition verbatim, which lets even a first-order Markov
    chain read answers off the training set.
    """
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("fractions must sum to 1")
    rng = np.random.default_rng(seed)
    trajectory_keys = sorted({s.history_key for s in samples})
    order = rng.permutation(len(trajectory_keys))
    n_train = int(fractions[0] * len(trajectory_keys))
    n_valid = int(fractions[1] * len(trajectory_keys))
    assignment: Dict[Tuple[int, int], str] = {}
    for position, key_index in enumerate(order):
        if position < n_train:
            bucket = "train"
        elif position < n_train + n_valid:
            bucket = "valid"
        else:
            bucket = "test"
        assignment[trajectory_keys[key_index]] = bucket
    buckets: Dict[str, List[PredictionSample]] = {"train": [], "valid": [], "test": []}
    for sample in samples:
        buckets[assignment[sample.history_key]].append(sample)
    return SplitSamples(train=buckets["train"], valid=buckets["valid"], test=buckets["test"])
