"""Consistent-hash user routing for the shard pool.

Users are placed on a ring of md5-hashed points; each shard owns the
arc behind its virtual nodes.  md5 — not Python's ``hash`` — because
routing must agree across *processes*: ``PYTHONHASHSEED`` varies per
interpreter, and a router restart that re-routed users to different
shards would orphan their durable state.

Virtual nodes smooth the arc lengths (150 per shard keeps the max/min
user load ratio close to 1), and consistent hashing keeps reshards
incremental: growing N shards to N+1 moves only ~1/(N+1) of the users,
which is the property that makes a future live-reshard story feasible
without rewriting every shard's log.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

DEFAULT_VNODES = 150


def _point(key: str) -> int:
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Maps integer user ids onto a fixed set of shard indices."""

    def __init__(self, shards: Sequence[int], vnodes: int = DEFAULT_VNODES):
        if not shards:
            raise ValueError("ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("duplicate shard indices")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.shards = list(shards)
        points: List[tuple] = []
        for shard in shards:
            for replica in range(vnodes):
                points.append((_point(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, user_id: int) -> int:
        """The shard owning ``user_id`` (stable across processes/runs)."""
        where = bisect.bisect_right(self._points, _point(f"user-{user_id}"))
        return self._owners[where % len(self._owners)]

    def distribution(self, user_ids: Sequence[int]) -> Dict[int, int]:
        """How many of ``user_ids`` land on each shard (diagnostics)."""
        counts = {shard: 0 for shard in self.shards}
        for user in user_ids:
            counts[self.shard_for(user)] += 1
        return counts
