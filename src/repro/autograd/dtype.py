"""Configurable default floating dtype for the autograd engine.

Historically every literal construction site (``Tensor`` from ints,
``zeros``/``ones``/``arange``, ``pad_stack``) hard-coded ``float64``.
That is the right default for training — gradcheck and the golden
metrics are calibrated at 1e-8/1e-9 — but the compiled inference path
(see :mod:`repro.autograd.plan`) wants the option of float32
end-to-end: half the memory bandwidth on a path that never calls
``backward``.

``set_default_dtype`` switches the process-wide default and returns a
handle that restores the previous value, so it doubles as a context
manager::

    set_default_dtype(np.float32)          # permanent switch
    with set_default_dtype(np.float32):    # scoped switch
        ...

Reads and writes are lock-guarded, so concurrent serving threads always
observe a consistent value.  The context form restores the *process*
default on exit; scoped use is intended for setup code (model
construction, tests), not for racing per-request switches — compiled
plans carry their dtype explicitly and never touch this switch at run
time.
"""

from __future__ import annotations

import threading

import numpy as np

_FLOAT_DTYPES = (np.dtype(np.float16), np.dtype(np.float32), np.dtype(np.float64))

_lock = threading.Lock()
_default = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """The dtype new floating tensors are created with."""
    return _default


class _RestoreDefaultDtype:
    """Handle returned by :func:`set_default_dtype`.

    Entering is a no-op (the switch already happened); exiting restores
    the default that was active before the call.
    """

    __slots__ = ("_previous",)

    def __init__(self, previous: np.dtype):
        self._previous = previous

    def __enter__(self) -> np.dtype:
        return get_default_dtype()

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _default
        with _lock:
            _default = self._previous
        return False


def set_default_dtype(dtype) -> _RestoreDefaultDtype:
    """Set the default floating dtype (process-wide, effective at once).

    Returns a context-manager handle restoring the previous default, so
    ``with set_default_dtype(np.float32): ...`` gives a scoped switch.
    """
    global _default
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise TypeError(f"default dtype must be a floating dtype, got {resolved}")
    with _lock:
        previous = _default
        _default = resolved
    return _RestoreDefaultDtype(previous)
