"""TSPN-RA reproduction: spatial & semantic next-POI prediction with
remote-sensing augmentation (ICDE 2024).

Public API tour
---------------
>>> from repro.data import build_dataset, make_samples, split_samples
>>> from repro.core import TSPNRA, TSPNRAConfig
>>> from repro.train import Trainer, TrainConfig
>>> from repro.eval import evaluate
>>> dataset = build_dataset("nyc", seed=0, scale=0.3)
>>> splits = split_samples(make_samples(dataset))
>>> model = TSPNRA.from_dataset(dataset, TSPNRAConfig(dim=32))
>>> Trainer(model, TrainConfig(epochs=2)).fit(splits.train)  # doctest: +SKIP
>>> evaluate(model, splits.test)  # doctest: +SKIP

Sub-packages: ``autograd`` / ``nn`` / ``optim`` (the ML substrate),
``geo`` / ``spatial`` / ``roadnet`` / ``imagery`` (the urban substrate),
``data`` (check-ins), ``graphs`` (QR-P), ``core`` (the model),
``baselines``, ``train``, ``eval``, ``experiments``.
"""

__version__ = "1.0.0"

from . import (
    autograd,
    baselines,
    core,
    data,
    eval,
    experiments,
    geo,
    graphs,
    imagery,
    nn,
    optim,
    roadnet,
    spatial,
    train,
    utils,
)

__all__ = [
    "autograd",
    "baselines",
    "core",
    "data",
    "eval",
    "experiments",
    "geo",
    "graphs",
    "imagery",
    "nn",
    "optim",
    "roadnet",
    "spatial",
    "train",
    "utils",
]
