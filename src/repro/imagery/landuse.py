"""Synthetic land-use fields.

The paper's remote-sensing augmentation works because satellite pixels
correlate with urban function (paper Fig. 4: districts are visually
distinguishable; coastlines, parks and dense cores look different).
This module synthesises that correlation explicitly: a
:class:`LandUseMap` assigns every point one of six classes from a set
of parametric primitives (city cores, park blobs, industrial blobs, a
coastline, rivers).  Both the imagery renderer *and* the POI generator
read the same map, so image content genuinely predicts POI semantics —
the signal TSPN-RA's Me1 is supposed to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geo import BoundingBox


class LandUse(IntEnum):
    """Land-use classes, ordered by rendering precedence (water wins)."""

    WATER = 0
    PARK = 1
    COMMERCIAL = 2
    RESIDENTIAL = 3
    INDUSTRIAL = 4
    RURAL = 5


@dataclass(frozen=True)
class CityCenter:
    """A downtown: commercial core surrounded by a residential ring."""

    x: float
    y: float
    commercial_radius: float
    urban_radius: float

    def __post_init__(self):
        if self.urban_radius < self.commercial_radius:
            raise ValueError("urban_radius must contain commercial_radius")


@dataclass(frozen=True)
class Blob:
    """A roughly circular feature (park or industrial zone)."""

    x: float
    y: float
    radius: float


@dataclass(frozen=True)
class Coastline:
    """A north-south coastline ``x = base + amplitude * sin(freq * y + phase)``.

    ``side`` names the ocean side: ``"east"`` puts water at
    ``x > shore`` (Florida's Atlantic coast, paper Fig. 12); ``"west"``
    puts water at ``x < shore`` (California's Pacific coast).
    """

    base: float
    amplitude: float = 0.0
    frequency: float = 1.0
    phase: float = 0.0
    side: str = "east"

    def __post_init__(self):
        if self.side not in ("east", "west"):
            raise ValueError("side must be 'east' or 'west'")

    def shore_x(self, y) -> np.ndarray:
        return self.base + self.amplitude * np.sin(self.frequency * np.asarray(y) + self.phase)

    def is_water(self, x, y) -> np.ndarray:
        shore = self.shore_x(y)
        if self.side == "east":
            return np.asarray(x) > shore
        return np.asarray(x) < shore


@dataclass
class LandUseMap:
    """Composable land-use field over a bounding box."""

    bbox: BoundingBox
    centers: List[CityCenter] = field(default_factory=list)
    parks: List[Blob] = field(default_factory=list)
    industrial: List[Blob] = field(default_factory=list)
    coast: Optional[Coastline] = None

    def class_at(self, x: float, y: float) -> LandUse:
        return LandUse(int(self.classes_at(np.array([x]), np.array([y]))[0]))

    def classes_at(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised classification; precedence water > park > industrial
        > commercial > residential > rural."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        out = np.full(xs.shape, int(LandUse.RURAL), dtype=np.int64)

        for center in self.centers:
            d2 = (xs - center.x) ** 2 + (ys - center.y) ** 2
            out = np.where(d2 <= center.urban_radius ** 2, int(LandUse.RESIDENTIAL), out)
        for center in self.centers:
            d2 = (xs - center.x) ** 2 + (ys - center.y) ** 2
            out = np.where(d2 <= center.commercial_radius ** 2, int(LandUse.COMMERCIAL), out)
        for blob in self.industrial:
            d2 = (xs - blob.x) ** 2 + (ys - blob.y) ** 2
            out = np.where(d2 <= blob.radius ** 2, int(LandUse.INDUSTRIAL), out)
        for blob in self.parks:
            d2 = (xs - blob.x) ** 2 + (ys - blob.y) ** 2
            out = np.where(d2 <= blob.radius ** 2, int(LandUse.PARK), out)
        if self.coast is not None:
            out = np.where(self.coast.is_water(xs, ys), int(LandUse.WATER), out)
        return out

    def is_land(self, x: float, y: float) -> bool:
        return self.class_at(x, y) != LandUse.WATER

    def coastal_band(self, x: float, y: float, width: float) -> bool:
        """True when (x, y) lies on land within ``width`` of the shore."""
        if self.coast is None:
            return False
        shore = float(self.coast.shore_x(np.array([y]))[0])
        if self.coast.side == "east":
            return (shore - width) <= x <= shore
        return shore <= x <= (shore + width)


def random_land_use_map(
    bbox: BoundingBox,
    rng: np.random.Generator,
    n_centers: int = 1,
    n_parks: int = 3,
    n_industrial: int = 1,
    coastal: bool = False,
) -> LandUseMap:
    """Sample a plausible land-use map (used by dataset presets)."""
    span = min(bbox.width, bbox.height)
    centers = []
    for _ in range(n_centers):
        cx = bbox.min_x + rng.uniform(0.25, 0.75) * bbox.width
        cy = bbox.min_y + rng.uniform(0.25, 0.75) * bbox.height
        commercial = rng.uniform(0.06, 0.12) * span
        centers.append(
            CityCenter(cx, cy, commercial_radius=commercial, urban_radius=commercial * rng.uniform(2.2, 3.0))
        )
    parks = [
        Blob(
            bbox.min_x + rng.uniform(0.1, 0.9) * bbox.width,
            bbox.min_y + rng.uniform(0.1, 0.9) * bbox.height,
            rng.uniform(0.03, 0.08) * span,
        )
        for _ in range(n_parks)
    ]
    industrial = [
        Blob(
            bbox.min_x + rng.uniform(0.1, 0.9) * bbox.width,
            bbox.min_y + rng.uniform(0.1, 0.9) * bbox.height,
            rng.uniform(0.05, 0.1) * span,
        )
        for _ in range(n_industrial)
    ]
    coast = None
    if coastal:
        coast = Coastline(
            base=bbox.min_x + 0.78 * bbox.width,
            amplitude=0.04 * bbox.width,
            frequency=2.0 * np.pi / bbox.height,
            phase=rng.uniform(0, 2 * np.pi),
        )
    return LandUseMap(bbox=bbox, centers=centers, parks=parks, industrial=industrial, coast=coast)
