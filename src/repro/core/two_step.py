"""Two-step prediction: tile selection then POI ranking (paper Sec. V-B).

Step one ranks all leaf tiles by cosine similarity to the fused tile
vector h_out_tau; step two restricts POI candidates to the top-K tiles
and ranks them by cosine similarity to h_out_p.

The ``*_batch`` variants score a whole batch of fused output vectors
against the leaf/POI embedding tables with a single matmul — the
vectorised inference path — and then read each sample's ranking off
its own score row, so they produce exactly the per-sample orderings.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..serve.protocol import rank_of_target  # noqa: F401  (canonical home; re-exported)


def cosine_similarities(output: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """cos(theta) between one output vector and each candidate row."""
    out_norm = output / (np.linalg.norm(output) + 1e-12)
    cand_norm = candidates / (np.linalg.norm(candidates, axis=1, keepdims=True) + 1e-12)
    return cand_norm @ out_norm


def rank_by_cosine(output: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Indices of ``candidates`` rows sorted by descending cosine sim."""
    return np.argsort(-cosine_similarities(output, candidates), kind="stable")


def select_tiles(
    tile_output: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
    k: int,
) -> List[int]:
    """Step one: the top-K leaf tiles R_T[1:K]."""
    order = rank_by_cosine(tile_output, leaf_embeddings)
    return [leaf_ids[i] for i in order[:k]]


def rank_tiles(
    tile_output: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
) -> List[int]:
    """The full ranked tile list R_T."""
    order = rank_by_cosine(tile_output, leaf_embeddings)
    return [leaf_ids[i] for i in order]


def candidate_pois(tile_system, top_tiles: Sequence[int]) -> List[int]:
    """POIs located inside the top-K tiles (step-two candidate set)."""
    pois: List[int] = []
    for tile in top_tiles:
        pois.extend(tile_system.pois_in_leaf(tile))
    return pois


def rank_pois(
    poi_output: np.ndarray,
    poi_embeddings: np.ndarray,
    candidate_ids: Sequence[int],
) -> List[int]:
    """Step two: the ranked POI list R_P over the candidate set."""
    if len(candidate_ids) == 0:
        return []
    order = rank_by_cosine(poi_output, poi_embeddings)
    return [candidate_ids[i] for i in order]


# ----------------------------------------------------------------------
# batched variants (vectorised inference path)
# ----------------------------------------------------------------------
def cosine_similarities_batch(outputs: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """cos(theta) between each output row and each candidate row.

    ``outputs``: ``(batch, dim)``; ``candidates``: ``(n, dim)``;
    returns ``(batch, n)`` — one matmul instead of a per-sample loop.
    """
    out_norm = outputs / (np.linalg.norm(outputs, axis=1, keepdims=True) + 1e-12)
    cand_norm = candidates / (np.linalg.norm(candidates, axis=1, keepdims=True) + 1e-12)
    return out_norm @ cand_norm.T


def rank_tiles_batch(
    tile_outputs: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
) -> List[List[int]]:
    """Step one for a batch: the full ranked tile list per sample."""
    scores = cosine_similarities_batch(tile_outputs, leaf_embeddings)
    orders = np.argsort(-scores, axis=1, kind="stable")
    return [[leaf_ids[i] for i in order] for order in orders]


def rank_pois_batch(
    poi_outputs: np.ndarray,
    poi_embeddings: np.ndarray,
    candidate_lists: Sequence[Sequence[int]],
) -> List[List[int]]:
    """Step two for a batch of per-sample candidate sets.

    One ``(batch, num_pois)`` matmul scores every output against the
    full POI table; each sample's ranking is then its candidate list
    stably re-ordered by its score row — identical to calling
    :func:`rank_pois` on the candidate subset, because cosine scores
    are row-independent.
    """
    scores = cosine_similarities_batch(poi_outputs, poi_embeddings)
    rankings: List[List[int]] = []
    for row, candidates in zip(scores, candidate_lists):
        if len(candidates) == 0:
            rankings.append([])
            continue
        candidate_array = np.asarray(candidates, dtype=np.int64)
        order = np.argsort(-row[candidate_array], kind="stable")
        rankings.append([int(candidate_array[i]) for i in order])
    return rankings


