"""Append-only check-in event log: the durability floor of the cluster.

One :class:`EventLogWriter` per shard appends every acknowledged
:class:`~repro.stream.events.CheckinEvent` as a JSON line carrying a
monotonically increasing ``seq`` number::

    {"seq": 42, "user_id": 7, "poi_id": 3, "timestamp": 12.5}

The log is segmented (``wal-<first_seq>.log``), rotated at a record or
byte bound, and pruned once a snapshot covers a segment's whole seq
range.  Recovery (:mod:`repro.cluster.recovery`) folds the tail —
records with ``seq`` past the latest snapshot — back into the
:class:`~repro.stream.state.UserStateStore`.

Durability contract
-------------------
Every ``append`` flushes the Python buffer, so an acknowledged event
survives a crashed *process* (SIGKILL) under any policy: the bytes are
in the OS page cache.  The ``fsync`` policy only governs survival of a
crashed *machine*:

* ``always`` — ``os.fsync`` after every record (each ack is on disk);
* ``rotate`` — fsync when a segment rotates or closes (bounded loss:
  at most the open segment);
* ``never``  — leave it to the OS writeback.

Torn writes: a crash can leave a truncated final record.  The reader
skips it with a logged warning — it was never acknowledged, so losing
it is correct — while a malformed record anywhere *else* means real
corruption and raises :class:`WalCorruptionError`.  Writers never
append to a recovered segment (a fresh segment starts after every
recovery), so the torn tail can't be buried mid-file by later appends.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..stream.events import CheckinEvent, event_from_json, event_to_json

logger = logging.getLogger("repro.cluster.wal")

FSYNC_POLICIES = ("always", "rotate", "never")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


class WalCorruptionError(RuntimeError):
    """A malformed record somewhere a torn final write cannot explain."""


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])
    except ValueError:
        return None


def list_segments(directory) -> List[Path]:
    """Log segments under ``directory``, in seq order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    segments = [
        (first, path)
        for path in directory.iterdir()
        if (first := _segment_first_seq(path)) is not None
    ]
    segments.sort()
    return [path for _, path in segments]


class EventLogWriter:
    """Appends events to segmented JSON-line log files.

    One writer per log directory, but that writer may be shared by many
    threads: the single-process durable tier sits behind a
    ``ThreadingHTTPServer``, so ``append``/``rotate``/``prune`` hold an
    internal lock, keeping seq numbers dense and monotonic and record
    lines unterleaved no matter which thread acknowledges the event.
    ``next_seq`` seeds the sequence counter — recovery passes
    ``last_seq + 1`` so the log stays densely numbered across restarts.
    """

    def __init__(
        self,
        directory,
        fsync: str = "rotate",
        segment_max_records: int = 10000,
        segment_max_bytes: int = 4 << 20,
        next_seq: int = 1,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        if next_seq < 1:
            raise ValueError("next_seq must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_max_records = segment_max_records
        self.segment_max_bytes = segment_max_bytes
        self._next_seq = next_seq
        self._lock = threading.RLock()  # close -> rotate re-enters
        self._fh = None
        self._segment_path: Optional[Path] = None
        self._segment_records = 0
        self._segment_bytes = 0
        self.appended = 0
        self.rotations = 0
        self.fsyncs = 0
        self.bytes_appended = 0  # lifetime bytes, across rotations

    @property
    def last_seq(self) -> int:
        """Seq of the most recent append (``next_seq - 1`` before any)."""
        return self._next_seq - 1

    @property
    def current_segment(self) -> Optional[Path]:
        return self._segment_path

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _open_segment(self) -> None:
        self._segment_path = self.directory / _segment_name(self._next_seq)
        # "x" (exclusive create): silently appending to a pre-existing
        # segment — e.g. after a botched recovery — could bury a torn
        # record mid-file where the reader must treat it as corruption
        self._fh = open(self._segment_path, "xb")
        self._segment_records = 0
        self._segment_bytes = 0

    def append(self, event: CheckinEvent) -> int:
        """Write one record; returns its ``seq``.

        The Python buffer is always flushed (process-crash durability);
        ``fsync="always"`` additionally syncs to disk before returning.
        """
        with self._lock:
            if self._fh is None:
                self._open_segment()
            elif (
                self._segment_records >= self.segment_max_records
                or self._segment_bytes >= self.segment_max_bytes
            ):
                self.rotate()
                self._open_segment()
            seq = self._next_seq
            line = json.dumps({"seq": seq, **event_to_json(event)}) + "\n"
            data = line.encode("utf-8")
            self._fh.write(data)
            self._fh.flush()
            if self.fsync == "always":
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
            self._next_seq = seq + 1
            self._segment_records += 1
            self._segment_bytes += len(data)
            self.appended += 1
            self.bytes_appended += len(data)
            return seq

    def rotate(self) -> None:
        """Close the current segment (fsyncing under ``always``/``rotate``)."""
        with self._lock:
            if self._fh is None:
                return
            self._fh.flush()
            if self.fsync in ("always", "rotate"):
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
            self._fh.close()
            self._fh = None
            # an empty segment (rotation raced the bound) is just clutter
            if self._segment_records == 0 and self._segment_path is not None:
                self._segment_path.unlink(missing_ok=True)
            self._segment_path = None
            self.rotations += 1

    def close(self) -> None:
        self.rotate()

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def prune(self, upto_seq: int) -> List[Path]:
        """Delete closed segments whose records are all ``<= upto_seq``.

        Called after a snapshot at ``upto_seq`` lands: those records can
        never be replayed again.  A segment's coverage is bounded by the
        next segment's first seq (records are densely numbered), and the
        writer's open segment is never touched.
        """
        with self._lock:
            segments = list_segments(self.directory)
            removed: List[Path] = []
            for path, following in zip(segments, segments[1:] + [None]):
                if path == self._segment_path:
                    break
                if following is None:
                    bound = self._next_seq  # last closed segment ends before next write
                else:
                    bound = _segment_first_seq(following)
                if bound - 1 <= upto_seq:
                    path.unlink(missing_ok=True)
                    removed.append(path)
                else:
                    break  # segments are seq-ordered; later ones reach further
            return removed


def remove_dead_segments(directory, last_seq: int) -> List[Path]:
    """Delete trailing segments that hold no valid record.

    A crash between segment creation and the first complete record
    leaves ``wal-<last_seq + 1>`` on disk holding nothing replayable
    (an empty file, or a single torn record).  Recovery seeds the next
    writer with ``next_seq = last_seq + 1``, whose exclusive create
    would collide with that leftover and crash-loop the shard under the
    supervisor — so recovery clears such segments first.  Only segments
    named past ``last_seq`` can be dead: a segment is named after the
    first seq written into it, so one holding any valid record would
    have pushed ``last_seq`` to or past its own name.
    """
    removed: List[Path] = []
    for path in list_segments(directory):
        first = _segment_first_seq(path)
        if first is not None and first > last_seq:
            logger.warning(
                "removing dead log segment %s (holds no valid record)", path.name
            )
            path.unlink(missing_ok=True)
            removed.append(path)
    return removed


@dataclass
class LogReadResult:
    """What a torn-tolerant read of a log directory produced."""

    records: List[Tuple[int, CheckinEvent]]
    segments: int
    torn_skipped: int

    @property
    def last_seq(self) -> int:
        return self.records[-1][0] if self.records else 0


def read_log(directory, min_seq: int = 0) -> LogReadResult:
    """Read every record with ``seq > min_seq``, tolerating a torn tail.

    The final line of the final segment may be truncated by a crash;
    it is skipped with a warning (it was never acknowledged).  Any
    other malformed line — or a non-monotonic ``seq`` — raises
    :class:`WalCorruptionError`: the log is the durability source of
    truth, and silently skipping mid-file damage would resurrect a
    store that disagrees with what clients were told.
    """
    segments = list_segments(directory)
    records: List[Tuple[int, CheckinEvent]] = []
    torn = 0
    previous_seq = None
    for segment_index, path in enumerate(segments):
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        # a well-formed file ends with a newline, so the final split
        # element is empty; anything else is a record without its
        # terminator — torn if it is the very tail of the log
        complete, tail = lines[:-1], lines[-1]
        last_segment = segment_index == len(segments) - 1
        for line_index, line in enumerate(complete):
            final_line = last_segment and line_index == len(complete) - 1 and not tail
            try:
                payload = json.loads(line)
                seq = payload.get("seq")
                if not isinstance(seq, int) or isinstance(seq, bool):
                    raise ValueError("record has no integer seq")
                event = event_from_json(
                    {k: v for k, v in payload.items() if k != "seq"}
                )
            except ValueError as error:
                if final_line:
                    logger.warning(
                        "skipping torn final record in %s: %s", path.name, error
                    )
                    torn += 1
                    continue
                raise WalCorruptionError(
                    f"malformed record at {path.name}:{line_index + 1}: {error}"
                ) from error
            if previous_seq is not None and seq <= previous_seq:
                raise WalCorruptionError(
                    f"non-monotonic seq {seq} after {previous_seq} at "
                    f"{path.name}:{line_index + 1}"
                )
            previous_seq = seq
            if seq > min_seq:
                records.append((seq, event))
        if tail:
            if last_segment:
                logger.warning(
                    "skipping torn final record in %s (no terminator, %d bytes)",
                    path.name,
                    len(tail),
                )
                torn += 1
            else:
                raise WalCorruptionError(
                    f"unterminated record mid-log in {path.name}"
                )
    return LogReadResult(records=records, segments=len(segments), torn_skipped=torn)
