"""Graph-free replay plans: the executable half of compiled inference.

A :class:`Plan` is a straight-line numpy program captured by
:mod:`repro.autograd.trace`: an ordered list of kernel calls over a
small dense value table, plus baked constants for everything that does
not depend on a feed (parameter matrices, folded subexpressions such as
``W.T``, causal masks for the traced bucket shape).  Replaying a plan
builds no :class:`~repro.autograd.Tensor` objects and no graph nodes —
each step is one kernel call writing into a preallocated, reused
buffer.

Execution contract
------------------
* ``plan.run(feeds)`` maps feed name -> ndarray and returns the output
  arrays.  Feeds must match the traced shapes exactly (callers bucket
  and pad); floating feeds are cast to the plan dtype when they differ
  (cast-free when the caller already prepared them in plan dtype).
* Buffers are reused across runs, per thread: each thread lazily gets
  its own buffer context, so a plan shared by a worker pool is safe to
  run concurrently with zero locking on the hot path.  The returned
  arrays belong to the calling thread's buffers and are valid until
  that same thread runs the plan again — consume (slice/argsort/copy)
  before the next call.
* Kernels have signature ``kernel(out, *args) -> ndarray`` where
  ``out`` is the buffer this step produced on the previous run (or
  ``None`` on the first).  Elementwise kernels write into ``out`` when
  numpy allows it; view kernels (reshape/transpose) ignore it and
  return a fresh view.  Either way the *returned* array is the step's
  value.

Float32 plans
-------------
Tracing always executes in the engine's eager dtype; ``finalize`` then
casts every floating constant to the plan dtype, and feeds are cast on
the way in, so a ``float32`` plan runs float32 end-to-end without the
model itself ever leaving float64.  Float64 plans replay the exact
eager kernel expressions over the exact eager arrays and are therefore
bit-identical to the uncompiled path.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Sequence, Tuple, Union

import numpy as np

Kernel = Callable[..., np.ndarray]
# A step argument is either an int (index into the run-time value
# table) or a baked constant ndarray.
StepArg = Union[int, np.ndarray]


class PlanError(RuntimeError):
    """A plan was fed arrays incompatible with its traced shapes."""


class _PlanContext:
    """Per-thread buffer set: the value table plus per-step out buffers.

    Run and buffer-byte counters live here too, so the hot path mutates
    only thread-private state — ``Plan.run`` never takes the plan lock.
    """

    __slots__ = ("values", "outs", "runs", "buffer_bytes")

    def __init__(self, num_values: int, num_steps: int):
        self.values: List = [None] * num_values
        self.outs: List = [None] * num_steps
        self.runs = 0
        self.buffer_bytes = 0


class Plan:
    """An executable straight-line numpy program (see module docstring)."""

    def __init__(
        self,
        *,
        dtype: np.dtype,
        inputs: Dict[str, Tuple[int, np.dtype, Tuple[int, ...]]],
        steps: Sequence[Tuple[Kernel, Tuple[StepArg, ...], int, str]],
        outputs: Sequence[StepArg],
        num_values: int,
        folded_steps: int,
        constant_bytes: int,
    ):
        self.dtype = np.dtype(dtype)
        self.inputs = dict(inputs)
        self.steps = list(steps)
        self.outputs = list(outputs)
        self.num_values = num_values
        self.folded_steps = folded_steps
        self.constant_bytes = constant_bytes
        self._local = threading.local()
        self._lock = threading.Lock()
        # every thread's context, appended under the lock on first use;
        # stats properties aggregate across it without touching run()
        self._all_contexts: List[_PlanContext] = []

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def contexts(self) -> int:
        return len(self._all_contexts)

    @property
    def runs(self) -> int:
        """Total run() invocations, summed over all thread contexts.

        Each context's counter is bumped lock-free by its owning thread;
        the sum is a consistent-enough snapshot for stats.
        """
        return sum(ctx.runs for ctx in tuple(self._all_contexts))

    @property
    def buffer_bytes(self) -> int:
        """Approximate live buffer bytes across all thread contexts.

        Views over other buffers are counted at full size, so this is an
        upper bound; it exists for the ``/stats`` plans section, not for
        accounting.
        """
        return sum(ctx.buffer_bytes for ctx in tuple(self._all_contexts))

    def describe(self) -> Dict:
        """Summary dict used by ``/stats`` and the example tour."""
        return {
            "dtype": str(self.dtype),
            "steps": self.num_steps,
            "folded_steps": self.folded_steps,
            "inputs": sorted(self.inputs),
            "constant_bytes": self.constant_bytes,
            "buffer_bytes": self.buffer_bytes,
            "contexts": self.contexts,
            "runs": self.runs,
        }

    def ops(self) -> List[str]:
        """The op names of the live (unfolded) steps, in execution order."""
        return [op for _, _, _, op in self.steps]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _context(self) -> _PlanContext:
        ctx = getattr(self._local, "ctx", None)
        if ctx is None:
            ctx = _PlanContext(self.num_values, len(self.steps))
            self._local.ctx = ctx
            with self._lock:
                self._all_contexts.append(ctx)
        return ctx

    def run(self, feeds: Dict[str, np.ndarray]) -> List[np.ndarray]:
        """Execute the plan; see the module docstring for the contract."""
        ctx = self._context()
        values = ctx.values
        dtype = self.dtype
        for name, (index, feed_dtype, feed_shape) in self.inputs.items():
            try:
                array = feeds[name]
            except KeyError:
                raise PlanError(f"missing feed {name!r}") from None
            array = np.asarray(array)
            if array.dtype != feed_dtype:
                if np.issubdtype(array.dtype, np.floating) and np.issubdtype(
                    feed_dtype, np.floating
                ):
                    array = array.astype(dtype, copy=False)
                else:
                    raise PlanError(
                        f"feed {name!r} has dtype {array.dtype}, traced {feed_dtype}"
                    )
            if array.shape != feed_shape:
                raise PlanError(
                    f"feed {name!r} has shape {array.shape}, traced {feed_shape}"
                )
            values[index] = array
        outs = ctx.outs
        for i, (kernel, args, out_index, _op) in enumerate(self.steps):
            resolved = [values[a] if type(a) is int else a for a in args]
            result = kernel(outs[i], *resolved)
            outs[i] = result
            values[out_index] = result
        ctx.runs += 1
        if ctx.buffer_bytes == 0 and outs:
            ctx.buffer_bytes = sum(
                o.nbytes for o in outs if isinstance(o, np.ndarray)
            )
        return [values[o] if type(o) is int else o for o in self.outputs]
