"""Prometheus text exposition: render, parse, and diff scrapes.

:func:`render_prometheus` turns registry snapshots (the JSON-safe dicts
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` produces, possibly
shipped over a pipe from shard processes) into the Prometheus text
format ``GET /metrics`` serves: ``# HELP``/``# TYPE`` headers, counters
with a ``_total`` suffix, histograms as cumulative ``_bucket{le=...}``
series plus ``_sum``/``_count``.  Values are labelled; the cluster
frontend stamps ``shard="NN"`` onto shard snapshots before rendering so
one scrape covers the whole ring.

:func:`parse_prometheus` is the tiny stdlib reverse map — enough to
validate a scrape in CI and to power :func:`diff_scrapes`, which turns
two scrapes into the per-interval rate/latency table behind
``repro obs-report``.  Every scrape embeds a
``repro_scrape_timestamp_seconds`` gauge precisely so the diff can
recover the interval without trusting file mtimes.
"""

from __future__ import annotations

import math
import re
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "diff_scrapes",
    "format_report",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str) -> str:
    name = _SANITISE.sub("_", raw)
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Mapping[str, str], extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshots: Sequence[Dict], *, timestamp: Optional[float] = None) -> str:
    """Registry snapshot dicts → Prometheus text format.

    Snapshots from several registries (server + per-shard) concatenate
    naturally: series with the same name but different labels group
    under one HELP/TYPE header.  Counter names get the conventional
    ``_total`` suffix here, at the exposition edge, so in-process code
    keeps the bare name.
    """
    # Group by exposition name, preserving first-seen order.
    groups: Dict[str, List[Dict]] = {}
    order: List[str] = []
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for snap in snapshots:
        name = _metric_name(snap["name"])
        if snap["kind"] == "counter" and not name.endswith("_total"):
            name += "_total"
        if name not in groups:
            groups[name] = []
            order.append(name)
            kinds[name] = snap["kind"]
            helps[name] = snap.get("help", "")
        groups[name].append(snap)

    lines: List[str] = []
    for name in order:
        kind = kinds[name]
        if helps[name]:
            lines.append(f"# HELP {name} {helps[name]}")
        lines.append(f"# TYPE {name} {kind}")
        for snap in groups[name]:
            labels = snap.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                bounds = list(snap["buckets"]) + [float("inf")]
                for bound, count in zip(bounds, snap["counts"]):
                    cumulative += count
                    le = _format_value(bound) if not math.isinf(bound) else "+Inf"
                    lines.append(
                        f"{name}_bucket{_label_str(labels, {'le': le})} {cumulative}"
                    )
                lines.append(f"{name}_sum{_label_str(labels)} {_format_value(snap['sum'])}")
                lines.append(f"{name}_count{_label_str(labels)} {snap['count']}")
            else:
                lines.append(f"{name}{_label_str(labels)} {_format_value(snap['value'])}")

    stamp = timestamp if timestamp is not None else time.time()
    lines.append("# TYPE repro_scrape_timestamp_seconds gauge")
    lines.append(f"repro_scrape_timestamp_seconds {_format_value(stamp)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# parsing (stdlib-only; the CI validator and obs-report both use this)
# ----------------------------------------------------------------------
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ ]+)"
    r"(?:\s+\d+)?$"  # optional timestamp, ignored
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


_ESCAPE_MAP = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape(value: str) -> str:
    """Decode label-value escapes in one left-to-right scan.

    Chained ``str.replace`` passes are order-sensitive and wrong: a raw
    backslash followed by ``n`` renders as ``\\\\n`` (escaped
    backslash, literal n), but a ``\\n``-first replace pass would eat
    the tail of that escaped backslash and decode it to backslash +
    newline.  A single scan consumes each escape exactly once —
    the precise inverse of :func:`_escape_label`.
    """
    if "\\" not in value:
        return value
    out: List[str] = []
    i, n = 0, len(value)
    while i < n:
        char = value[i]
        if char == "\\" and i + 1 < n:
            follower = value[i + 1]
            out.append(_ESCAPE_MAP.get(follower, "\\" + follower))
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    return float(raw)


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Text format → ``{(series_name, sorted_labels): value}``.

    Raises :class:`ValueError` on any malformed non-comment line, which
    is exactly what the CI smoke check wants: a scrape either parses
    completely or fails loudly.
    """
    series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    types: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(stripped)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample: {stripped!r}")
        labels: List[Tuple[str, str]] = []
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = _LABEL.findall(raw_labels)
            reassembled = ",".join(f'{k}="{v}"' for k, v in consumed)
            if len(reassembled) != len(raw_labels.rstrip(",")):
                raise ValueError(f"line {lineno}: malformed labels: {raw_labels!r}")
            labels = [(k, _unescape(v)) for k, v in consumed]
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(f"line {lineno}: bad value: {match.group('value')!r}")
        series[(match.group("name"), tuple(sorted(labels)))] = value
    series.setdefault(("__types__", ()), 0.0)  # sentinel: parse reached EOF
    series.pop(("__types__", ()))
    return series


# ----------------------------------------------------------------------
# scrape diffing (repro obs-report)
# ----------------------------------------------------------------------
def _series_by_name(parsed: Mapping) -> Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], float]]]:
    grouped: Dict[str, List] = {}
    for (name, labels), value in parsed.items():
        grouped.setdefault(name, []).append((labels, value))
    return grouped


def diff_scrapes(before_text: str, after_text: str) -> Dict:
    """Two scrapes → rates and interval latency quantiles.

    Counters report ``delta`` and ``per_second`` over the embedded
    scrape-timestamp interval.  Histograms report interval count, mean,
    and p50/p95/p99 from the *bucket deltas* — the latency of requests
    served between the two scrapes, not since process start.  Gauges
    report before → after.

    The two scrapes need not cover identical series: a series new in
    ``after`` is flagged ``absent_before`` (its delta counts from
    zero), and series that vanished land in the ``absent`` list — both
    surface as notes in :func:`format_report` instead of a KeyError.
    A scrape missing its ``repro_scrape_timestamp_seconds`` gauge
    (hand-edited files, foreign exporters) yields ``interval_seconds
    = None`` and per-second rates of ``None`` with an actionable note,
    rather than rates computed over a bogus interval.
    """
    before = parse_prometheus(before_text)
    after = parse_prometheus(after_text)
    notes: List[str] = []
    t0 = before.get(("repro_scrape_timestamp_seconds", ()))
    t1 = after.get(("repro_scrape_timestamp_seconds", ()))
    if t0 is None or t1 is None:
        interval = None
        missing = [side for side, t in (("before", t0), ("after", t1)) if t is None]
        notes.append(
            "repro_scrape_timestamp_seconds is missing from the "
            + " and ".join(missing)
            + (" scrapes" if len(missing) > 1 else " scrape")
            + "; per-second rates omitted — scrape GET /metrics directly "
            "(the gauge is embedded in every scrape this stack renders)"
        )
    else:
        interval = max(t1 - t0, 0.0)

    def _rate(delta: float) -> Optional[float]:
        if interval is None:
            return None
        return delta / interval if interval > 0 else 0.0

    absent = [
        {"name": name, "labels": dict(labels)}
        for name, labels in sorted(set(before) - set(after))
        if name != "repro_scrape_timestamp_seconds"
    ]

    counters: List[Dict] = []
    histograms: List[Dict] = []
    gauges: List[Dict] = []
    quality: List[Dict] = []

    # Histogram series come as name_bucket/name_sum/name_count triples;
    # reassemble per (base name, labels-minus-le).
    hist_parts: Dict[Tuple[str, Tuple], Dict] = {}

    for key, after_value in sorted(after.items()):
        name, labels = key
        if name == "repro_scrape_timestamp_seconds":
            continue
        before_value = before.get(key)
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            label_dict = dict(labels)
            le = label_dict.pop("le", None)
            part_key = (base, tuple(sorted(label_dict.items())))
            entry = hist_parts.setdefault(part_key, {"buckets": []})
            delta = after_value - (before_value or 0.0)
            entry["buckets"].append((_parse_value(le) if le else float("inf"), delta))
        elif name.endswith("_sum") and (name[: -len("_sum")] + "_count", labels) in after:
            base = name[: -len("_sum")]
            part_key = (base, labels)
            hist_parts.setdefault(part_key, {"buckets": []})["sum"] = after_value - (
                before_value or 0.0
            )
        elif name.endswith("_count") and (name[: -len("_count")] + "_sum", labels) in after:
            base = name[: -len("_count")]
            part_key = (base, labels)
            hist_parts.setdefault(part_key, {"buckets": []})["count"] = after_value - (
                before_value or 0.0
            )
        elif name.endswith("_total"):
            delta = after_value - (before_value or 0.0)
            counters.append(
                {
                    "name": name,
                    "labels": dict(labels),
                    "delta": delta,
                    "per_second": _rate(delta),
                    "absent_before": before_value is None,
                }
            )
        else:
            row = {
                "name": name,
                "labels": dict(labels),
                "before": before_value,
                "after": after_value,
            }
            # model-quality and drift gauges get their own report
            # section; burying them in the changed-gauges noise would
            # defeat the point of scraping them
            if name.startswith(("repro_quality_", "repro_drift_")):
                quality.append(row)
            else:
                gauges.append(row)

    for (base, labels), parts in sorted(hist_parts.items()):
        count = parts.get("count", 0.0)
        buckets = sorted(parts["buckets"])
        quantiles = {
            f"p{q}": _delta_bucket_quantile(buckets, count, q) for q in (50, 95, 99)
        }
        histograms.append(
            {
                "name": base,
                "labels": dict(labels),
                "count": count,
                "per_second": _rate(count),
                "mean": (parts.get("sum", 0.0) / count) if count else 0.0,
                **quantiles,
            }
        )

    return {
        "interval_seconds": interval,
        "counters": counters,
        "histograms": histograms,
        "gauges": gauges,
        "quality": quality,
        "absent": absent,
        "notes": notes,
    }


def _delta_bucket_quantile(cumulative_deltas: Sequence[Tuple[float, float]],
                           total: float, q: float) -> float:
    """Quantile from *cumulative* bucket deltas (Prometheus-style)."""
    if total <= 0:
        return 0.0
    rank = total * q / 100.0
    previous_bound, previous_cum = 0.0, 0.0
    for bound, cum in cumulative_deltas:
        if cum >= rank:
            in_bucket = cum - previous_cum
            if math.isinf(bound):
                return previous_bound
            if in_bucket <= 0:
                return bound
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cum
    return previous_bound


def format_report(diff: Dict, *, min_delta: float = 0.0) -> str:
    """The ``repro obs-report`` table, as plain text."""
    lines: List[str] = []
    interval = diff["interval_seconds"]
    if interval is None:
        lines.append("interval: unknown (scrape-timestamp gauge missing; "
                     "rates omitted)")
    else:
        lines.append(f"interval: {interval:.2f}s")
    for note in diff.get("notes", ()):
        lines.append(f"note: {note}")

    def _rate_cell(rate: Optional[float], width: int) -> str:
        return f"{'-':>{width}}" if rate is None else f"{rate:>{width}.2f}"

    new_series = False
    active_counters = [c for c in diff["counters"] if abs(c["delta"]) > min_delta]
    if active_counters:
        lines.append("")
        lines.append(f"{'counter':<52} {'delta':>10} {'rate/s':>10}")
        for c in sorted(active_counters, key=lambda c: -c["delta"]):
            label = c["name"] + _label_str(c["labels"])
            marker = ""
            if c.get("absent_before"):
                marker, new_series = " *", True
            lines.append(
                f"{label:<52} {c['delta']:>10.0f} "
                f"{_rate_cell(c['per_second'], 10)}{marker}"
            )

    active_hists = [h for h in diff["histograms"] if h["count"] > min_delta]
    if active_hists:
        lines.append("")
        header = (
            f"{'histogram (ms for *_seconds)':<44} {'count':>8} {'rate/s':>8} "
            f"{'mean':>8} {'p50':>8} {'p95':>8} {'p99':>8}"
        )
        lines.append(header)
        for h in sorted(active_hists, key=lambda h: -h["count"]):
            label = h["name"] + _label_str(h["labels"])
            # *_seconds histograms read best in milliseconds; anything
            # else (batch sizes, byte counts) stays in its own unit
            scale = 1000.0 if h["name"].endswith("_seconds") else 1.0
            lines.append(
                f"{label:<44} {h['count']:>8.0f} {_rate_cell(h['per_second'], 8)} "
                f"{h['mean'] * scale:>8.2f} {h['p50'] * scale:>8.2f} "
                f"{h['p95'] * scale:>8.2f} {h['p99'] * scale:>8.2f}"
            )

    def _gauge_table(title: str, rows: Sequence[Dict]) -> None:
        lines.append("")
        lines.append(f"{title:<52} {'before':>10} {'after':>10}")
        for g in rows:
            label = g["name"] + _label_str(g["labels"])
            before = "-" if g["before"] is None else f"{g['before']:.6g}"
            lines.append(f"{label:<52} {before:>10} {g['after']:>10.6g}")

    quality = diff.get("quality", ())
    if quality:
        _gauge_table("model quality / drift", quality)

    changed_gauges = [
        g for g in diff["gauges"]
        if g["before"] is None or g["before"] != g["after"]
    ]
    if changed_gauges:
        _gauge_table("gauge", changed_gauges)

    if new_series:
        lines.append("")
        lines.append("* series absent from the before scrape; "
                     "delta counts from zero")

    absent = diff.get("absent", ())
    if absent:
        lines.append("")
        lines.append(f"absent from the after scrape ({len(absent)} series):")
        for row in absent[:20]:
            lines.append(f"  {row['name']}{_label_str(row['labels'])}")
        if len(absent) > 20:
            lines.append(f"  ... and {len(absent) - 20} more")

    return "\n".join(lines) + "\n"
