"""Check-in records: (user, POI, timestamp) triples.

Timestamps are float *hours* from an arbitrary epoch; half-hour slot
indices for the temporal encoder (paper Sec. IV-A: "divide a day into
48 time intervals") derive directly from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

HOURS_PER_DAY = 24.0
SLOTS_PER_DAY = 48


def time_slot(timestamp_hours: float) -> int:
    """Half-hour slot of day in [0, 48)."""
    return int((timestamp_hours % HOURS_PER_DAY) * 2) % SLOTS_PER_DAY


@dataclass(frozen=True)
class Checkin:
    user_id: int
    poi_id: int
    timestamp: float  # hours

    @property
    def slot(self) -> int:
        return time_slot(self.timestamp)


class CheckinDataset:
    """All check-ins, indexed by user and sorted by time within a user.

    **Invariant (enforced here, relied on everywhere):** the per-user
    sequence returned by :meth:`of_user` is non-decreasing in
    ``timestamp``.  Construction sorts each user's records (stable, so
    equal-timestamp records keep their input order) regardless of the
    input order — the trajectory gap rule
    (:func:`~repro.data.trajectory.split_into_trajectories`), the
    streaming store's ordered appends
    (:class:`repro.stream.UserStateStore`) and the replayed event
    stream (:func:`repro.stream.events_from_checkins`) all depend on
    it and *raise* on out-of-order input rather than mis-splitting
    sessions silently.
    """

    def __init__(self, checkins: List[Checkin]):
        self._by_user: Dict[int, List[Checkin]] = {}
        for record in checkins:
            self._by_user.setdefault(record.user_id, []).append(record)
        for user, records in self._by_user.items():
            records.sort(key=lambda r: r.timestamp)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_user.values())

    @property
    def num_users(self) -> int:
        return len(self._by_user)

    def users(self) -> List[int]:
        return sorted(self._by_user)

    def of_user(self, user_id: int) -> List[Checkin]:
        """One user's check-ins, guaranteed time-sorted (see class doc)."""
        return list(self._by_user.get(user_id, []))

    def all_checkins(self) -> Iterator[Checkin]:
        for user in self.users():
            yield from self._by_user[user]

    def poi_visit_counts(self, num_pois: int) -> np.ndarray:
        counts = np.zeros(num_pois, dtype=np.int64)
        for record in self.all_checkins():
            counts[record.poi_id] += 1
        return counts
