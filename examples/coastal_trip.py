"""Coastal trip scenario (the paper's Fig. 12 story, runnable).

A user has been checking in along Florida's Atlantic coast.  Where
will they go next?  This drives the repository's Fig. 12 experiment:
it trains four systems — full TSPN-RA, TSPN-RA on 20%-noise imagery,
TSPN-RA without the tile filter, and LSTPM — and compares how coastal
their top-50 recommendations are for the most-coastal test trajectory.

Takes a few minutes on a laptop CPU:

    python examples/coastal_trip.py
"""

from dataclasses import replace

from repro.experiments import QUICK
from repro.experiments.figures import run_fig12


def main() -> None:
    profile = replace(QUICK, eval_samples=120)
    print("running the Fig. 12 case study (four systems on florida)...")
    results, full_metrics = run_fig12(profile)

    print("\ncoastal fraction of each system's top-50 recommendations:")
    for entry in results:
        bar = "#" * int(round(entry.coastal_fraction * 40))
        print(f"  {entry.model_name:28s} {entry.coastal_fraction:5.2f}  {bar}")

    print("\nfull TSPN-RA test metrics on this dataset:")
    for name in ("Recall@5", "Recall@10", "MRR"):
        print(f"  {name:10s} {full_metrics[name]:.4f}")

    by_name = {r.model_name: r for r in results}
    clean = by_name["TSPN-RA"].coastal_fraction
    noisy = by_name["TSPN-RA (noisy imagery)"].coastal_fraction
    if clean > noisy:
        print(
            f"\ncorrupting the imagery moved recommendations off the coast "
            f"({clean:.2f} -> {noisy:.2f}): the satellite tiles encode the "
            "'eastern coastline' feature (paper Fig. 12b)."
        )
    else:
        print(
            f"\nno imagery effect on this particular trajectory "
            f"({clean:.2f} vs {noisy:.2f}) — at example scale the picked "
            "sample matters; benchmarks/bench_fig12_case_study.py runs the "
            "calibrated version that reproduces the paper's ordering."
        )


if __name__ == "__main__":
    main()
