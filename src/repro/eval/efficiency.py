"""Efficiency probes for the Table V comparison.

Measures wall-clock training time, inference time and peak traced
memory on a common workload.  Absolute values are CPU/numpy-specific;
the reproduction target is the *relative* ordering across models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from ..utils.timer import Stopwatch


@dataclass
class EfficiencyReport:
    """One Table V row."""

    model_name: str
    peak_memory_mb: float
    train_seconds: float
    infer_seconds: float

    def as_row(self) -> list:
        return [
            self.model_name,
            f"{self.peak_memory_mb:,.1f}M",
            _mmss(self.train_seconds),
            _mmss(self.infer_seconds),
        ]


def _mmss(seconds: float) -> str:
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes):02d}:{secs:04.1f}"


def measure(
    model_name: str,
    train_fn: Callable[[], None],
    infer_fn: Callable[[], None],
) -> EfficiencyReport:
    """Run train then inference closures under the probes."""
    with Stopwatch(trace_memory=True) as train_watch:
        train_fn()
    with Stopwatch(trace_memory=False) as infer_watch:
        infer_fn()
    return EfficiencyReport(
        model_name=model_name,
        peak_memory_mb=train_watch.result.peak_megabytes,
        train_seconds=train_watch.result.seconds,
        infer_seconds=infer_watch.result.seconds,
    )
