"""POI embedding module Me2 (paper Sec. IV-B, Eq. 5).

``E_P(p) = alpha * embed_id(p.id) + (1 - alpha) * embed_cate(p.cate)``

With ``use_category=False`` (Table IV "No POI Category") the category
term is dropped and the id embedding is used alone.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import Tensor
from ..nn import Embedding, Module
from ..utils.rng import default_rng


class POIEmbedder(Module):
    """Id + category embedding table for the whole POI set."""

    def __init__(
        self,
        num_pois: int,
        num_categories: int,
        categories: np.ndarray,
        dim: int,
        alpha: float = 0.7,
        use_category: bool = True,
        rng=None,
    ):
        super().__init__()
        rng = rng or default_rng()
        if len(categories) != num_pois:
            raise ValueError("categories must give one category per POI")
        self.num_pois = num_pois
        self.alpha = alpha
        self.use_category = use_category
        self.categories = np.asarray(categories, dtype=np.int64)
        self.id_table = Embedding(num_pois, dim, rng=rng)
        self.cate_table = Embedding(num_categories, dim, rng=rng)

    def forward(self, poi_ids: Sequence[int]) -> Tensor:
        ids = np.asarray(poi_ids, dtype=np.int64)
        id_part = self.id_table(ids)
        if not self.use_category:
            return id_part
        cate_part = self.cate_table(self.categories[ids])
        return id_part * self.alpha + cate_part * (1.0 - self.alpha)

    def all_embeddings(self) -> Tensor:
        """E_P for the full POI set, shape ``(num_pois, dim)``."""
        return self.forward(np.arange(self.num_pois))
