"""Crash recovery: latest snapshot + event-log tail fold.

The per-user monotonic ``state_version`` was designed replay-friendly:
:meth:`UserStateStore.append` is a deterministic fold step, so

    recovered = fold(append, load(latest snapshot), log tail)

reproduces the exact pre-crash state — same sessions, same prefixes,
same version counters — for every event that was acknowledged.
:class:`DurableIngest` is the write side of that contract: an event is
applied to the store, then logged, then acknowledged, so the log holds
exactly the acknowledged events (an event rejected by the store — e.g.
out-of-order — never reaches the log and can never be replayed).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional

from ..obs import MetricsRegistry
from ..obs.tracing import span
from ..stream.events import CheckinEvent
from ..stream.ingest import StreamIngest
from ..stream.state import AppendResult, StoreConfig, UserStateStore
from ..utils.cache import LRUCache
from .snapshot import (
    LoadedSnapshot,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    save_snapshot,
)
from .wal import EventLogWriter, list_segments, read_log, remove_dead_segments

logger = logging.getLogger("repro.cluster.recovery")


@dataclass
class RecoveryResult:
    """What one recovery pass restored and where the log resumes."""

    store: UserStateStore
    last_seq: int  # next WAL append is last_seq + 1
    snapshot_seq: int  # 0 when no snapshot was found
    replayed: int  # log records folded past the snapshot
    torn_skipped: int  # truncated final records tolerated
    seconds: float
    snapshot_path: Optional[Path] = None

    def as_dict(self) -> Dict:
        return {
            "last_seq": self.last_seq,
            "snapshot_seq": self.snapshot_seq,
            "replayed": self.replayed,
            "torn_skipped": self.torn_skipped,
            "seconds": round(self.seconds, 4),
            "users": len(self.store),
            "snapshot": self.snapshot_path.name if self.snapshot_path else None,
        }


def recover_store(
    directory,
    config: Optional[StoreConfig] = None,
) -> RecoveryResult:
    """Rebuild a shard's store from its persistence directory.

    Load the newest snapshot (none → empty store), then fold every log
    record with ``seq`` past it.  A torn final record is skipped with a
    warning (see :func:`~repro.cluster.wal.read_log`); everything else
    replays through the same :meth:`~repro.stream.state.UserStateStore.append`
    the live path uses, so the recovered ``state_version``s are exactly
    the pre-crash ones.
    """
    start = time.perf_counter()
    directory = Path(directory)
    snapshots = list_snapshots(directory)
    if snapshots:
        loaded: LoadedSnapshot = load_snapshot(snapshots[-1], config=config)
        store, snapshot_seq = loaded.store, loaded.last_seq
        snapshot_path = loaded.path
    else:
        store = UserStateStore(config or StoreConfig())
        snapshot_seq, snapshot_path = 0, None
    log = read_log(directory, min_seq=snapshot_seq)
    for _, event in log.records:
        store.append(event)
    last_seq = max(snapshot_seq, log.last_seq)
    # a crash can leave a trailing segment with zero valid records
    # (empty, or only a torn write); it would collide with the next
    # writer's exclusive create of wal-<last_seq + 1>
    remove_dead_segments(directory, last_seq)
    result = RecoveryResult(
        store=store,
        last_seq=last_seq,
        snapshot_seq=snapshot_seq,
        replayed=len(log.records),
        torn_skipped=log.torn_skipped,
        seconds=time.perf_counter() - start,
        snapshot_path=snapshot_path,
    )
    logger.info(
        "recovered %d users from %s (snapshot seq %d + %d replayed, %d torn skipped) "
        "in %.3fs",
        len(store),
        directory,
        snapshot_seq,
        result.replayed,
        result.torn_skipped,
        result.seconds,
    )
    return result


class DurableIngest(StreamIngest):
    """A :class:`StreamIngest` whose acknowledged events hit the log.

    Ordering per event: **apply → log → ack**.  The acknowledgement is
    the commit point — an event the store rejects never pollutes the
    log, and an event lost between apply and log was never acknowledged,
    so dropping it on recovery is correct.  Apply and log happen under
    one internal lock, so the log's replay order always matches the
    store's apply order even when many threads ingest concurrently
    (the single-process durable tier sits behind a
    ``ThreadingHTTPServer``).  ``maybe_snapshot`` rolls a snapshot (and
    prunes covered log segments) every ``snapshot_interval``
    acknowledged events; it takes the same lock, so any thread may call
    it and the snapshot's store-state/log-position pairing stays exact.
    """

    def __init__(
        self,
        store: Optional[UserStateStore] = None,
        caches: Iterable[Optional[LRUCache]] = (),
        log: Optional[EventLogWriter] = None,
        snapshot_interval: int = 1000,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(store, caches, registry=registry)
        if log is None:
            raise ValueError("DurableIngest needs an EventLogWriter")
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        self.log = log
        self.snapshot_interval = snapshot_interval
        self.snapshots_taken = 0
        self._since_snapshot = 0
        self._bytes_at_snapshot = log.bytes_appended
        self._last_snapshot_time: Optional[float] = None
        self._lock = threading.RLock()
        # durability gauges, all callback-backed: the hot path maintains
        # nothing, a scrape reads the live writer state.  The fsync
        # policy rides as a label on a constant info gauge.
        self.registry.gauge(
            "wal_last_seq", "Sequence number of the last WAL append", fn=lambda: self.log.last_seq
        )
        self.registry.gauge(
            "wal_appended", "Events appended to the WAL", fn=lambda: self.log.appended
        )
        self.registry.gauge(
            "wal_fsyncs", "fsync calls issued by the WAL", fn=lambda: self.log.fsyncs
        )
        self.registry.gauge(
            "wal_segments", "Current on-disk WAL segment count", fn=self.segment_count
        )
        self.registry.gauge(
            "wal_bytes_since_snapshot",
            "WAL bytes written since the last snapshot",
            fn=self.bytes_since_snapshot,
        )
        self.registry.gauge(
            "wal_snapshot_age_seconds",
            "Seconds since the last snapshot (-1 before the first)",
            fn=self.snapshot_age_seconds,
        )
        self.registry.gauge(
            "wal_snapshots_taken", "Snapshots rolled", fn=lambda: self.snapshots_taken
        )
        self.registry.gauge(
            "wal_info",
            "WAL configuration marker (value is always 1)",
            labels={"fsync": self.log.fsync},
        ).set(1)

    def ingest(self, event: CheckinEvent) -> AppendResult:
        with self._lock:
            result = super().ingest(event)  # raises on out-of-order: nothing logged
            with span("wal.append", fsync=self.log.fsync):
                self.log.append(event)
            self._since_snapshot += 1
            return result

    def maybe_snapshot(self, force: bool = False) -> Optional[Path]:
        """Snapshot if the interval elapsed (or ``force``); prune behind it."""
        with self._lock:
            if not force and self._since_snapshot < self.snapshot_interval:
                return None
            path = save_snapshot(self.store, self.log.directory, self.log.last_seq)
            self.log.prune(self.log.last_seq)
            prune_snapshots(self.log.directory, keep=2)
            self._since_snapshot = 0
            self.snapshots_taken += 1
            self._bytes_at_snapshot = self.log.bytes_appended
            self._last_snapshot_time = time.time()
            return path

    # -- durability gauges ---------------------------------------------
    def segment_count(self) -> int:
        """On-disk segments right now (directory scan at read time)."""
        return len(list_segments(self.log.directory))

    def bytes_since_snapshot(self) -> int:
        """WAL bytes appended since the last snapshot (replay debt)."""
        return self.log.bytes_appended - self._bytes_at_snapshot

    def snapshot_age_seconds(self) -> float:
        """Seconds since the last snapshot; ``-1`` before the first."""
        if self._last_snapshot_time is None:
            return -1.0
        return time.time() - self._last_snapshot_time

    def stats(self) -> Dict:
        out = super().stats()
        out["durability"] = {
            "last_seq": self.log.last_seq,
            "appended": self.log.appended,
            "segment_rotations": self.log.rotations,
            "fsync_policy": self.log.fsync,
            "fsyncs": self.log.fsyncs,
            "snapshots_taken": self.snapshots_taken,
            "since_snapshot": self._since_snapshot,
            "segments": self.segment_count(),
            "bytes_appended": self.log.bytes_appended,
            "bytes_since_snapshot": self.bytes_since_snapshot(),
            "snapshot_age_seconds": self.snapshot_age_seconds(),
        }
        return out
