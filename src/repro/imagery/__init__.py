"""Synthetic remote-sensing imagery (the Google-Maps substitute)."""

from .catalog import ImageryCatalog
from .landuse import Blob, CityCenter, Coastline, LandUse, LandUseMap, random_land_use_map
from .renderer import TileRenderer, add_noise

__all__ = [
    "Blob",
    "CityCenter",
    "Coastline",
    "ImageryCatalog",
    "LandUse",
    "LandUseMap",
    "TileRenderer",
    "add_noise",
    "random_land_use_map",
]
