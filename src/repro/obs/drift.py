"""Input-drift detection: windowed check-in distributions vs a frozen reference.

A quality drop (see :mod:`repro.obs.quality`) tells you the model got
worse; drift tells you *why first*: the check-in stream stopped looking
like the stream the model learned.  :class:`DriftDetector` watches two
marginals of the ingest stream — POI popularity and tile (spatial cell)
occupancy — each as a sliding window of recent events diffed against a
**frozen reference window** made of the first events the detector saw.

Binning: per-POI bins would be hundreds of near-empty cells whose
epsilon-floored divergence is all sampling noise.  Instead the
reference's top ``bins - 1`` keys get a bin each and everything else
(including keys never seen in the reference) folds into an ``OTHER``
bin.  With ``bins=16`` and 512-event windows the stationary PSI noise
floor is roughly ``bins / window ≈ 0.03`` — an order of magnitude
under the 0.25 alert threshold (the classic "major shift" cutoff),
while a popularity permutation scatters the head into OTHER and blows
far past it.

Gauges (callback-backed — scrapes read live, ingest pays two dict
updates per event): ``repro_drift_psi{dist=...}``,
``repro_drift_kl{dist=...}``, ``repro_drift_alert`` (1.0 when any
distribution's PSI crosses the threshold and the window has enough
mass to trust), plus the threshold itself as
``repro_drift_threshold`` so dashboards can draw the line.
"""

from __future__ import annotations

import math
import threading
from collections import Counter as TallyCounter
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = ["DriftDetector"]

_EPSILON = 1e-6


def _divergences(cur_counts, ref_counts, cur_total, ref_total) -> Tuple[float, float]:
    """(PSI, KL(cur‖ref)) between two binned count vectors."""
    if cur_total <= 0 or ref_total <= 0:
        return 0.0, 0.0
    psi = 0.0
    kl = 0.0
    for cur, ref in zip(cur_counts, ref_counts):
        p = max(cur / cur_total, _EPSILON)
        q = max(ref / ref_total, _EPSILON)
        log_ratio = math.log(p / q)
        psi += (p - q) * log_ratio
        kl += p * log_ratio
    return psi, kl


class _Sketch:
    """One distribution: frozen reference bins + a sliding current window."""

    def __init__(self, bins: int, window: int):
        self.bins = bins
        self.window = window
        self.ref_tally: TallyCounter = TallyCounter()
        self.bin_of: Optional[Dict[int, int]] = None  # frozen at reference freeze
        self.ref_counts: List[float] = []
        self.ref_total = 0
        self.recent: deque = deque()
        self.cur_counts: List[int] = []

    def freeze(self) -> None:
        head = [key for key, _ in self.ref_tally.most_common(self.bins - 1)]
        self.bin_of = {key: i for i, key in enumerate(head)}
        other = len(head)  # everything unmapped, incl. unseen keys
        self.ref_counts = [0.0] * (other + 1)
        for key, count in self.ref_tally.items():
            self.ref_counts[self.bin_of.get(key, other)] += count
        self.ref_total = sum(self.ref_tally.values())
        self.cur_counts = [0] * (other + 1)

    def update(self, key: int) -> None:
        other = len(self.cur_counts) - 1
        index = self.bin_of.get(key, other)
        self.recent.append(index)
        self.cur_counts[index] += 1
        if len(self.recent) > self.window:
            self.cur_counts[self.recent.popleft()] -= 1

    def divergences(self) -> Tuple[float, float]:
        return _divergences(
            self.cur_counts, self.ref_counts, len(self.recent), self.ref_total
        )


class DriftDetector:
    """PSI/KL drift gauges over POI and tile check-in distributions.

    ``tile_of`` maps a POI id to its spatial cell (the model's
    ``tile_system.leaf_of_poi``); when absent only the POI marginal is
    tracked.  The first ``reference`` events freeze the baseline; until
    then (and until the sliding window holds ``min_window`` events)
    the alert stays 0 — a detector must not page on its own warm-up.
    Thread-safe; designed to run as a ``StreamIngest`` observer.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        window: int = 512,
        reference: int = 512,
        bins: int = 16,
        threshold: float = 0.25,
        min_window: Optional[int] = None,
        tile_of: Optional[Callable[[int], int]] = None,
    ):
        if window < 1 or reference < 1:
            raise ValueError("window and reference must be >= 1")
        if bins < 2:
            raise ValueError("bins must be >= 2 (head bins + OTHER)")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.window = int(window)
        self.reference = int(reference)
        self.bins = int(bins)
        self.threshold = float(threshold)
        self.min_window = (
            int(min_window) if min_window is not None else max(1, self.window // 2)
        )
        self._tile_of = tile_of
        self.registry = registry if registry is not None else MetricsRegistry()

        self._lock = threading.Lock()
        self._seen = 0
        self._frozen = False
        self._sketches: Dict[str, _Sketch] = {
            "poi": _Sketch(self.bins, self.window)
        }
        if tile_of is not None:
            self._sketches["tile"] = _Sketch(self.bins, self.window)

        reg = self.registry
        self._events = reg.counter(
            "repro_drift_events", "Check-ins fed to the drift detector"
        )
        reg.gauge("repro_drift_threshold", "PSI alert threshold").set(self.threshold)
        reg.gauge(
            "repro_drift_reference_frozen",
            "1 once the reference window is frozen",
            fn=lambda: 1.0 if self._frozen else 0.0,
        )
        reg.gauge(
            "repro_drift_window_events",
            "Events currently in the sliding window",
            fn=lambda: float(self._window_fill()),
        )
        for dist in self._sketches:
            reg.gauge(
                "repro_drift_psi",
                "Population stability index vs the frozen reference",
                {"dist": dist},
                fn=lambda dist=dist: self._divergence(dist)[0],
            )
            reg.gauge(
                "repro_drift_kl",
                "KL(current || reference)",
                {"dist": dist},
                fn=lambda dist=dist: self._divergence(dist)[1],
            )
        reg.gauge(
            "repro_drift_alert",
            "1 when any distribution's PSI exceeds the threshold",
            fn=lambda: 1.0 if self.alert() else 0.0,
        )

    # ------------------------------------------------------------------
    # ingest side
    # ------------------------------------------------------------------
    def update(self, event, append_result=None) -> None:
        """Feed one check-in (signature matches the ingest observer hook)."""
        poi = int(event.poi_id)
        tile = int(self._tile_of(poi)) if self._tile_of is not None else None
        self._events.inc()
        with self._lock:
            self._seen += 1
            if not self._frozen:
                self._sketches["poi"].ref_tally[poi] += 1
                if tile is not None:
                    self._sketches["tile"].ref_tally[tile] += 1
                if self._seen >= self.reference:
                    self._freeze_locked()
                return
            self._sketches["poi"].update(poi)
            if tile is not None:
                self._sketches["tile"].update(tile)

    def freeze_reference(self) -> None:
        """Freeze the reference early (before ``reference`` events)."""
        with self._lock:
            if not self._frozen:
                self._freeze_locked()

    def _freeze_locked(self) -> None:
        for sketch in self._sketches.values():
            sketch.freeze()
        self._frozen = True

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _window_fill(self) -> int:
        with self._lock:
            if not self._frozen:
                return 0
            return len(self._sketches["poi"].recent)

    def _divergence(self, dist: str) -> Tuple[float, float]:
        with self._lock:
            if not self._frozen:
                return 0.0, 0.0
            return self._sketches[dist].divergences()

    def psi(self, dist: str = "poi") -> float:
        return self._divergence(dist)[0]

    def kl(self, dist: str = "poi") -> float:
        return self._divergence(dist)[1]

    def alert(self) -> bool:
        with self._lock:
            if not self._frozen:
                return False
            fill = len(self._sketches["poi"].recent)
            if fill < self.min_window:
                return False
            return any(
                sketch.divergences()[0] >= self.threshold
                for sketch in self._sketches.values()
            )

    def summary(self) -> Dict:
        with self._lock:
            frozen = self._frozen
            fill = len(self._sketches["poi"].recent) if frozen else 0
            dists = {
                name: dict(zip(("psi", "kl"), sketch.divergences()))
                if frozen
                else {"psi": 0.0, "kl": 0.0}
                for name, sketch in self._sketches.items()
            }
            seen = self._seen
        return {
            "enabled": True,
            "reference_size": self.reference,
            "window": self.window,
            "min_window": self.min_window,
            "bins": self.bins,
            "threshold": self.threshold,
            "frozen": frozen,
            "events": seen,
            "window_events": fill,
            "distributions": dists,
            "alert": self.alert(),
        }
