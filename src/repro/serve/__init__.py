"""``repro.serve`` — the unified inference and serving subsystem.

Entry points
------------
* :class:`PredictorResult` / :class:`PredictorProtocol` /
  :class:`PredictorBase` — the one inference contract TSPN-RA and all
  baselines conform to;
* :func:`save_checkpoint` / :func:`load_checkpoint` — persist a
  trained model (config + weights + dataset recipe) and reload it
  without retraining;
* :class:`Predictor` — the serving facade: cached shared embeddings,
  LRU-bounded per-user graph cache, batched inference,
  latency/throughput stats;
* :func:`compare_throughput` — cached-vs-uncached serving microbench.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    LoadedCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .predictor import Predictor, ServeStats, compare_throughput
from .protocol import PredictorBase, PredictorProtocol, PredictorResult, rank_of_target

__all__ = [
    "CHECKPOINT_FORMAT",
    "LoadedCheckpoint",
    "Predictor",
    "PredictorBase",
    "PredictorProtocol",
    "PredictorResult",
    "ServeStats",
    "compare_throughput",
    "load_checkpoint",
    "rank_of_target",
    "save_checkpoint",
]
