"""Tests for nn layers: Linear, Embedding, Conv2d, LayerNorm, attention, RNNs."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import (
    GRU,
    LSTM,
    Conv2d,
    DilatedLSTM,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Parameter,
    SelfAttention,
    Sequential,
    causal_mask,
)
from repro.utils import spawn


def _x(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestModuleMachinery:
    def test_parameter_discovery_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros((2, 2)))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.blocks = [Inner(), Inner()]
                self.by_name = {"a": Inner()}

        names = dict(Outer().named_parameters())
        assert set(names) == {"inner.w", "blocks.0.w", "blocks.1.w", "by_name.a.w"}

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=spawn(0)), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, rng=spawn(1))
        b = Linear(3, 2, rng=spawn(2))
        b.load_state_dict(a.state_dict())
        x = _x((4, 3))
        assert np.allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(3, 2, rng=spawn(1))
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((2, 3))})

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=spawn(0))
        layer(_x((1, 2))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        assert Linear(3, 4, rng=spawn(0)).num_parameters() == 3 * 4 + 4


class TestLinear:
    def test_shapes(self):
        assert Linear(5, 3, rng=spawn(0))(_x((7, 5))).shape == (7, 3)

    def test_grad_flows_to_params(self):
        layer = Linear(3, 2, rng=spawn(0))
        layer(_x((4, 3))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=spawn(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self):
        layer = Linear(3, 2, rng=spawn(3))
        x = _x((2, 3))
        assert gradcheck(lambda t: layer(t), [x], atol=1e-4)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=spawn(0))
        assert emb(np.array([1, 5, 5])).shape == (3, 4)

    def test_repeated_index_grad_accumulates(self):
        emb = Embedding(3, 2, rng=spawn(0))
        out = emb(np.array([1, 1]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[1], [2.0, 2.0])
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_out_of_range_raises(self):
        emb = Embedding(3, 2, rng=spawn(0))
        with pytest.raises(IndexError):
            emb(np.array([3]))


class TestConvAndNorm:
    def test_conv_stride2_halves_resolution(self):
        conv = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=spawn(0))
        assert conv(_x((1, 3, 16, 16))).shape == (1, 8, 8, 8)

    def test_layernorm_normalises(self):
        ln = LayerNorm(8)
        out = ln(_x((4, 8)))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_gradcheck(self):
        ln = LayerNorm(5)
        assert gradcheck(lambda t: ln(t), [_x((2, 5), seed=4)], atol=1e-4)

    def test_flatten(self):
        assert Flatten()(_x((2, 3, 4))).shape == (2, 12)


class TestAttention:
    def test_causal_mask_shape_and_content(self):
        m = causal_mask(3)
        assert m.shape == (3, 3)
        assert not m[2, 0] and m[0, 1]

    def test_self_attention_shape(self):
        attn = SelfAttention(8, num_heads=2, causal=True, rng=spawn(0))
        assert attn(_x((5, 8))).shape == (5, 8)

    def test_causal_first_position_ignores_future(self):
        """Changing future inputs must not affect the first output position."""
        attn = SelfAttention(8, num_heads=2, causal=True, rng=spawn(1))
        x1 = np.random.default_rng(0).normal(size=(4, 8))
        x2 = x1.copy()
        x2[2:] += 10.0
        out1 = attn(Tensor(x1)).data[0]
        out2 = attn(Tensor(x2)).data[0]
        assert np.allclose(out1, out2)

    def test_cross_attention_shapes(self):
        attn = MultiHeadAttention(8, num_heads=4, rng=spawn(2))
        q, kv = _x((3, 8)), _x((7, 8), seed=5)
        assert attn(q, kv, kv).shape == (3, 8)

    def test_dim_not_divisible_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, num_heads=2)

    def test_attention_grad_flows(self):
        attn = MultiHeadAttention(4, num_heads=2, rng=spawn(3))
        q, kv = _x((2, 4)), _x((3, 4), seed=6)
        attn(q, kv, kv).sum().backward()
        assert q.grad is not None and kv.grad is not None
        assert attn.w_q.weight.grad is not None


class TestBatchedAttention:
    def test_batched_self_attention_matches_per_sample(self):
        attn = MultiHeadAttention(8, num_heads=2, rng=spawn(7))
        x = np.random.default_rng(2).normal(size=(3, 5, 8))
        mask = causal_mask(5)
        batched = attn(Tensor(x), Tensor(x), Tensor(x), mask=mask).data
        assert batched.shape == (3, 5, 8)
        for b in range(3):
            row = Tensor(x[b])
            single = attn(row, row, row, mask=mask).data
            np.testing.assert_allclose(batched[b], single, atol=1e-12)

    def test_key_padding_mask_blocks_padding(self):
        """Padded keys must not change real positions' outputs."""
        from repro.nn import key_padding_mask

        attn = MultiHeadAttention(8, num_heads=2, rng=spawn(8))
        rng = np.random.default_rng(3)
        q = rng.normal(size=(2, 3, 8))
        kv_real = rng.normal(size=(2, 4, 8))
        kv_padded = np.concatenate([kv_real, 99.0 * np.ones((2, 2, 8))], axis=1)
        lengths = [4, 4]
        mask = key_padding_mask(lengths, 6)  # (2, 6) True at pads
        cross_mask = np.broadcast_to(mask[:, None, :], (2, 3, 6))
        out_full = attn(Tensor(q), Tensor(kv_real), Tensor(kv_real)).data
        out_masked = attn(Tensor(q), Tensor(kv_padded), Tensor(kv_padded), mask=cross_mask).data
        np.testing.assert_allclose(out_masked, out_full, atol=1e-9)

    def test_key_padding_mask_shape(self):
        from repro.nn import key_padding_mask

        mask = key_padding_mask([1, 3], 3)
        assert mask.tolist() == [[False, True, True], [False, False, False]]

    def test_batched_causal_self_attention_wrapper(self):
        attn = SelfAttention(8, num_heads=2, causal=True, rng=spawn(9))
        x = np.random.default_rng(4).normal(size=(2, 4, 8))
        batched = attn(Tensor(x)).data
        for b in range(2):
            np.testing.assert_allclose(
                batched[b], attn(Tensor(x[b])).data, atol=1e-12
            )


class TestBatchedRecurrent:
    def test_batched_gru_matches_per_sample(self):
        gru = GRU(3, 5, rng=spawn(10))
        x = np.random.default_rng(5).normal(size=(4, 6, 3))
        outputs, final = gru(Tensor(x))
        assert outputs.shape == (4, 6, 5) and final.shape == (4, 5)
        for b in range(4):
            single_out, single_final = gru(Tensor(x[b]))
            np.testing.assert_allclose(outputs.data[b], single_out.data, atol=1e-12)
            np.testing.assert_allclose(final.data[b], single_final.data, atol=1e-12)

    def test_batched_lstm_matches_per_sample(self):
        lstm = LSTM(3, 5, rng=spawn(11))
        x = np.random.default_rng(6).normal(size=(2, 4, 3))
        outputs, (h, c) = lstm(Tensor(x))
        assert outputs.shape == (2, 4, 5)
        assert h.shape == (2, 5) and c.shape == (2, 5)
        for b in range(2):
            single_out, (sh, sc) = lstm(Tensor(x[b]))
            np.testing.assert_allclose(outputs.data[b], single_out.data, atol=1e-12)
            np.testing.assert_allclose(h.data[b], sh.data, atol=1e-12)


class TestRecurrent:
    def test_gru_output_shape(self):
        gru = GRU(4, 6, rng=spawn(0))
        outputs, final = gru(_x((5, 4)))
        assert outputs.shape == (5, 6)
        assert final.shape == (6,)
        assert np.allclose(outputs.data[-1], final.data)

    def test_gru_grad_flows_to_input(self):
        gru = GRU(3, 4, rng=spawn(1))
        x = _x((4, 3))
        outputs, _ = gru(x)
        outputs.sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0

    def test_lstm_output_shape(self):
        lstm = LSTM(4, 6, rng=spawn(2))
        outputs, (h, c) = lstm(_x((5, 4)))
        assert outputs.shape == (5, 6)
        assert h.shape == (6,) and c.shape == (6,)

    def test_dilated_lstm_returns_vector(self):
        dil = DilatedLSTM(4, 6, dilation=2, rng=spawn(3))
        assert dil(_x((7, 4))).shape == (6,)

    def test_dilated_includes_last_step(self):
        """The final check-in must influence the hidden state."""
        dil = DilatedLSTM(2, 4, dilation=3, rng=spawn(4))
        x1 = np.random.default_rng(1).normal(size=(5, 2))
        x2 = x1.copy()
        x2[-1] += 5.0
        out1 = dil(Tensor(x1)).data
        out2 = dil(Tensor(x2)).data
        assert not np.allclose(out1, out2)

    def test_gru_hidden_state_carries_information(self):
        gru = GRU(2, 4, rng=spawn(5))
        x1 = np.zeros((3, 2))
        x2 = x1.copy()
        x2[0] = 10.0
        out1, _ = gru(Tensor(x1))
        out2, _ = gru(Tensor(x2))
        assert not np.allclose(out1.data[-1], out2.data[-1])
