"""Shared machinery for the ten baseline models (paper Sec. VI-A).

Every baseline is a faithful-in-mechanism, scaled-to-substrate
re-implementation: it keeps the architectural component the paper
credits (or blames) for the original model's behaviour, on top of the
same autograd engine TSPN-RA uses, so efficiency and effectiveness
comparisons are apples-to-apples.

All neural baselines share one contract:

* ``score(sample) -> Tensor``: logits over the full POI vocabulary;
* ``loss_sample(sample)``: cross-entropy against the true next POI;
* ``predict(sample) -> BaselineResult``: full ranked POI list.

Count-based models (MC) implement ``fit(samples)`` instead of
gradient training; the experiment harness dispatches on
``requires_gradient_training``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..core.two_step import rank_of_target
from ..data.trajectory import PredictionSample
from ..nn import Embedding, Module
from ..utils.rng import default_rng


@dataclass
class BaselineResult:
    """Inference output mirroring :class:`repro.core.model.PredictionResult`."""

    ranked_pois: List[int]
    target_poi: int

    @property
    def poi_rank(self) -> int:
        return rank_of_target(self.ranked_pois, self.target_poi)


class NextPOIBaseline(Module):
    """Base class for gradient-trained baselines."""

    name = "baseline"
    requires_gradient_training = True

    def __init__(self, num_pois: int, dim: int, rng=None):
        super().__init__()
        self.num_pois = num_pois
        self.dim = dim
        self._rng = rng or default_rng()

    # Subclasses implement score(); everything else is shared.
    def score(self, sample: PredictionSample) -> Tensor:
        raise NotImplementedError

    def loss_sample(self, sample: PredictionSample) -> Tensor:
        logits = self.score(sample)
        return cross_entropy(logits.reshape(1, -1), np.array([sample.target.poi_id]))

    def predict(self, sample: PredictionSample) -> BaselineResult:
        with no_grad():
            logits = self.score(sample).data
        order = np.argsort(-logits, kind="stable")
        return BaselineResult(ranked_pois=[int(i) for i in order], target_poi=sample.target.poi_id)


class SequenceEmbedder(Module):
    """POI-id + time-slot embedding shared by the sequential baselines."""

    def __init__(self, num_pois: int, dim: int, use_time: bool = True, rng=None):
        super().__init__()
        from ..data.checkin import SLOTS_PER_DAY, time_slot

        rng = rng or default_rng()
        self._slot_fn = time_slot
        self.poi_table = Embedding(num_pois, dim, rng=rng)
        self.use_time = use_time
        if use_time:
            self.time_table = Embedding(SLOTS_PER_DAY, dim, rng=rng)

    def forward(self, sample_or_visits) -> Tensor:
        visits = (
            sample_or_visits.prefix
            if isinstance(sample_or_visits, PredictionSample)
            else sample_or_visits
        )
        ids = np.array([v.poi_id for v in visits], dtype=np.int64)
        out = self.poi_table(ids)
        if self.use_time:
            slots = np.array([self._slot_fn(v.timestamp) for v in visits], dtype=np.int64)
            out = out + self.time_table(slots)
        return out
