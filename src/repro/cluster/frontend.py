"""HTTP surface of the cluster: same endpoints, N processes behind.

:class:`ClusterHttpFrontend` mirrors the single-process
:class:`~repro.serve.server.HttpFrontend` contract — ``POST /checkin``
/ ``/predict`` / ``/recommend``, ``GET /healthz`` / ``/stats`` /
``/metrics`` / ``/quality`` / ``/debug/slow`` — so a client (or the
benchmark
harness) moves between tiers by changing a URL.  ``GET /metrics``
aggregates every shard's registry over the control pipe with
``shard=\"NN\"`` labels next to the router's own series.  Status codes
survive the extra hop: a shard's verdict travels back as
``{"ok": False, "code": ...}`` and is re-emitted verbatim, so an
out-of-order check-in is a 409 here exactly as it is single-process.

``POST /reload`` is a deliberate 501: hot weight swap would need a
new shared-memory generation plus a coordinated cut-over across
workers, and a half-switched cluster serving two weight versions is
worse than an honest "restart to reload".
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from .router import ClusterRouter
from .worker import ShardError


def _make_handler(router: ClusterRouter):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-cluster/1.0"
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):
            pass

        def _send_json(self, status: int, payload: Dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_reply(self, reply: Dict) -> None:
            """Re-emit a shard reply, preserving its status code."""
            if reply.get("ok"):
                self._send_json(200, reply.get("result", {}))
            else:
                self._send_json(
                    int(reply.get("code", 500)), {"error": reply.get("error", "")}
                )

        def _read_json(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValueError("empty request body")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as error:
                raise ValueError(f"invalid JSON: {error}") from error
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        def do_GET(self):
            if self.path == "/healthz":
                health = router.healthz()
                status = 200 if health["status"] == "ok" else 503
                self._send_json(status, health)
            elif self.path == "/stats":
                self._send_json(200, router.stats())
            elif self.path == "/metrics":
                body = router.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif self.path == "/quality":
                self._send_json(200, router.quality())
            elif self.path.startswith("/debug/slow"):
                self._send_json(200, {"slow": router.slow_requests(self._slow_n())})
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})

        def _slow_n(self) -> int:
            query = self.path.partition("?")[2]
            for part in query.split("&"):
                key, _, value = part.partition("=")
                if key == "n" and value.isdigit():
                    return max(1, min(int(value), router.slow_ring.capacity))
            return 10

        def do_POST(self):
            if self.path not in ("/predict", "/recommend", "/checkin", "/reload"):
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            if self.path == "/reload":
                self._send_json(
                    501,
                    {"error": "cluster weight reload is not supported; "
                              "restart the cluster with the new checkpoint"},
                )
                return
            try:
                payload = self._read_json()
            except ValueError as error:
                self._send_json(400, {"error": str(error)})
                return
            try:
                if self.path == "/checkin":
                    self._send_reply(router.checkin(payload))
                else:
                    self._infer(payload, recommend=self.path == "/recommend")
            except ShardError as error:
                self._send_json(503, {"error": str(error)})

        def _infer(self, payload: Dict, recommend: bool) -> None:
            k = payload.get("k", 10)
            if isinstance(k, bool) or not isinstance(k, int) or k < 1:
                self._send_json(400, {"error": "k must be a positive integer"})
                return
            historyless = not any(
                key in payload for key in ("prefix", "history", "target")
            )
            if recommend:
                payload = dict(payload)
                payload.pop("target", None)
            if historyless:
                user_id = payload.get("user_id")
                if isinstance(user_id, bool) or not isinstance(user_id, int):
                    self._send_json(400, {"error": "user_id must be an integer"})
                    return
                reply = router.predict_user(user_id, k=k)
            else:
                reply = router.predict_raw(payload, k=k)
            if recommend and reply.get("ok"):
                body = reply["result"]
                self._send_json(
                    200,
                    {
                        "user_id": payload.get("user_id"),
                        "recommendations": body["top_pois"],
                        "num_pois": body["num_pois"],
                    },
                )
            else:
                self._send_reply(reply)

    return Handler


class ClusterHttpFrontend:
    """Serve a :class:`ClusterRouter` over HTTP (``port=0`` = ephemeral)."""

    def __init__(self, router: ClusterRouter, host: str = "127.0.0.1", port: int = 8151):
        self.router = router
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(router))
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterHttpFrontend":
        if self._thread is not None:
            raise RuntimeError("cluster HTTP front-end already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="cluster-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "ClusterHttpFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
