"""Tests for geometric primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox, equirectangular_km, euclidean, haversine_km


class TestBoundingBox:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 0, 1)

    def test_dimensions(self):
        box = BoundingBox(1, 2, 5, 10)
        assert box.width == 4 and box.height == 8
        assert box.area == 32
        assert box.center == (3, 6)

    def test_contains_half_open(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains(0, 0)
        assert not box.contains(1, 0)  # max edge excluded
        assert box.contains_closed(1, 1)

    def test_quadrants_partition(self):
        box = BoundingBox(0, 0, 2, 2)
        quadrants = list(box.quadrants())
        assert len(quadrants) == 4
        assert sum(q.area for q in quadrants) == pytest.approx(box.area)
        # every interior point is in exactly one quadrant
        for x, y in [(0.5, 0.5), (1.5, 0.5), (0.5, 1.5), (1.5, 1.5), (1.0, 1.0)]:
            assert sum(q.contains(x, y) for q in quadrants) == 1

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.intersects(BoundingBox(1, 1, 3, 3))
        assert not a.intersects(BoundingBox(2, 0, 3, 1))  # touching edge: no overlap

    def test_clamp_stays_inside(self):
        box = BoundingBox(0, 0, 1, 1)
        x, y = box.clamp(5, -3)
        assert box.contains(x, y)

    def test_normalize_unit_square(self):
        box = BoundingBox(10, 20, 30, 40)
        assert box.normalize(10, 20) == (0, 0)
        assert box.normalize(30, 40) == (1, 1)
        assert box.normalize(20, 30) == (0.5, 0.5)


class TestDistances:
    def test_euclidean_pythagorean(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_haversine_zero_distance(self):
        assert haversine_km(40.0, -74.0, 40.0, -74.0) == pytest.approx(0.0)

    def test_haversine_one_degree_latitude(self):
        # one degree of latitude is ~111.2 km
        assert haversine_km(40.0, -74.0, 41.0, -74.0) == pytest.approx(111.2, rel=0.01)

    def test_equirectangular_close_to_haversine_at_city_scale(self):
        h = haversine_km(40.7, -74.0, 40.8, -73.9)
        e = equirectangular_km(40.7, -74.0, 40.8, -73.9)
        assert abs(h - e) / h < 0.01

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(-60, 60), st.floats(-170, 170),
        st.floats(-60, 60), st.floats(-170, 170),
    )
    def test_haversine_symmetry(self, lat1, lon1, lat2, lon2):
        d1 = haversine_km(lat1, lon1, lat2, lon2)
        d2 = haversine_km(lat2, lon2, lat1, lon1)
        assert d1 == pytest.approx(d2, abs=1e-9)
