"""Tests for the differentiable batching ops (pad/stack/gather).

These ops are what make the padded ``(batch, seq, dim)`` encode path
trainable: every one of them is validated against finite differences,
same as the rest of the engine.
"""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    conv2d,
    cross_entropy,
    gather_last,
    gradcheck,
    no_grad,
    pad_stack,
)
from repro.autograd.functional import im2col


def _t(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True)


class TestPadStack:
    def test_values_right_padded(self):
        rows = [_t(np.ones((2, 3))), None, _t(2.0 * np.ones((4, 3)))]
        out = pad_stack(rows, 3)
        assert out.shape == (3, 4, 3)
        assert np.allclose(out.data[0, :2], 1.0) and np.allclose(out.data[0, 2:], 0.0)
        assert np.allclose(out.data[1], 0.0)
        assert np.allclose(out.data[2], 2.0)

    def test_pad_to_override(self):
        out = pad_stack([_t(np.ones((2, 3)))], 3, pad_to=5)
        assert out.shape == (1, 5, 3)

    def test_pad_to_too_small_raises(self):
        with pytest.raises(ValueError):
            pad_stack([_t(np.ones((4, 3)))], 3, pad_to=2)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            pad_stack([_t(np.ones((2, 5)))], 3)

    def test_grad_routes_to_real_rows_only(self):
        rng = np.random.default_rng(0)
        a, b = _t(rng.normal(size=(2, 4))), _t(rng.normal(size=(3, 4)))
        out = pad_stack([a, None, b], 4)
        upstream = rng.normal(size=out.shape)
        out.backward(upstream)
        assert np.allclose(a.grad, upstream[0, :2])
        assert np.allclose(b.grad, upstream[2, :3])

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        a, b, c = (_t(rng.normal(size=(n, 3))) for n in (1, 4, 2))
        assert gradcheck(lambda x, y, z: pad_stack([x, y, z], 3), [a, b, c])

    def test_no_grad_builds_constant(self):
        a = _t(np.ones((2, 3)))
        with no_grad():
            out = pad_stack([a], 3)
        assert not out.requires_grad


class TestGatherLast:
    def test_values(self):
        x = _t(np.arange(24, dtype=np.float64).reshape(2, 4, 3))
        out = gather_last(x, [2, 4])
        assert np.allclose(out.data, [x.data[0, 1], x.data[1, 3]])

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            gather_last(_t(np.ones((2, 4, 3))), [0, 2])

    def test_length_beyond_padding_raises(self):
        with pytest.raises(ValueError):
            gather_last(_t(np.ones((2, 4, 3))), [5, 2])

    def test_grad_scatters_to_gathered_positions(self):
        x = _t(np.random.default_rng(2).normal(size=(2, 3, 4)))
        out = gather_last(x, [1, 3])
        upstream = np.ones((2, 4))
        out.backward(upstream)
        expected = np.zeros((2, 3, 4))
        expected[0, 0] = 1.0
        expected[1, 2] = 1.0
        assert np.allclose(x.grad, expected)

    def test_gradcheck(self):
        x = _t(np.random.default_rng(3).normal(size=(3, 4, 2)))
        assert gradcheck(lambda t: gather_last(t, [1, 4, 2]), [x])


class TestCrossEntropyReductions:
    def test_sum_equals_batch_times_mean(self):
        logits = _t(np.random.default_rng(5).normal(size=(4, 6)))
        targets = np.array([0, 2, 5, 1])
        mean = cross_entropy(logits, targets, reduction="mean").item()
        total = cross_entropy(logits, targets, reduction="sum").item()
        assert total == pytest.approx(4 * mean)

    def test_none_returns_per_sample_vector(self):
        logits = _t(np.random.default_rng(6).normal(size=(3, 5)))
        targets = np.array([1, 0, 4])
        vec = cross_entropy(logits, targets, reduction="none")
        assert vec.shape == (3,)
        assert vec.data.sum() == pytest.approx(
            cross_entropy(logits, targets, reduction="sum").item()
        )

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(_t(np.zeros((1, 2))), np.array([0]), reduction="prod")

    def test_sum_grad(self):
        logits = _t(np.random.default_rng(7).normal(size=(3, 4)))
        targets = np.array([0, 3, 2])
        assert gradcheck(
            lambda t: cross_entropy(t, targets, reduction="sum"), [logits]
        )


class TestConv2dPrecomputedCols:
    def test_matches_fresh_unfold(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = _t(rng.normal(size=(4, 3, 3, 3)) * 0.1)
        b = _t(np.zeros(4))
        fresh = conv2d(x, w, b, stride=2, padding=1)
        cols, _, _ = im2col(x.data, 3, 2, 1)
        cached = conv2d(x, w, b, stride=2, padding=1, cols=cols)
        assert np.array_equal(fresh.data, cached.data)
        fresh.backward(np.ones_like(fresh.data))
        g_fresh = w.grad.copy()
        w.grad = None
        cached.backward(np.ones_like(cached.data))
        assert np.array_equal(g_fresh, w.grad)
