"""Tests for the synthetic remote-sensing imagery substrate."""

import numpy as np
import pytest

from repro.geo import BoundingBox
from repro.imagery import (
    Blob,
    CityCenter,
    Coastline,
    ImageryCatalog,
    LandUse,
    LandUseMap,
    TileRenderer,
    add_noise,
    random_land_use_map,
)
from repro.roadnet import RoadNetwork
from repro.spatial import RegionQuadTree

BOX = BoundingBox(0.0, 0.0, 10.0, 10.0)


def _map_with_everything():
    return LandUseMap(
        bbox=BOX,
        centers=[CityCenter(3.0, 3.0, commercial_radius=1.0, urban_radius=2.5)],
        parks=[Blob(7.0, 2.0, 0.8)],
        industrial=[Blob(2.0, 8.0, 0.9)],
        coast=Coastline(base=8.5, amplitude=0.2, frequency=0.5, side="east"),
    )


class TestLandUse:
    def test_class_precedence(self):
        land = _map_with_everything()
        assert land.class_at(3.0, 3.0) == LandUse.COMMERCIAL
        assert land.class_at(3.0, 5.0) == LandUse.RESIDENTIAL  # urban ring
        assert land.class_at(7.0, 2.0) == LandUse.PARK
        assert land.class_at(2.0, 8.0) == LandUse.INDUSTRIAL
        assert land.class_at(9.8, 5.0) == LandUse.WATER
        assert land.class_at(0.5, 0.5) == LandUse.RURAL

    def test_west_coast(self):
        land = LandUseMap(bbox=BOX, coast=Coastline(base=1.5, side="west"))
        assert land.class_at(0.5, 5.0) == LandUse.WATER
        assert land.class_at(5.0, 5.0) == LandUse.RURAL

    def test_coastal_band(self):
        land = _map_with_everything()
        assert land.coastal_band(8.2, 5.0, width=1.0)
        assert not land.coastal_band(2.0, 5.0, width=1.0)

    def test_city_center_validation(self):
        with pytest.raises(ValueError):
            CityCenter(0, 0, commercial_radius=2.0, urban_radius=1.0)

    def test_coastline_side_validation(self):
        with pytest.raises(ValueError):
            Coastline(base=1.0, side="north")

    def test_random_map_has_requested_features(self):
        land = random_land_use_map(BOX, np.random.default_rng(0), n_centers=2, coastal=True)
        assert len(land.centers) == 2
        assert land.coast is not None

    def test_vectorised_matches_scalar(self):
        land = _map_with_everything()
        xs = np.linspace(0.1, 9.9, 30)
        ys = np.linspace(0.1, 9.9, 30)
        vec = land.classes_at(xs, ys)
        for i in range(30):
            assert vec[i] == int(land.class_at(xs[i], ys[i]))


class TestRenderer:
    def test_output_shape_and_range(self):
        renderer = TileRenderer(_map_with_everything(), resolution=32)
        image = renderer.render(BOX)
        assert image.shape == (32, 32, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_water_looks_blue(self):
        renderer = TileRenderer(_map_with_everything(), resolution=32)
        water_tile = renderer.render(BoundingBox(9.2, 4.0, 9.9, 5.0))
        mean = water_tile.reshape(-1, 3).mean(axis=0)
        assert mean[2] > mean[0]  # blue dominates red

    def test_deterministic_rendering(self):
        renderer = TileRenderer(_map_with_everything(), resolution=16, seed=7)
        a = renderer.render(BoundingBox(0, 0, 5, 5))
        b = renderer.render(BoundingBox(0, 0, 5, 5))
        assert np.array_equal(a, b)

    def test_different_tiles_look_different(self):
        renderer = TileRenderer(_map_with_everything(), resolution=16)
        a = renderer.render(BoundingBox(2, 2, 4, 4))  # commercial core
        b = renderer.render(BoundingBox(8.8, 4, 9.8, 5))  # ocean
        assert not np.allclose(a, b)

    def test_roads_drawn(self):
        land = LandUseMap(bbox=BOX)  # all rural: uniform background
        net = RoadNetwork()
        net.add_intersection(0, 0.0, 5.0)
        net.add_intersection(1, 10.0, 5.0)
        net.add_road(0, 1)
        with_roads = TileRenderer(land, net, resolution=32).render(BOX)
        without = TileRenderer(land, None, resolution=32).render(BOX)
        assert not np.allclose(with_roads, without)

    def test_too_small_resolution_raises(self):
        with pytest.raises(ValueError):
            TileRenderer(_map_with_everything(), resolution=2)


class TestNoise:
    def test_noise_fraction_bounds(self):
        with pytest.raises(ValueError):
            add_noise(np.zeros((4, 4, 3)), 1.5, np.random.default_rng(0))

    def test_noise_changes_about_right_fraction(self):
        image = np.zeros((100, 100, 3))
        noisy = add_noise(image, 0.2, np.random.default_rng(0))
        changed = (noisy != image).any(axis=2).mean()
        assert 0.15 < changed < 0.25

    def test_zero_noise_identity(self):
        image = np.random.default_rng(1).random((8, 8, 3))
        assert np.array_equal(add_noise(image, 0.0, np.random.default_rng(0)), image)


class TestCatalog:
    def _catalog(self, noise=0.0):
        rng = np.random.default_rng(2)
        points = rng.uniform(0.5, 9.5, size=(60, 2))
        tree = RegionQuadTree.build(BOX, points, max_depth=4, max_pois=10)
        renderer = TileRenderer(_map_with_everything(), resolution=16)
        return ImageryCatalog(renderer, noise_fraction=noise).bind(tree), tree

    def test_image_cached(self):
        catalog, tree = self._catalog()
        first = catalog.image_for(0)
        second = catalog.image_for(0)
        assert first is second
        assert catalog.cache_size() == 1

    def test_images_for_chw_layout(self):
        catalog, tree = self._catalog()
        batch = catalog.images_for(tree.leaves()[:3])
        assert batch.shape == (3, 3, 16, 16)

    def test_unbound_catalog_raises(self):
        renderer = TileRenderer(_map_with_everything(), resolution=16)
        with pytest.raises(RuntimeError):
            ImageryCatalog(renderer).image_for(0)

    def test_noise_applied(self):
        clean, tree = self._catalog(noise=0.0)
        noisy, _ = self._catalog(noise=0.3)
        assert not np.allclose(clean.image_for(0), noisy.image_for(0))

    def test_clear(self):
        catalog, _ = self._catalog()
        catalog.image_for(0)
        catalog.clear()
        assert catalog.cache_size() == 0
