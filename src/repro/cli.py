"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``            list available experiment ids
``run <id>``               regenerate one paper table/figure
``stats <preset>``         print a dataset preset's statistics
``train <preset>``         train TSPN-RA on a preset and report metrics
``predict <preset>``       serve sample predictions (train or load a checkpoint)
``serve <preset>``         run the async HTTP serving runtime
``serve-bench <preset>``   cached vs uncached vs batched inference throughput
``stream-replay <preset>`` prequential streaming evaluation vs rebuild baseline
``obs-report <a> <b>``     diff two /metrics scrapes into a rate/latency table
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TSPN-RA reproduction (ICDE 2024) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment ids")

    run_parser = sub.add_parser("run", help="run one experiment by id")
    run_parser.add_argument("experiment_id")
    run_parser.add_argument("--profile", default=None, choices=("quick", "full"))

    stats_parser = sub.add_parser("stats", help="dataset statistics (Table I row)")
    stats_parser.add_argument("preset")
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument("--scale", type=float, default=0.5)

    train_parser = sub.add_parser("train", help="train TSPN-RA on a preset")
    train_parser.add_argument("preset")
    train_parser.add_argument("--seed", type=int, default=0)
    train_parser.add_argument("--profile", default="quick", choices=("quick", "full"))
    train_parser.add_argument("--save", default=None, metavar="PATH",
                              help="write a reloadable checkpoint after training")
    train_parser.add_argument("--trainer", default="batched",
                              choices=("batched", "per-sample"),
                              help="batched loss_batch path (default) or the "
                                   "per-sample loss_sample loop")

    predict_parser = sub.add_parser(
        "predict", help="serve predictions from a trained model or checkpoint"
    )
    predict_parser.add_argument("preset", nargs="?", default=None,
                                help="dataset preset (omit with --checkpoint)")
    predict_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                                help="load this checkpoint instead of training")
    predict_parser.add_argument("--save", default=None, metavar="PATH",
                                help="write a checkpoint after training")
    predict_parser.add_argument("--model", default="TSPN-RA")
    predict_parser.add_argument("--seed", type=int, default=0)
    predict_parser.add_argument("--profile", default="quick", choices=("quick", "full"))
    predict_parser.add_argument("--samples", type=int, default=8,
                                help="number of test samples to serve")
    predict_parser.add_argument("--top-k", type=int, default=5, dest="top_k")

    serve_parser = sub.add_parser(
        "serve", help="run the async micro-batching HTTP serving runtime"
    )
    serve_parser.add_argument("preset", nargs="?", default=None,
                              help="dataset preset to train on (omit with --checkpoint)")
    serve_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                              help="serve this checkpoint instead of training")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8151,
                              help="listen port (0 picks an ephemeral port)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="worker threads (Predictor replicas)")
    serve_parser.add_argument("--max-batch-size", type=int, default=16,
                              dest="max_batch_size",
                              help="micro-batch flush size")
    serve_parser.add_argument("--max-wait-ms", type=float, default=5.0,
                              dest="max_wait_ms",
                              help="micro-batch flush deadline (ms)")
    serve_parser.add_argument("--queue-size", type=int, default=256,
                              dest="queue_size",
                              help="admission queue bound (excess load gets 429)")
    serve_parser.add_argument("--model", default="TSPN-RA")
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--profile", default="quick", choices=("quick", "full"))
    serve_parser.add_argument("--stateful", action="store_true",
                              help="own per-user check-in state: enables "
                                   "POST /checkin and history-less "
                                   "POST /predict {\"user_id\": ...}")
    serve_parser.add_argument("--shards", type=int, default=16,
                              help="state-store lock stripes (with --stateful)")
    serve_parser.add_argument("--gap-hours", type=float, default=None,
                              dest="gap_hours",
                              help="session-split gap Δt in hours "
                                   "(default: the paper's 72h)")
    serve_parser.add_argument("--max-sessions", type=int, default=64,
                              dest="max_sessions",
                              help="per-user bound on completed sessions "
                                   "kept as QR-P history (with --stateful)")
    serve_parser.add_argument("--persist", default=None, metavar="DIR",
                              help="durable serving: log every acknowledged "
                                   "check-in to DIR and recover state from it "
                                   "on start (implies --stateful)")
    serve_parser.add_argument("--cluster", type=int, default=None, metavar="N",
                              help="serve through N shard worker processes "
                                   "with consistent-hash user routing "
                                   "(needs --checkpoint and --persist)")
    serve_parser.add_argument("--fsync", default="rotate",
                              choices=("always", "rotate", "never"),
                              help="event-log fsync policy (with --persist): "
                                   "'always' syncs every ack, 'rotate' syncs "
                                   "at segment bounds, 'never' trusts OS "
                                   "writeback (default: rotate)")
    serve_parser.add_argument("--snapshot-interval", type=int, default=1000,
                              dest="snapshot_interval",
                              help="events between state snapshots "
                                   "(with --persist; default: 1000)")
    serve_parser.add_argument("--no-compile", action="store_true",
                              dest="no_compile",
                              help="escape hatch: serve eagerly instead of "
                                   "through captured inference plans")
    serve_parser.add_argument("--plan-dtype", default="float64",
                              dest="plan_dtype",
                              choices=("float64", "float32"),
                              help="replay precision of compiled plans "
                                   "(float64 is bit-identical to eager; "
                                   "default: float64)")
    serve_parser.add_argument("--trace-sample", type=float, default=0.01,
                              dest="trace_sample", metavar="RATE",
                              help="fraction of requests to trace end-to-end "
                                   "(0 disables tracing, 1 traces everything; "
                                   "sampled traces feed GET /debug/slow; "
                                   "default: 0.01)")
    serve_parser.add_argument("--quality-window", type=float, default=3600.0,
                              dest="quality_window", metavar="SECONDS",
                              help="sliding window of the prequential quality "
                                   "monitor (with --stateful; 0 disables; "
                                   "default: 3600)")
    serve_parser.add_argument("--quality-topk", type=int, default=20,
                              dest="quality_topk", metavar="K",
                              help="ranked-list depth the quality monitor "
                                   "stores per served prediction "
                                   "(default: 20)")

    bench_parser = sub.add_parser(
        "serve-bench", help="benchmark cached vs uncached vs batched throughput"
    )
    bench_parser.add_argument("preset")
    bench_parser.add_argument("--model", default="TSPN-RA")
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--profile", default="quick", choices=("quick", "full"))
    bench_parser.add_argument("--requests", type=int, default=100,
                              help="number of test samples to serve per pass")
    bench_parser.add_argument("--scale", type=float, default=None,
                              help="override the profile's dataset scale")
    bench_parser.add_argument("--batch-sizes", default="16", dest="batch_sizes",
                              help="comma-separated batch sizes to sweep "
                                   "(e.g. 4,16,32)")
    bench_parser.add_argument("--output", default=None, metavar="PATH",
                              help="write the machine-readable sweep (config + "
                                   "per-batch-size results) to this JSON file "
                                   "(default: benchmarks/results/BENCH_serve.json)")

    replay_parser = sub.add_parser(
        "stream-replay",
        help="prequential streaming replay: ingest-then-predict vs the "
             "serialised full-rebuild baseline",
    )
    replay_parser.add_argument("preset")
    replay_parser.add_argument("--model", default="TSPN-RA")
    replay_parser.add_argument("--seed", type=int, default=0)
    replay_parser.add_argument("--profile", default="quick", choices=("quick", "full"))
    replay_parser.add_argument("--scale", type=float, default=None,
                               help="override the profile's dataset scale")
    replay_parser.add_argument("--max-events", type=int, default=1500,
                               dest="max_events",
                               help="cap on replayed check-ins (0 = all)")
    replay_parser.add_argument("--batch-size", type=int, default=32,
                               dest="batch_size",
                               help="prediction flush size of the streaming leg")
    replay_parser.add_argument("--output", default=None, metavar="PATH",
                               help="write the machine-readable comparison to "
                                    "this JSON file (default: "
                                    "benchmarks/results/BENCH_stream.json)")

    obs_parser = sub.add_parser(
        "obs-report",
        help="diff two /metrics scrapes: rates, latency percentiles, gauges",
    )
    obs_parser.add_argument("before", help="earlier scrape (file path, or - for stdin)")
    obs_parser.add_argument("after", help="later scrape (file path)")
    obs_parser.add_argument("--min-delta", type=float, default=0.0,
                            dest="min_delta",
                            help="hide counters whose delta is below this")
    return parser


def _trained_model(args):
    """Train ``args.model`` per the CLI's preset/profile flags."""
    from .experiments import get_profile, prepare, run_one

    profile = get_profile(args.profile)
    if getattr(args, "scale", None) is not None:
        from dataclasses import replace

        profile = replace(profile, dataset_scale=args.scale)
    data = prepare(args.preset, profile, seed=args.seed)
    _, model = run_one(args.model, data, profile, seed=args.seed)
    return model, data


def _server_config(args):
    from .serve import ServerConfig

    return ServerConfig(
        workers=args.workers,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.queue_size,
        compile=not args.no_compile,
        plan_dtype=args.plan_dtype,
        trace_sample=args.trace_sample,
        quality_window=getattr(args, "quality_window", 3600.0),
        quality_topk=getattr(args, "quality_topk", 20),
    )


def _cmd_serve_cluster(args) -> int:
    """``repro serve --cluster N --checkpoint CKPT --persist DIR``."""
    from .cluster import ClusterConfig, ClusterHttpFrontend, ClusterRouter
    from .data.trajectory import DEFAULT_GAP_HOURS

    if not args.checkpoint:
        print("serve: --cluster needs --checkpoint (workers attach its "
              "weights through shared memory)", file=sys.stderr)
        return 2
    if not args.persist:
        print("serve: --cluster needs --persist DIR (each shard keeps its "
              "event log and snapshots under DIR/shard-NN/)", file=sys.stderr)
        return 2
    try:
        config = ClusterConfig(
            num_shards=args.cluster,
            fsync=args.fsync,
            snapshot_interval=args.snapshot_interval,
            max_sessions=args.max_sessions,
            gap_hours=(DEFAULT_GAP_HOURS if args.gap_hours is None
                       else args.gap_hours),
            server_workers=args.workers,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            compile=not args.no_compile,
            plan_dtype=args.plan_dtype,
            trace_sample=args.trace_sample,
            quality_window=args.quality_window,
            quality_topk=args.quality_topk,
        )
        router = ClusterRouter(args.checkpoint, args.persist, config=config)
    except FileNotFoundError:
        print(f"serve: checkpoint not found: {args.checkpoint}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    router.start()
    front = ClusterHttpFrontend(router, host=args.host, port=args.port)
    print(f"cluster serving on {front.url}  ({args.cluster} shards, "
          f"persist={args.persist}, fsync={args.fsync}, "
          f"snapshot every {args.snapshot_interval} events)")
    for shard in router.shards:
        print(f"  shard {shard.spec.shard_index}: pid {shard.pid}  "
              f"recovery {shard.last_recovery}")
    print(f"  POST {front.url}/checkin    POST {front.url}/predict")
    print(f"  GET  {front.url}/healthz    GET  {front.url}/stats")
    print(f"  GET  {front.url}/metrics    GET  {front.url}/debug/slow")
    print(f"  GET  {front.url}/quality")
    try:
        front.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (final snapshots)...")
    finally:
        front.stop()
        router.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "experiments":
        from .experiments import EXPERIMENTS

        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.command == "run":
        from .experiments import get_profile, run

        profile = get_profile(args.profile) if args.profile else None
        result = run(args.experiment_id, profile=profile)
        print(result)
        return 0

    if args.command == "stats":
        from .data import build_dataset, compute_stats

        dataset = build_dataset(args.preset, seed=args.seed, scale=args.scale)
        stats = compute_stats(dataset)
        for field_name, value in vars(stats).items():
            print(f"{field_name:24s} {value}")
        return 0

    if args.command == "train":
        from .experiments import get_profile, prepare, run_one
        from .serve import save_checkpoint

        profile = get_profile(args.profile)
        data = prepare(args.preset, profile, seed=args.seed)
        metrics, model = run_one(
            "TSPN-RA", data, profile, seed=args.seed,
            use_batched=(args.trainer == "batched"),
        )
        for name, value in metrics.items():
            print(f"{name:12s} {value:.4f}")
        if args.save:
            path = save_checkpoint(model, args.save, dataset=data.dataset)
            print(f"checkpoint saved to {path}")
        return 0

    if args.command == "predict":
        from .experiments import make_predictor
        from .serve import save_checkpoint

        if args.checkpoint:
            from .data import make_samples, split_samples
            from .serve import load_checkpoint

            try:
                loaded = load_checkpoint(args.checkpoint)
            except FileNotFoundError:
                print(f"predict: checkpoint not found: {args.checkpoint}", file=sys.stderr)
                return 2
            except ValueError as error:  # no dataset recipe, format/POI mismatch
                print(f"predict: cannot load checkpoint: {error}", file=sys.stderr)
                return 2
            model, dataset = loaded.model, loaded.dataset
            split_seed = loaded.meta.get("dataset", {}).get("seed", args.seed)
            splits = split_samples(make_samples(dataset), seed=split_seed)
            if args.save:  # re-save (e.g. to attach the rebuilt dataset recipe)
                path = save_checkpoint(model, args.save, dataset=dataset)
                print(f"checkpoint saved to {path}")
        else:
            if args.preset is None:
                print("predict: provide a preset or --checkpoint", file=sys.stderr)
                return 2
            model, data = _trained_model(args)
            splits = data.splits
            if args.save:
                path = save_checkpoint(model, args.save, dataset=data.dataset)
                print(f"checkpoint saved to {path}")

        predictor = make_predictor(model)
        test = splits.test[: args.samples]
        results = predictor.predict_batch(test)
        for sample, result in zip(test, results):
            top = ", ".join(str(p) for p in result.top_k(args.top_k))
            print(
                f"user {sample.user_id:4d}  target {result.target_poi:5d}  "
                f"rank {result.poi_rank:4d}  top-{args.top_k}: [{top}]"
            )
        stats = predictor.stats
        print(
            f"served {stats.requests} requests in {stats.total_seconds:.3f}s "
            f"({stats.throughput:.1f} samples/s, "
            f"mean latency {stats.mean_latency_ms:.2f} ms)"
        )
        return 0

    if args.command == "serve":
        from .serve import HttpFrontend, InferenceServer

        if args.cluster is not None:
            return _cmd_serve_cluster(args)

        state_store = None
        ingest = None
        if args.persist:
            # durable single-process tier: recover, then log every ack
            from .cluster import DurableIngest, EventLogWriter, recover_store
            from .data.trajectory import DEFAULT_GAP_HOURS
            from .stream import StoreConfig

            try:
                store_config = StoreConfig(
                    num_shards=args.shards,
                    max_sessions=args.max_sessions,
                    gap_hours=(DEFAULT_GAP_HOURS if args.gap_hours is None
                               else args.gap_hours),
                )
                recovery = recover_store(args.persist, config=store_config)
                log = EventLogWriter(args.persist, fsync=args.fsync,
                                     next_seq=recovery.last_seq + 1)
                ingest = DurableIngest(store=recovery.store, log=log,
                                       snapshot_interval=args.snapshot_interval)
            except (ValueError, RuntimeError) as error:
                print(f"serve: {error}", file=sys.stderr)
                return 2
            print(f"recovered {len(recovery.store)} users from {args.persist} "
                  f"(snapshot seq {recovery.snapshot_seq} + {recovery.replayed} "
                  f"replayed) in {recovery.seconds:.3f}s")
        elif args.stateful:
            from .data.trajectory import DEFAULT_GAP_HOURS
            from .stream import StoreConfig, UserStateStore

            try:
                state_store = UserStateStore(StoreConfig(
                    num_shards=args.shards,
                    max_sessions=args.max_sessions,
                    gap_hours=(DEFAULT_GAP_HOURS if args.gap_hours is None
                               else args.gap_hours),
                ))
            except ValueError as error:  # e.g. --shards 0, --gap-hours -1
                print(f"serve: {error}", file=sys.stderr)
                return 2
        if args.checkpoint:
            try:
                loaded_kwargs = dict(config=_server_config(args))
                if ingest is not None:
                    loaded_kwargs["ingest"] = ingest
                else:
                    loaded_kwargs["state_store"] = state_store
                from .serve import load_checkpoint
                loaded = load_checkpoint(args.checkpoint)
                server = InferenceServer(loaded.model, dataset=loaded.dataset,
                                         **loaded_kwargs)
            except FileNotFoundError:
                print(f"serve: checkpoint not found: {args.checkpoint}", file=sys.stderr)
                return 2
            except ValueError as error:  # no recipe, unknown preset, mismatch
                print(f"serve: cannot load checkpoint: {error}", file=sys.stderr)
                return 2
        else:
            if args.preset is None:
                print("serve: provide a preset or --checkpoint", file=sys.stderr)
                return 2
            model, data = _trained_model(args)
            server = InferenceServer(model, config=_server_config(args),
                                     dataset=data.dataset, state_store=state_store,
                                     ingest=ingest)
        stateful = args.stateful or bool(args.persist)
        server.start()
        front = HttpFrontend(server, host=args.host, port=args.port)
        print(f"serving on {front.url}  (workers={server.config.workers}, "
              f"max_batch_size={server.config.max_batch_size}, "
              f"max_wait_ms={server.config.max_wait_ms}"
              + (f", stateful: {args.shards} shards" if stateful else "")
              + (f", durable: {args.persist} [{args.fsync}]" if args.persist else "")
              + ")")
        print(f"  POST {front.url}/predict    POST {front.url}/recommend")
        if stateful:
            print(f"  POST {front.url}/checkin    POST {front.url}/predict "
                  "{\"user_id\": ...}")
        print(f"  GET  {front.url}/healthz    GET  {front.url}/stats")
        print(f"  GET  {front.url}/metrics    GET  {front.url}/debug/slow")
        if stateful:
            print(f"  GET  {front.url}/quality")
        try:
            front.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down (draining in-flight requests)...")
        finally:
            front.stop()
            server.stop(drain=True)
            if ingest is not None:
                ingest.maybe_snapshot(force=True)
                ingest.log.close()
        return 0

    if args.command == "serve-bench":
        import json
        from pathlib import Path

        from .serve import compare_throughput

        try:
            batch_sizes = [int(b) for b in args.batch_sizes.split(",") if b.strip()]
        except ValueError:
            print(f"serve-bench: bad --batch-sizes {args.batch_sizes!r}", file=sys.stderr)
            return 2
        if not batch_sizes or any(b < 1 for b in batch_sizes):
            print("serve-bench: --batch-sizes needs positive integers", file=sys.stderr)
            return 2

        model, data = _trained_model(args)
        test = data.splits.test[: args.requests]
        results = []
        for batch_size in batch_sizes:
            report = compare_throughput(model, test, batch_size=batch_size)
            print(f"\nbatch_size = {batch_size}")
            for key, value in report.items():
                print(f"{key:18s} {value:10.2f}")
            results.append(
                {"batch_size": batch_size,
                 **{key: round(value, 4) for key, value in report.items()}}
            )

        output = Path(args.output) if args.output else (
            Path(__file__).resolve().parents[2] / "benchmarks" / "results"
            / "BENCH_serve.json"
        )
        output.parent.mkdir(parents=True, exist_ok=True)
        sweep = {
            "bench": "serve",
            "dataset": args.preset,
            "model": args.model,
            "profile": args.profile,
            "seed": args.seed,
            "scale": args.scale,
            "requests": len(test),
            "batch_sizes": batch_sizes,
            "results": results,
        }
        output.write_text(json.dumps(sweep, indent=2) + "\n")
        print(f"\n[serve sweep saved to {output}]")
        return 0

    if args.command == "stream-replay":
        import json
        from pathlib import Path

        from .serve import Predictor
        from .stream import compare_replay, events_from_checkins

        if args.batch_size < 1:
            print("stream-replay: --batch-size must be >= 1", file=sys.stderr)
            return 2
        model, data = _trained_model(args)
        events = events_from_checkins(data.dataset.checkins)
        max_events = None if args.max_events in (0, None) else args.max_events
        predictor = Predictor(model, graph_cache_size=512)
        comparison = compare_replay(
            predictor, events, batch_size=args.batch_size, max_events=max_events
        )
        reports = comparison.pop("_reports")
        for leg in ("baseline", "stream"):
            report = reports[leg]
            print(f"\n{leg}: {report.predictions} predictions over "
                  f"{report.events} events in {report.seconds:.2f}s "
                  f"({report.events_per_second:.1f} events/s)")
            for name, value in report.metrics.items():
                print(f"  {name:12s} {value:.4f}")
        print(f"\nstreaming speedup over serialised rebuild: "
              f"{comparison['speedup']:.2f}x  "
              f"(ranked lists identical: {comparison['ranked_lists_identical']})")

        output = Path(args.output) if args.output else (
            Path(__file__).resolve().parents[2] / "benchmarks" / "results"
            / "BENCH_stream.json"
        )
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(
            {"bench": "stream_replay", "dataset": args.preset,
             "model": args.model, "profile": args.profile, "seed": args.seed,
             "scale": args.scale, **comparison},
            indent=2) + "\n")
        print(f"[stream replay comparison saved to {output}]")
        return 0

    if args.command == "obs-report":
        from pathlib import Path

        from .obs import diff_scrapes, format_report

        def read_scrape(spec: str) -> str:
            if spec == "-":
                return sys.stdin.read()
            path = Path(spec)
            if not path.exists():
                raise FileNotFoundError(spec)
            return path.read_text()

        try:
            before = read_scrape(args.before)
            after = read_scrape(args.after)
        except FileNotFoundError as missing:
            print(f"obs-report: scrape not found: {missing}", file=sys.stderr)
            return 2
        try:
            report = diff_scrapes(before, after)
        except ValueError as error:
            print(f"obs-report: cannot parse scrape: {error}", file=sys.stderr)
            return 2
        print(format_report(report, min_delta=args.min_delta))
        return 0

    return 1  # unreachable: argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
