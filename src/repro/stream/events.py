"""Check-in events: the wire model of the online ingestion path.

A :class:`CheckinEvent` is one ``(user, POI, timestamp)`` arrival — the
streaming twin of the offline :class:`~repro.data.checkin.Checkin`
record.  The JSON codec follows the same conventions as the serving
wire format (:mod:`repro.serve.protocol`): field-level ``ValueError``
messages raised *before* the event can enter the store, and POI ids
bounded by the model's universe when known, so a malformed check-in
gets its own 400 instead of corrupting per-user state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..data.checkin import Checkin, CheckinDataset, time_slot


@dataclass(frozen=True)
class CheckinEvent:
    """One streamed check-in arrival.

    Timestamps are float *hours* from an arbitrary epoch, the same
    clock the offline datasets use, so a replayed dataset and a live
    stream are interchangeable inputs to the store.
    """

    user_id: int
    poi_id: int
    timestamp: float

    @property
    def slot(self) -> int:
        return time_slot(self.timestamp)

    def to_checkin(self) -> Checkin:
        return Checkin(user_id=self.user_id, poi_id=self.poi_id, timestamp=self.timestamp)

    @classmethod
    def from_checkin(cls, record: Checkin) -> "CheckinEvent":
        return cls(user_id=record.user_id, poi_id=record.poi_id, timestamp=record.timestamp)


def event_from_json(payload: Dict, num_pois: Optional[int] = None) -> CheckinEvent:
    """Build a :class:`CheckinEvent` from a ``POST /checkin`` body.

    Expected shape::

        {"user_id": 7, "poi_id": 3, "timestamp": 12.5}

    Validation failures raise ``ValueError`` with a field-level message
    — the HTTP front-end turns them into 400s before the event reaches
    the state store, and ``num_pois`` (when given) bounds the POI id so
    a bad check-in can never feed an out-of-range gather to the encode.
    """
    if not isinstance(payload, dict):
        raise ValueError("check-in body must be a JSON object")
    user_id = payload.get("user_id")
    if isinstance(user_id, bool) or not isinstance(user_id, int):
        raise ValueError("user_id must be an integer")
    poi_id = payload.get("poi_id")
    if isinstance(poi_id, bool) or not isinstance(poi_id, int):
        raise ValueError("poi_id must be an integer")
    if poi_id < 0 or (num_pois is not None and poi_id >= num_pois):
        raise ValueError(
            f"poi_id {poi_id} outside the POI universe"
            + (f" [0, {num_pois})" if num_pois is not None else "")
        )
    timestamp = payload.get("timestamp")
    if isinstance(timestamp, bool) or not isinstance(timestamp, (int, float)):
        raise ValueError("timestamp must be a number (hours)")
    if not math.isfinite(timestamp):
        raise ValueError("timestamp must be finite")
    return CheckinEvent(user_id=user_id, poi_id=int(poi_id), timestamp=float(timestamp))


def event_to_json(event: CheckinEvent) -> Dict:
    return {"user_id": event.user_id, "poi_id": event.poi_id, "timestamp": event.timestamp}


def events_from_checkins(checkins: CheckinDataset) -> List[CheckinEvent]:
    """A dataset's check-ins as one globally time-ordered arrival stream.

    This is the replay input: the per-user streams (already time-sorted
    by :class:`~repro.data.checkin.CheckinDataset`) are merged into a
    single sequence sorted by ``(timestamp, user_id)``.  The sort is
    stable, so ties within one user preserve the dataset's order and an
    ingest of this stream reconstructs exactly the offline per-user
    trajectories.
    """
    events = [CheckinEvent.from_checkin(record) for record in checkins.all_checkins()]
    events.sort(key=lambda e: (e.timestamp, e.user_id))
    return events
