"""``repro.stream`` — online check-in ingestion and streaming evaluation.

The serving runtime's stateful half: instead of every request shipping
the user's full check-in history over the wire, the server owns the
state.

Entry points
------------
* :class:`CheckinEvent` / :func:`event_from_json` /
  :func:`event_to_json` — the wire model of one streamed check-in
  (same validation conventions as the serving protocol);
  :func:`events_from_checkins` turns an offline dataset into a
  time-ordered arrival stream;
* :class:`UserStateStore` / :class:`StoreConfig` — the sharded,
  lock-striped per-user state: bounded completed-session history (the
  QR-P input) plus the open session (the prediction prefix), split at
  the paper's Δt gap rule, each append bumping a per-user monotonic
  ``state_version``;
* :class:`StreamIngest` — the ingestion pipeline: appends events,
  rolls sessions, and retires stale per-user QR-P graph cache entries
  from the serving layer exactly once per history change;
* :func:`prequential_replay` / :func:`serialised_rebuild_baseline` /
  :func:`compare_replay` — test-then-train streaming evaluation of a
  replayed dataset (Recall@K / MRR under streaming arrival, sustained
  ingest+predict throughput) against the stateless full-rebuild cost
  model;
* :func:`stream_history_key` — the ``("stream", user, version)``
  graph-cache key that makes invalidation ride ``state_version`` the
  way shared embeddings ride ``weights_version``.

``repro serve --stateful`` wires a store into the HTTP runtime
(``POST /checkin``, history-less ``POST /predict {"user_id": ...}``);
``repro stream-replay`` runs the prequential benchmark.
"""

from .events import (
    CheckinEvent,
    event_from_json,
    event_to_json,
    events_from_checkins,
)
from .ingest import StreamIngest
from .replay import (
    REPLAY_BATCH_SIZE,
    ReplayRecord,
    ReplayReport,
    compare_replay,
    offline_reference,
    prequential_replay,
    serialised_rebuild_baseline,
)
from .scenarios import ShiftScenario, popularity_shift_events
from .state import (
    AppendResult,
    StoreConfig,
    UserSnapshot,
    UserStateStore,
    stream_history_key,
)

__all__ = [
    "AppendResult",
    "CheckinEvent",
    "REPLAY_BATCH_SIZE",
    "ReplayRecord",
    "ReplayReport",
    "ShiftScenario",
    "StoreConfig",
    "StreamIngest",
    "UserSnapshot",
    "UserStateStore",
    "compare_replay",
    "event_from_json",
    "event_to_json",
    "events_from_checkins",
    "offline_reference",
    "popularity_shift_events",
    "prequential_replay",
    "serialised_rebuild_baseline",
    "stream_history_key",
]
