"""Shared utilities: seeded RNG management, caching, measurement probes."""

from .cache import LRUCache
from .rng import default_rng, derive, set_seed, spawn
from .timer import Ledger, Stopwatch, TimerResult

__all__ = [
    "LRUCache",
    "Ledger",
    "Stopwatch",
    "TimerResult",
    "default_rng",
    "derive",
    "set_seed",
    "spawn",
]
