"""Build a fully custom city through the public API.

Shows every substrate explicitly instead of using a preset: land use,
road network, POI/check-in synthesis, quad-tree, road adjacency,
imagery, and a QR-P graph for one user — then inspects the pieces.

    python examples/custom_city.py
"""

import numpy as np

from repro.data import CheckinDataset, SynthConfig, generate_city, split_into_trajectories
from repro.geo import BoundingBox
from repro.graphs import build_qrp_graph
from repro.imagery import (
    Blob,
    CityCenter,
    Coastline,
    ImageryCatalog,
    LandUseMap,
    TileRenderer,
)
from repro.roadnet import generate_urban_network, tile_road_adjacency
from repro.spatial import RegionQuadTree


def main() -> None:
    rng = np.random.default_rng(42)
    bbox = BoundingBox(0.0, 0.0, 12.0, 12.0)

    # 1. Land use: twin centres, a riverside park, an east coastline.
    land = LandUseMap(
        bbox=bbox,
        centers=[
            CityCenter(4.0, 6.0, commercial_radius=1.2, urban_radius=3.0),
            CityCenter(8.0, 3.0, commercial_radius=0.8, urban_radius=2.0),
        ],
        parks=[Blob(6.0, 9.0, 1.0)],
        industrial=[Blob(2.0, 2.0, 1.0)],
        coast=Coastline(base=10.8, amplitude=0.3, frequency=0.6, side="east"),
    )
    print("land use at (4, 6):", land.class_at(4.0, 6.0).name)
    print("land use at (11.5, 6):", land.class_at(11.5, 6.0).name)

    # 2. Roads and check-ins.
    roads = generate_urban_network(bbox, rng, n_rows=10, n_cols=10)
    print(f"roads: {roads.num_intersections} intersections, "
          f"{roads.total_length():.0f} km, "
          f"{roads.largest_component_fraction():.0%} connected")

    config = SynthConfig(
        n_pois=220, n_users=25, n_categories=18, n_days=35, vacation_rate=0.15, seed=42
    )
    city = generate_city(bbox, land, roads, config)
    print(f"city: {len(city.pois)} POIs, {len(city.checkins)} check-ins")

    # 3. Spatial index + road adjacency + imagery.
    tree = RegionQuadTree.build(bbox, city.pois.xy, max_depth=6, max_pois=14)
    adjacency = tile_road_adjacency(tree, roads)
    catalog = ImageryCatalog(TileRenderer(land, roads, resolution=64)).bind(tree)
    print(f"quad-tree: {len(tree)} tiles, {len(tree.leaves())} leaves, depth {tree.depth()}")
    print(f"road adjacency: {len(adjacency)} leaf-tile pairs")
    image = catalog.image_for(tree.leaves()[0])
    print(f"tile imagery: {image.shape}, mean RGB {image.reshape(-1, 3).mean(0).round(2)}")

    # 4. A QR-P graph for the user with the richest history.
    checkins = CheckinDataset(city.checkins)
    busiest = max(
        checkins.users(),
        key=lambda u: len(split_into_trajectories(checkins.of_user(u))),
    )
    trajectories = split_into_trajectories(checkins.of_user(busiest))
    history, current = trajectories[:-1], trajectories[-1]
    qrp = build_qrp_graph(tree, adjacency, history)
    print(
        f"\nuser {busiest}: {len(trajectories)} trajectories; QR-P graph over "
        f"{len(history)} historical ones has {qrp.graph.num_nodes} nodes "
        f"({len(qrp.tile_refs)} tiles, {len(qrp.poi_refs)} POIs)"
    )
    for kind in ("branch", "road", "contain"):
        print(f"  {kind:8s} edges: {qrp.graph.num_edges(kind)}")
    print(f"current trajectory has {len(current)} visits — "
          "feed it to TSPNRA.predict() as the prefix (see quickstart.py)")


if __name__ == "__main__":
    main()
