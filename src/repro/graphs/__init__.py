"""Heterogeneous graphs and the QR-P graph construction."""

from .hetero import EDGE_TYPES, NODE_TYPES, HeteroGraph
from .incremental import (
    QRPGraphMaintainer,
    QRPGraphState,
    StaleEvictionError,
    attention_masks,
    evict_qrp_graph,
    graphs_equal,
    update_qrp_graph,
)
from .qrp import QRPGraph, build_qrp_graph, strip_edges

__all__ = [
    "EDGE_TYPES",
    "HeteroGraph",
    "NODE_TYPES",
    "QRPGraph",
    "QRPGraphMaintainer",
    "QRPGraphState",
    "StaleEvictionError",
    "attention_masks",
    "build_qrp_graph",
    "evict_qrp_graph",
    "graphs_equal",
    "strip_edges",
    "update_qrp_graph",
]
