"""Experiment registry: one id per paper table/figure.

``run("table2")`` regenerates the corresponding result with the
current profile; the ``benchmarks/`` directory exposes the same ids to
pytest-benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from . import figures, tables
from .profile import ExperimentProfile, current_profile

EXPERIMENTS: Dict[str, Callable] = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "table3": tables.run_table3,
    "table4": tables.run_table4,
    "table5": tables.run_table5,
    "fig8": lambda profile: figures.run_fig8(),
    "fig10": figures.run_fig10,
    "fig11": figures.run_fig11,
    "fig12": figures.run_fig12,
}


def run(experiment_id: str, profile: Optional[ExperimentProfile] = None):
    """Run one experiment by id with an optional explicit profile."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    profile = profile or current_profile()
    return EXPERIMENTS[experiment_id](profile)
