"""Shared experiment harness: build datasets, train any model, evaluate.

Every table/figure runner goes through these helpers so that TSPN-RA,
its ablation variants and all ten baselines see identical data splits,
training budgets and evaluation protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import make_baseline
from ..core import TSPNRA, TSPNRAConfig
from ..data import Dataset, build_dataset, make_samples, split_samples
from ..data.splits import SplitSamples
from ..eval import evaluate
from ..serve import Predictor
from ..train import TrainConfig, Trainer
from ..utils.rng import spawn
from .profile import ExperimentProfile

ALL_MODELS = (
    "MC",
    "GRU",
    "STRNN",
    "DeepMove",
    "LSTPM",
    "STAN",
    "SAE-NAD",
    "HMT-GRN",
    "Graph-Flashback",
    "STiSAN",
    "TSPN-RA",
)


@dataclass
class PreparedData:
    """Dataset plus its sample splits and normalised POI coordinates."""

    dataset: Dataset
    splits: SplitSamples
    locations: np.ndarray  # unit-square POI coordinates

    @property
    def num_pois(self) -> int:
        return len(self.dataset.city.pois)


def prepare(
    name: str,
    profile: ExperimentProfile,
    seed: Optional[int] = None,
    noise_fraction: float = 0.0,
) -> PreparedData:
    """Build one preset dataset and split its samples 80/10/10."""
    seed = profile.seed if seed is None else seed
    dataset = build_dataset(
        name,
        seed=seed,
        scale=profile.dataset_scale,
        imagery_resolution=profile.imagery_resolution,
        noise_fraction=noise_fraction,
    )
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=seed)
    locations = np.array(
        [dataset.spec.bbox.normalize(x, y) for x, y in dataset.city.pois.xy]
    )
    return PreparedData(dataset=dataset, splits=splits, locations=locations)


def tspnra_config(profile: ExperimentProfile, dataset: Dataset, **overrides) -> TSPNRAConfig:
    """Model config derived from a profile plus the dataset's K."""
    base = dict(
        dim=profile.dim,
        fusion_layers=profile.fusion_layers,
        hgat_layers=profile.hgat_layers,
        top_k=dataset.spec.top_k,
    )
    base.update(overrides)
    return TSPNRAConfig(**base)


def build_model(
    name: str,
    data: PreparedData,
    profile: ExperimentProfile,
    config: Optional[TSPNRAConfig] = None,
    seed: Optional[int] = None,
):
    """Instantiate TSPN-RA or any baseline with a deterministic RNG."""
    rng = spawn((profile.seed if seed is None else seed) + 101)
    if name == "TSPN-RA":
        config = config or tspnra_config(profile, data.dataset)
        return TSPNRA.from_dataset(data.dataset, config, rng=rng)
    return make_baseline(name, data.num_pois, data.locations, dim=profile.dim, rng=rng)


def train_model(
    model,
    data: PreparedData,
    profile: ExperimentProfile,
    seed: Optional[int] = None,
    use_batched: bool = True,
):
    """Train with the profile's budget; dispatches on the model kind.

    ``use_batched`` selects the trainer's ``loss_batch`` path (models
    without one fall back to the per-sample loop either way).
    """
    if not model.requires_gradient_training:
        model.fit(data.splits.train)
        return None
    if hasattr(model, "fit_transition_graph"):
        model.fit_transition_graph(data.splits.train)
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=profile.epochs,
            batch_size=profile.batch_size,
            lr=profile.lr,
            max_train_samples=profile.max_train_samples,
            seed=profile.seed if seed is None else seed,
            use_batched=use_batched,
        ),
    )
    return trainer.fit(data.splits.train)


def eval_model(model, data: PreparedData, profile: ExperimentProfile) -> Dict[str, float]:
    test = data.splits.test
    if profile.eval_samples is not None:
        test = test[: profile.eval_samples]
    return evaluate(model, test)


def make_predictor(model, graph_cache_size: int = 256) -> Predictor:
    """Wrap a trained model in the serving facade (``repro.serve``)."""
    return Predictor(model, graph_cache_size=graph_cache_size)


def run_one(
    model_name: str,
    data: PreparedData,
    profile: ExperimentProfile,
    config: Optional[TSPNRAConfig] = None,
    seed: Optional[int] = None,
    use_batched: bool = True,
) -> Tuple[Dict[str, float], object]:
    """Train + evaluate one model; returns (metrics, trained model)."""
    model = build_model(model_name, data, profile, config=config, seed=seed)
    train_model(model, data, profile, seed=seed, use_batched=use_batched)
    return eval_model(model, data, profile), model


def run_comparison(
    dataset_name: str,
    profile: ExperimentProfile,
    models: Sequence[str] = ALL_MODELS,
) -> Dict[str, Dict[str, float]]:
    """Train/evaluate a list of models on one dataset (Tables II/III)."""
    data = prepare(dataset_name, profile)
    results: Dict[str, Dict[str, float]] = {}
    for model_name in models:
        metrics, _ = run_one(model_name, data, profile)
        results[model_name] = metrics
    return results
