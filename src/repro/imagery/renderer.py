"""Tile renderer: land-use field + roads -> RGB arrays.

Produces the ``256 x 256 x 3`` tile images the paper crops from Google
Maps (Sec. VI-A, "Remote Sensing Satellite Imagery").  Rendering is
deterministic given the seed so that a tile always looks the same
across training epochs, like a cached satellite crop would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geo import BoundingBox
from ..roadnet import RoadNetwork
from .landuse import LandUse, LandUseMap

# Base RGB per class, roughly matching aerial imagery palettes.
_BASE_COLORS = {
    LandUse.WATER: (0.10, 0.28, 0.55),
    LandUse.PARK: (0.18, 0.46, 0.22),
    LandUse.COMMERCIAL: (0.62, 0.60, 0.63),
    LandUse.RESIDENTIAL: (0.55, 0.49, 0.42),
    LandUse.INDUSTRIAL: (0.48, 0.44, 0.50),
    LandUse.RURAL: (0.42, 0.47, 0.28),
}

# Building-speckle amplitude per class: dense cores look "busier".
_SPECKLE = {
    LandUse.WATER: 0.01,
    LandUse.PARK: 0.03,
    LandUse.COMMERCIAL: 0.12,
    LandUse.RESIDENTIAL: 0.09,
    LandUse.INDUSTRIAL: 0.10,
    LandUse.RURAL: 0.04,
}

_ROAD_COLOR = np.array([0.22, 0.22, 0.24])


class TileRenderer:
    """Render any bounding box of the city into an RGB array."""

    def __init__(
        self,
        land_use: LandUseMap,
        roads: Optional[RoadNetwork] = None,
        resolution: int = 256,
        seed: int = 0,
    ):
        if resolution < 4:
            raise ValueError("resolution too small to be meaningful")
        self.land_use = land_use
        self.roads = roads
        self.resolution = resolution
        self.seed = seed

    def render(self, bbox: BoundingBox) -> np.ndarray:
        """Return a ``(resolution, resolution, 3)`` float array in [0, 1].

        Row 0 is the *north* edge (image convention).
        """
        res = self.resolution
        xs = np.linspace(bbox.min_x, bbox.max_x, res, endpoint=False) + bbox.width / (2 * res)
        ys = np.linspace(bbox.max_y, bbox.min_y, res, endpoint=False) - bbox.height / (2 * res)
        grid_x, grid_y = np.meshgrid(xs, ys)
        classes = self.land_use.classes_at(grid_x.ravel(), grid_y.ravel()).reshape(res, res)

        image = np.empty((res, res, 3), dtype=np.float64)
        for land_class, color in _BASE_COLORS.items():
            mask = classes == int(land_class)
            image[mask] = color

        # Deterministic per-tile texture: hash the bbox into the seed.
        tile_seed = (self.seed * 1_000_003 + hash((round(bbox.min_x, 6), round(bbox.min_y, 6)))) % (2**31)
        rng = np.random.default_rng(tile_seed)
        speckle = rng.normal(0.0, 1.0, size=(res, res, 1))
        amplitude = np.zeros((res, res, 1))
        for land_class, amp in _SPECKLE.items():
            amplitude[classes == int(land_class)] = amp
        image = image + speckle * amplitude

        if self.roads is not None:
            self._draw_roads(image, bbox)
        return np.clip(image, 0.0, 1.0)

    def _draw_roads(self, image: np.ndarray, bbox: BoundingBox) -> None:
        res = self.resolution
        for (xa, ya), (xb, yb), kind in self.roads.segments():
            seg_box = BoundingBox(
                min(xa, xb) - 1e-9, min(ya, yb) - 1e-9, max(xa, xb) + 1e-9, max(ya, yb) + 1e-9
            )
            if not bbox.intersects(seg_box):
                continue
            length_px = res * max(abs(xb - xa) / bbox.width, abs(yb - ya) / bbox.height)
            steps = max(2, int(np.ceil(length_px)) * 2)
            ts = np.linspace(0.0, 1.0, steps)
            px = (xa + ts * (xb - xa) - bbox.min_x) / bbox.width * res
            py = (bbox.max_y - (ya + ts * (yb - ya))) / bbox.height * res
            cols = px.astype(int)
            rows = py.astype(int)
            inside = (cols >= 0) & (cols < res) & (rows >= 0) & (rows < res)
            image[rows[inside], cols[inside]] = _ROAD_COLOR
            if kind in ("avenue", "highway"):  # wider strokes for majors
                for dr, dc in ((0, 1), (1, 0)):
                    r2, c2 = rows[inside] + dr, cols[inside] + dc
                    ok = (r2 < res) & (c2 < res)
                    image[r2[ok], c2[ok]] = _ROAD_COLOR


def add_noise(image: np.ndarray, fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Replace ``fraction`` of pixels with uniform noise.

    Reproduces the paper's Fig. 12(b) experiment ("introduced 20% noise
    to the imagery data").
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    noisy = image.copy()
    mask = rng.random(image.shape[:2]) < fraction
    noisy[mask] = rng.random((int(mask.sum()), image.shape[2]))
    return noisy
