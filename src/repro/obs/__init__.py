"""repro.obs — zero-dependency observability for the serving stack.

Three layers, importable with no dependency on the rest of :mod:`repro`
(so :mod:`repro.core.model` can open spans without an import cycle):

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket mergeable
  histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — trace/span request timelines with
  thread-local, future-hand-off, and cross-process (carrier dict)
  propagation, plus the :class:`SlowRing` behind ``/debug/slow``;
* :mod:`repro.obs.expo` — Prometheus text rendering/parsing and the
  scrape differ behind ``repro obs-report``.
"""

from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_histogram_snapshots,
    snapshot_percentile,
)
from .tracing import (
    SlowRing,
    Span,
    Trace,
    activate,
    current_trace,
    maybe_trace,
    span,
    span_creation_count,
)
from .expo import diff_scrapes, format_report, parse_prometheus, render_prometheus

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "merge_histogram_snapshots",
    "snapshot_percentile",
    "SlowRing",
    "Span",
    "Trace",
    "activate",
    "current_trace",
    "maybe_trace",
    "span",
    "span_creation_count",
    "diff_scrapes",
    "format_report",
    "parse_prometheus",
    "render_prometheus",
]
