"""Incremental QR-P graph maintenance: O(session) updates per rollover.

:func:`~repro.graphs.qrp.build_qrp_graph` reconstructs a user's whole
graph from the concatenated history — O(history) work on every session
rollover.  The delta at a rollover is one new trajectory (and, at the
``max_sessions`` bound, one evicted trajectory), so this module keeps
enough bookkeeping per user to apply exactly that delta:

* per-POI deques of occurrence positions ``(session_seq, visit_idx)``
  — the head of a deque is the POI's *first* visit, which is what
  fixes its node position (``build_qrp_graph`` adds POIs in
  first-visit order of the concatenated history);
* per-leaf visit counts — a leaf leaves the graph only when its last
  counted visit is evicted;
* the live :class:`~repro.graphs.qrp.QRPGraph` plus its dense
  attention masks, rebuilt **only for the touched neighbourhoods**:
  appending a session that introduces no new leaf pads the existing
  masks and fills just the new contain slots; structural changes
  (new/dropped leaves, reordered POIs) re-run the cheap canonical
  assembly over the maintained order.

The invariant — checked after every event by the differential fuzz
harness in ``tests/test_incremental_graphs.py`` — is that the
maintained graph is node-, edge-, and attention-identical to a
``build_qrp_graph`` rebuild of the same completed sessions
(:func:`graphs_equal`).  Anything the incremental path cannot prove it
handled (an eviction that is not the oldest accounted session) falls
back to an explicit, *counted* rebuild via :meth:`build_state` — the
store surfaces ``graph_rebuilds`` so a fallback storm is visible in
``/stats``, never silent.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.trajectory import Trajectory
from .hetero import EDGE_TYPES, HeteroGraph
from .qrp import QRPGraph


def attention_masks(qrp: QRPGraph) -> Dict[str, np.ndarray]:
    """Dense blocked-attention masks per edge type (vectorised).

    ``masks[k][i, j]`` is True when j is NOT a k-neighbour of i — the
    exact contract of :meth:`repro.core.hgat.HGATLayer.forward`.  One
    advanced-indexing assignment per edge type replaces the Python
    per-edge loop; ``HGATEncoder.build_masks`` delegates here.
    """
    n = qrp.graph.num_nodes
    masks: Dict[str, np.ndarray] = {}
    for kind in EDGE_TYPES:
        mask = np.ones((n, n), dtype=bool)
        pairs = qrp.graph.edges[kind]
        if pairs:
            arr = np.asarray(pairs, dtype=np.int64)
            mask[arr[:, 1], arr[:, 0]] = False  # dst attends to src
        masks[kind] = mask
    return masks


def graphs_equal(a: QRPGraph, b: QRPGraph) -> bool:
    """Node-, edge-, and index-map identity of two QR-P graphs.

    Node order is canonical (sorted subtree tiles, then POIs in
    first-visit order), so node lists compare positionally.  Edge
    *list* order is not canonical — ``build_qrp_graph`` iterates sets
    for road edges — so per-type edges compare as multisets; the HGAT
    attention masks depend only on the edge *set*, so multiset-equal
    edges give bit-identical masks (asserted separately by the fuzz
    harness via :func:`attention_masks`).
    """
    return (
        a.graph.node_types == b.graph.node_types
        and a.graph.node_refs == b.graph.node_refs
        and all(
            sorted(a.graph.edges[kind]) == sorted(b.graph.edges[kind])
            for kind in EDGE_TYPES
        )
        and a.tile_nodes == b.tile_nodes
        and a.tile_refs == b.tile_refs
        and a.poi_nodes == b.poi_nodes
        and a.poi_refs == b.poi_refs
        and a.leaf_tile_refs == b.leaf_tile_refs
    )


def _empty_qrp() -> QRPGraph:
    return QRPGraph(HeteroGraph(), [], [], [], [], set())


class QRPGraphState:
    """One user's live incremental graph; owned by a store shard.

    All mutation goes through the :class:`QRPGraphMaintainer` that
    created it (``state.maintainer``) under the owning shard's lock.
    ``qrp``/``masks`` are replaced wholesale on change (copy-on-write),
    never mutated in place — snapshots and pushed cache entries stay
    immutable, the same contract completed :class:`Trajectory` objects
    follow.
    """

    __slots__ = (
        "maintainer",
        "next_seq",
        "evict_seq",
        "occurrences",
        "first",
        "order",
        "leaf_counts",
        "qrp",
        "masks",
    )

    def __init__(self, maintainer: "QRPGraphMaintainer"):
        self.maintainer = maintainer
        self.next_seq = 0  # sequence number of the next appended session
        self.evict_seq = 0  # sequence number of the next eviction (FIFO)
        self.occurrences: Dict[int, Deque[Tuple[int, int]]] = {}
        self.first: Dict[int, Tuple[int, int]] = {}
        self.order: List[int] = []  # POIs by first occurrence
        self.leaf_counts: Dict[int, int] = {}
        self.qrp: QRPGraph = _empty_qrp()
        self.masks: Dict[str, np.ndarray] = attention_masks(self.qrp)


class StaleEvictionError(RuntimeError):
    """The evicted trajectory is not the oldest accounted session.

    Raised before any externally visible mutation sticks; the caller's
    contract is to fall back to a counted :meth:`QRPGraphMaintainer.
    build_state` rebuild from the authoritative session deque.
    """


class QRPGraphMaintainer:
    """Applies session-level deltas to per-user QR-P graphs.

    One shared instance per tile system (see
    ``QuadTreeTileSystem.graph_maintainer``): the quad-tree and road
    adjacency are read-only, so every serving worker and every user
    state can lean on the same precomputed ``road`` pair index and
    POI->leaf memo.  Mutable per-user state lives in
    :class:`QRPGraphState`, guarded by the store's shard locks.
    """

    def __init__(self, tree, road_adjacency: Set[Tuple[int, int]]):
        self.tree = tree
        self.road_adjacency = road_adjacency
        # Pairs indexed by their first element: reassembly touches each
        # undirected pair once (exactly as build_qrp_graph iterates the
        # set), instead of scanning all |roads| pairs per update.
        by_first: Dict[int, List[int]] = {}
        for a, b in road_adjacency:
            by_first.setdefault(a, []).append(b)
        self._road_by_first = by_first
        self._poi_leaf: Dict[int, int] = {}

    def _leaf_of(self, poi_id: int) -> int:
        leaf = self._poi_leaf.get(poi_id)
        if leaf is None:
            # benign if racy: leaf_of_poi is pure, duplicate writes agree
            leaf = self._poi_leaf[poi_id] = self.tree.leaf_of_poi(poi_id)
        return leaf

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def new_state(self) -> QRPGraphState:
        """Empty per-user state (no completed sessions yet)."""
        return QRPGraphState(self)

    def build_state(self, sessions: Sequence[Trajectory]) -> QRPGraphState:
        """Full (counted-fallback / first-materialisation) build.

        The canonical assembly over freshly accounted sessions — by
        construction identical to ``build_qrp_graph(tree, roads,
        sessions)``, which is what lets snapshot recovery restore
        graphs lazily from the session deque alone.
        """
        state = self.new_state()
        for trajectory in sessions:
            self._account_append(state, trajectory)
        self._reassemble(state)
        return state

    # ------------------------------------------------------------------
    # deltas
    # ------------------------------------------------------------------
    def append_session(self, state: QRPGraphState, trajectory: Trajectory) -> QRPGraph:
        """Fold one newly completed session into the live graph."""
        new_pois, new_leaf = self._account_append(state, trajectory)
        if new_leaf:
            # the minimal subtree (and possibly its LCA root) moves
            self._reassemble(state)
        elif new_pois:
            self._extend_pois(state, new_pois)
        # else: repeat visits only — graph and masks are already exact
        return state.qrp

    def evict_session(self, state: QRPGraphState, trajectory: Trajectory) -> QRPGraph:
        """Un-account the oldest completed session (deque eviction).

        Raises :class:`StaleEvictionError` when ``trajectory`` is not
        the oldest accounted session — the caller falls back to a
        counted rebuild, so a bookkeeping bug degrades to O(history),
        never to a wrong graph.
        """
        seq = state.evict_seq
        removed = False
        order_dirty = False
        leaves_dirty = False
        for idx, visit in enumerate(trajectory.visits):
            poi = visit.poi_id
            occurrences = state.occurrences.get(poi)
            if not occurrences or occurrences[0] != (seq, idx):
                raise StaleEvictionError(
                    f"eviction of session seq {seq} does not match accounted "
                    f"occurrences for poi {poi}"
                )
            occurrences.popleft()
            if occurrences:
                state.first[poi] = occurrences[0]
                order_dirty = True  # first occurrence moved; order may shift
            else:
                del state.occurrences[poi]
                del state.first[poi]
                removed = True
            leaf = self._leaf_of(poi)
            count = state.leaf_counts[leaf] - 1
            if count:
                state.leaf_counts[leaf] = count
            else:
                del state.leaf_counts[leaf]
                leaves_dirty = True
        state.evict_seq = seq + 1
        if removed or leaves_dirty:
            state.order = sorted(state.occurrences, key=state.first.__getitem__)
            self._reassemble(state)
        elif order_dirty:
            # occurrence keys are unique, so sorting by first occurrence
            # reproduces first-visit order of the remaining history exactly
            order = sorted(state.occurrences, key=state.first.__getitem__)
            if order != state.order:
                state.order = order
                self._reassemble(state)
        return state.qrp

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _account_append(
        self, state: QRPGraphState, trajectory: Trajectory
    ) -> Tuple[List[int], bool]:
        seq = state.next_seq
        state.next_seq = seq + 1
        new_pois: List[int] = []
        new_leaf = False
        for idx, visit in enumerate(trajectory.visits):
            poi = visit.poi_id
            occurrences = state.occurrences.get(poi)
            if occurrences is None:
                occurrences = state.occurrences[poi] = deque()
                state.first[poi] = (seq, idx)
                state.order.append(poi)
                new_pois.append(poi)
            occurrences.append((seq, idx))
            leaf = self._leaf_of(poi)
            count = state.leaf_counts.get(leaf, 0)
            if count == 0:
                new_leaf = True
            state.leaf_counts[leaf] = count + 1
        return new_pois, new_leaf

    def _extend_pois(self, state: QRPGraphState, new_pois: List[int]) -> None:
        """Append POI nodes to a structurally unchanged tile skeleton.

        The touched attention neighbourhoods are exactly the new rows/
        columns plus each new POI's leaf row: the old masks are copied
        into the top-left block and only the fresh contain slots are
        cleared — no re-derivation of untouched neighbourhoods.
        """
        old = state.qrp
        graph = HeteroGraph()
        graph.node_types = list(old.graph.node_types)
        graph.node_refs = list(old.graph.node_refs)
        graph._index_of = dict(old.graph._index_of)
        graph.edges = {kind: list(pairs) for kind, pairs in old.graph.edges.items()}
        poi_nodes = list(old.poi_nodes)
        poi_refs = list(old.poi_refs)
        n_old = old.graph.num_nodes
        n = n_old + len(new_pois)
        masks = {}
        for kind in EDGE_TYPES:
            mask = np.ones((n, n), dtype=bool)
            mask[:n_old, :n_old] = state.masks[kind]
            masks[kind] = mask
        contain = masks["contain"]
        for poi in new_pois:
            poi_index = graph.add_node("poi", poi)
            leaf_index = graph.index_of("tile", self._leaf_of(poi))
            graph.add_edge("contain", leaf_index, poi_index)
            poi_nodes.append(poi_index)
            poi_refs.append(poi)
            contain[poi_index, leaf_index] = False
            contain[leaf_index, poi_index] = False
        graph.validate()
        state.qrp = QRPGraph(
            graph=graph,
            tile_nodes=list(old.tile_nodes),
            tile_refs=list(old.tile_refs),
            poi_nodes=poi_nodes,
            poi_refs=poi_refs,
            leaf_tile_refs=set(old.leaf_tile_refs),
        )
        state.masks = masks

    def _reassemble(self, state: QRPGraphState) -> None:
        """Canonical assembly from the maintained order and leaf set.

        Mirrors ``build_qrp_graph`` step for step (sorted subtree
        tiles, branch edges, road edges over the leaf set, POIs in
        first-visit order) — but from O(unique) maintained indices, not
        the O(history) concatenated visit list.
        """
        if not state.order:
            state.qrp = _empty_qrp()
            state.masks = attention_masks(state.qrp)
            return
        leaf_set = set(state.leaf_counts)
        subtree_nodes, branch_edges = self.tree.minimal_subtree(leaf_set)
        graph = HeteroGraph()
        for tile_ref in sorted(subtree_nodes):
            graph.add_node("tile", tile_ref)
        for parent, child in branch_edges:
            graph.add_edge(
                "branch", graph.index_of("tile", parent), graph.index_of("tile", child)
            )
        for a in leaf_set:
            for b in self._road_by_first.get(a, ()):
                if b in leaf_set:
                    graph.add_edge(
                        "road", graph.index_of("tile", a), graph.index_of("tile", b)
                    )
        for poi in state.order:
            poi_index = graph.add_node("poi", poi)
            leaf_index = graph.index_of("tile", self._leaf_of(poi))
            graph.add_edge("contain", leaf_index, poi_index)
        graph.validate()
        tile_nodes = graph.nodes_of_type("tile")
        poi_nodes = graph.nodes_of_type("poi")
        state.qrp = QRPGraph(
            graph=graph,
            tile_nodes=tile_nodes,
            tile_refs=[graph.node_refs[i] for i in tile_nodes],
            poi_nodes=poi_nodes,
            poi_refs=[graph.node_refs[i] for i in poi_nodes],
            leaf_tile_refs=leaf_set,
        )
        state.masks = attention_masks(state.qrp)


def update_qrp_graph(state: QRPGraphState, new_trajectory: Trajectory) -> QRPGraph:
    """Fold one newly completed session into a live graph state.

    The O(session) counterpart of rebuilding via
    :func:`~repro.graphs.qrp.build_qrp_graph`; the returned graph is
    identical (:func:`graphs_equal`) to a full rebuild of the same
    sessions.
    """
    return state.maintainer.append_session(state, new_trajectory)


def evict_qrp_graph(state: QRPGraphState, oldest_trajectory: Trajectory) -> QRPGraph:
    """Un-account the oldest session; see
    :meth:`QRPGraphMaintainer.evict_session`."""
    return state.maintainer.evict_session(state, oldest_trajectory)
