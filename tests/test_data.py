"""Tests for POI/check-in records, trajectory windowing and splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Checkin,
    CheckinDataset,
    POISet,
    Visit,
    concat_history,
    samples_from_trajectories,
    split_into_trajectories,
    split_samples,
    time_slot,
)
from repro.data.trajectory import Trajectory


class TestPOISet:
    def _pois(self):
        xy = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        return POISet(xy, np.array([0, 1, 1]), category_names=["a", "b"])

    def test_basic_access(self):
        pois = self._pois()
        assert len(pois) == 3
        assert pois.num_categories == 2
        assert pois[2].category == 1
        assert pois.location_of(1) == (1.0, 0.0)

    def test_nearest(self):
        pois = self._pois()
        assert pois.nearest(0.1, 0.0, k=2) == [0, 1]
        assert pois.nearest(0.1, 0.0, k=1, exclude=0) == [1]

    def test_category_query(self):
        pois = self._pois()
        assert list(pois.pois_with_category(1)) == [1, 2]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            POISet(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            POISet(np.zeros((3, 2)), np.zeros(2))


class TestCheckins:
    def test_time_slot_half_hours(self):
        assert time_slot(0.0) == 0
        assert time_slot(0.6) == 1
        assert time_slot(23.9) == 47
        assert time_slot(24.5) == 1  # wraps daily

    def test_dataset_sorted_per_user(self):
        records = [Checkin(1, 0, 5.0), Checkin(1, 1, 2.0), Checkin(2, 2, 1.0)]
        ds = CheckinDataset(records)
        assert [r.timestamp for r in ds.of_user(1)] == [2.0, 5.0]
        assert ds.num_users == 2
        assert len(ds) == 3

    def test_visit_counts(self):
        ds = CheckinDataset([Checkin(1, 0, 1.0), Checkin(1, 0, 2.0), Checkin(1, 2, 3.0)])
        counts = ds.poi_visit_counts(4)
        assert list(counts) == [2, 0, 1, 0]


class TestTrajectorySplitting:
    def test_single_trajectory_no_gaps(self):
        records = [Checkin(1, i, float(i)) for i in range(5)]
        trajectories = split_into_trajectories(records, gap_hours=72.0)
        assert len(trajectories) == 1
        assert len(trajectories[0]) == 5

    def test_split_at_gap(self):
        records = [Checkin(1, 0, 0.0), Checkin(1, 1, 10.0), Checkin(1, 2, 100.0)]
        trajectories = split_into_trajectories(records, gap_hours=72.0)
        assert [len(t) for t in trajectories] == [2, 1]

    def test_exact_gap_splits(self):
        records = [Checkin(1, 0, 0.0), Checkin(1, 1, 72.0)]
        assert len(split_into_trajectories(records, gap_hours=72.0)) == 2

    def test_unsorted_raises(self):
        records = [Checkin(1, 0, 5.0), Checkin(1, 1, 2.0)]
        with pytest.raises(ValueError):
            split_into_trajectories(records)

    def test_mixed_users_raises(self):
        with pytest.raises(ValueError):
            split_into_trajectories([Checkin(1, 0, 0.0), Checkin(2, 1, 1.0)])

    def test_empty(self):
        assert split_into_trajectories([]) == []

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0, 500), min_size=1, max_size=40))
    def test_property_gaps_between_windows(self, times):
        times = sorted(times)
        records = [Checkin(7, i, t) for i, t in enumerate(times)]
        trajectories = split_into_trajectories(records, gap_hours=72.0)
        # windows are disjoint and ordered, with >= 72h between them
        for a, b in zip(trajectories, trajectories[1:]):
            assert b.start - a.end >= 72.0
        # no internal gap >= 72h
        for t in trajectories:
            stamps = t.timestamps
            for x, y in zip(stamps, stamps[1:]):
                assert y - x < 72.0
        assert sum(len(t) for t in trajectories) == len(times)


class TestSamples:
    def _trajectories(self):
        t1 = Trajectory(1, [Visit(0, 0.0), Visit(1, 1.0), Visit(2, 2.0)])
        t2 = Trajectory(1, [Visit(3, 100.0), Visit(4, 101.0)])
        return [t1, t2]

    def test_all_positions(self):
        samples = samples_from_trajectories(self._trajectories())
        # t1 yields targets at positions 1,2; t2 yields target at position 1
        assert len(samples) == 3
        assert samples[0].target.poi_id == 1
        assert samples[0].prefix_poi_ids == [0]

    def test_last_only(self):
        samples = samples_from_trajectories(self._trajectories(), last_only=True)
        assert len(samples) == 2
        assert samples[0].target.poi_id == 2

    def test_history_is_earlier_trajectories(self):
        samples = samples_from_trajectories(self._trajectories())
        later = [s for s in samples if s.history]
        assert later and all(s.history[0].poi_ids == [0, 1, 2] for s in later)

    def test_history_key_distinguishes_trajectories(self):
        samples = samples_from_trajectories(self._trajectories())
        keys = {s.history_key for s in samples}
        assert keys == {(1, 0), (1, 1)}

    def test_concat_history_time_ordered(self):
        t2 = Trajectory(1, [Visit(3, 100.0)])
        t1 = Trajectory(1, [Visit(0, 0.0)])
        visits = concat_history([t2, t1])
        assert [v.poi_id for v in visits] == [0, 3]


class TestSplitSamples:
    def _samples(self, n_trajectories=30):
        trajectories = [
            Trajectory(1, [Visit(i, i * 200.0), Visit(i + 1, i * 200.0 + 1), Visit(i + 2, i * 200.0 + 2)])
            for i in range(n_trajectories)
        ]
        return samples_from_trajectories(trajectories)

    def test_fractions_roughly_respected(self):
        samples = self._samples()
        splits = split_samples(samples, seed=0)
        train, valid, test = splits.sizes()
        assert train + valid + test == len(samples)
        assert train > valid and train > test

    def test_trajectory_level_no_leakage(self):
        """All samples of one trajectory land in the same split."""
        samples = self._samples()
        splits = split_samples(samples, seed=1)
        seen = {}
        for name, bucket in zip(("train", "valid", "test"), splits):
            for s in bucket:
                assert seen.setdefault(s.history_key, name) == name

    def test_deterministic_given_seed(self):
        samples = self._samples()
        a = split_samples(samples, seed=5)
        b = split_samples(samples, seed=5)
        assert [s.target.poi_id for s in a.test] == [s.target.poi_id for s in b.test]

    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            split_samples(self._samples(), fractions=(0.5, 0.2, 0.2))
