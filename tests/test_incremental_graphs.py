"""Differential fuzz harness for incremental QR-P graph maintenance.

The correctness story of the incremental hot path is equivalence: after
*every* event of *any* stream, the O(session)-maintained graph must be
node-, edge-, and attention-identical to a from-scratch
``build_qrp_graph`` rebuild of the same completed sessions.  This
module proves it three ways:

* a seeded random check-in stream generator (gaps straddling the 72h
  rule, forced rolls at ``max_session_visits``, deque evictions,
  repeat POIs, length-1 sessions) drives 200+ fast differential
  streams — plus a long randomized soak behind the ``slow`` marker;
* the serve path's packed block-diagonal HGAT is identity-tested
  against the per-graph path (mixed graph sizes, empty-graph users,
  ``MAX_PACKED_NODES`` overflow, concurrent ``InferenceServer`` load);
* snapshot/recovery carries the incremental graphs: a restored store
  fed the same tail converges to graphs identical to a store that
  never went down.
"""

import threading

import numpy as np
import pytest

import repro.core.model as model_module
from repro.autograd import Tensor
from repro.cluster.snapshot import load_snapshot, save_snapshot
from repro.core import TSPNRA, TSPNRAConfig
from repro.core.hgat import HGATEncoder
from repro.data import build_dataset, make_samples
from repro.data.trajectory import Trajectory, Visit
from repro.geo import BoundingBox
from repro.graphs import (
    EDGE_TYPES,
    QRPGraphMaintainer,
    StaleEvictionError,
    attention_masks,
    build_qrp_graph,
    evict_qrp_graph,
    graphs_equal,
    update_qrp_graph,
)
from repro.serve import InferenceServer, Predictor, ServerConfig
from repro.spatial import RegionQuadTree
from repro.stream import (
    CheckinEvent,
    StoreConfig,
    StreamIngest,
    UserStateStore,
    compare_replay,
    events_from_checkins,
    stream_history_key,
)
from repro.utils import spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)
GAP = 72.0
BOX = BoundingBox(0.0, 0.0, 10.0, 10.0)
NUM_POIS = 80

#: fast-suite differential stream count (acceptance: >= 200)
N_FAST_STREAMS = 208


# ----------------------------------------------------------------------
# synthetic world + stream generator
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    """A quad-tree + road adjacency rich enough to move under streams."""
    rng = np.random.default_rng(20240808)
    points = rng.uniform(0.2, 9.8, size=(NUM_POIS, 2))
    tree = RegionQuadTree.build(BOX, points, max_depth=5, max_pois=8)
    leaves = tree.leaves()
    adjacency = {(min(a, b), max(a, b)) for a, b in zip(leaves, leaves[1:])}
    adjacency |= {(min(a, b), max(a, b)) for a, b in zip(leaves, leaves[2:])}
    return tree, adjacency


def _stream(rng, user, n_events, start=0.0, pool_size=8):
    """Seeded per-user stream exercising every session-boundary case.

    Gap choices deliberately straddle the 72h rule (71.9 stays in
    session, exactly 72.0 rolls); a large-gap tail run produces
    length-1 sessions; a small POI pool forces repeat visits so the
    first-visit ordering (and its eviction-time reshuffles) is
    exercised hard.
    """
    pool = rng.choice(NUM_POIS, size=pool_size, replace=False)
    gaps = np.array([0.2, 1.0, 12.0, 71.9, 72.0, 100.0, 500.0])
    probabilities = np.array([0.35, 0.2, 0.1, 0.05, 0.15, 0.1, 0.05])
    t = float(start)
    for _ in range(n_events):
        t += float(rng.choice(gaps, p=probabilities))
        if rng.random() < 0.8:
            poi = int(pool[rng.integers(len(pool))])
        else:
            poi = int(rng.integers(NUM_POIS))
        yield CheckinEvent(user_id=user, poi_id=poi, timestamp=t)


def _interleave(rng, streams):
    """Merge per-user streams round-robin-ish (per-user order intact)."""
    streams = [list(s) for s in streams]
    merged = []
    while any(streams):
        index = int(rng.integers(len(streams)))
        if streams[index]:
            merged.append(streams[index].pop(0))
    return merged


def _assert_graph_matches(tree, adjacency, snapshot, context):
    """The live graph == a from-scratch rebuild: nodes, edges, masks."""
    assert snapshot.graph is not None, context
    qrp, masks = snapshot.graph
    expected = build_qrp_graph(tree, adjacency, snapshot.history)
    assert graphs_equal(qrp, expected), context
    if qrp.is_empty:
        assert masks == {}, context
    else:
        expected_masks = attention_masks(expected)
        assert set(masks) == set(expected_masks), context
        for kind, mask in expected_masks.items():
            assert np.array_equal(masks[kind], mask), (context, kind)


def _fuzz_one_stream(tree, adjacency, seed, users=2, events_per_user=12):
    """One differential stream; returns the store's final stats."""
    rng = np.random.default_rng(seed)
    config = StoreConfig(
        num_shards=2,
        max_sessions=int(rng.integers(1, 5)),
        max_session_visits=int(rng.integers(2, 6)),
        gap_hours=GAP,
    )
    store = UserStateStore(config)
    assert store.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
    events = _interleave(
        rng,
        [
            _stream(rng, user, events_per_user, start=float(rng.uniform(0, 50)))
            for user in range(users)
        ],
    )
    for index, event in enumerate(events):
        store.append(event)
        snapshot = store.snapshot(event.user_id)
        _assert_graph_matches(tree, adjacency, snapshot, (seed, index))
    return store.stats()


# ----------------------------------------------------------------------
# the differential fuzz harness
# ----------------------------------------------------------------------
class TestDifferentialFuzz:
    def test_incremental_equals_rebuild_across_seeded_streams(self, world):
        """>= 200 seeded streams, graph identity checked after EVERY event.

        The aggregate coverage asserts prove the generator actually hit
        the hard cases (forced rolls, deque evictions) and that no
        stream needed the counted fallback rebuild.
        """
        tree, adjacency = world
        totals = {"sessions_rolled": 0, "forced_rolls": 0, "graph_evictions": 0}
        for seed in range(N_FAST_STREAMS):
            stats = _fuzz_one_stream(tree, adjacency, 1000 + seed)
            assert stats["graph_rebuilds"] == 0, seed
            assert stats["graph_updates"] == stats["sessions_rolled"], seed
            for key in totals:
                totals[key] += stats[key]
        assert totals["sessions_rolled"] > N_FAST_STREAMS  # rollovers everywhere
        assert totals["forced_rolls"] > 0  # max_session_visits rule fired
        assert totals["graph_evictions"] > 0  # deque bound fired

    def test_length_one_sessions_and_repeats(self, world):
        """A pure big-gap stream: every session is a single visit."""
        tree, adjacency = world
        store = UserStateStore(StoreConfig(num_shards=1, max_sessions=3))
        assert store.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
        pois = [4, 9, 4, 4, 9, 2, 4]  # heavy repeats across sessions
        for index, poi in enumerate(pois):
            store.append(CheckinEvent(user_id=1, poi_id=poi, timestamp=index * 100.0))
            _assert_graph_matches(tree, adjacency, store.snapshot(1), index)
        stats = store.stats()
        assert stats["graph_evictions"] > 0
        assert stats["graph_rebuilds"] == 0

    @pytest.mark.slow
    def test_long_randomized_soak(self, world):
        """Longer streams, more users, wider config space."""
        tree, adjacency = world
        for seed in range(48):
            rng = np.random.default_rng(77_000 + seed)
            config = StoreConfig(
                num_shards=int(rng.integers(1, 5)),
                max_sessions=int(rng.integers(1, 8)),
                max_session_visits=int(rng.integers(2, 10)),
                gap_hours=GAP,
            )
            store = UserStateStore(config)
            assert store.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
            events = _interleave(
                rng,
                [
                    _stream(
                        rng,
                        user,
                        120,
                        start=float(rng.uniform(0, 50)),
                        pool_size=int(rng.integers(3, 16)),
                    )
                    for user in range(3)
                ],
            )
            for index, event in enumerate(events):
                store.append(event)
                snapshot = store.snapshot(event.user_id)
                _assert_graph_matches(tree, adjacency, snapshot, (seed, index))
            assert store.stats()["graph_rebuilds"] == 0, seed


# ----------------------------------------------------------------------
# the incremental API surface
# ----------------------------------------------------------------------
def _sessions(pois_per_session, user=1, start=0.0):
    sessions = []
    t = start
    for pois in pois_per_session:
        visits = []
        for poi in pois:
            visits.append(Visit(poi_id=poi, timestamp=t))
            t += 1.0
        sessions.append(Trajectory(user_id=user, visits=visits))
        t += 100.0
    return sessions


class TestIncrementalAPI:
    def test_update_matches_build_at_every_prefix(self, world):
        tree, adjacency = world
        sessions = _sessions([[1, 5, 1], [9, 5], [33], [1, 40, 41, 9]])
        maintainer = QRPGraphMaintainer(tree, adjacency)
        state = maintainer.new_state()
        for count, session in enumerate(sessions, start=1):
            qrp = update_qrp_graph(state, session)
            expected = build_qrp_graph(tree, adjacency, sessions[:count])
            assert graphs_equal(qrp, expected)
            for kind in EDGE_TYPES:
                assert np.array_equal(
                    state.masks[kind], attention_masks(expected)[kind]
                )

    def test_evict_matches_build_at_every_suffix(self, world):
        tree, adjacency = world
        sessions = _sessions([[1, 5], [9, 1], [33, 9], [40, 5, 1]])
        maintainer = QRPGraphMaintainer(tree, adjacency)
        state = maintainer.build_state(sessions)
        for dropped in range(1, len(sessions)):
            qrp = evict_qrp_graph(state, sessions[dropped - 1])
            expected = build_qrp_graph(tree, adjacency, sessions[dropped:])
            assert graphs_equal(qrp, expected), dropped

    def test_eviction_reorders_first_visit_order(self, world):
        """S0=[A], S1=[B], S2=[A]: evicting S0 flips POI order to B, A."""
        tree, adjacency = world
        a, b = 4, 9
        sessions = _sessions([[a], [b], [a]])
        maintainer = QRPGraphMaintainer(tree, adjacency)
        state = maintainer.build_state(sessions)
        assert state.qrp.poi_refs == [a, b]
        evict_qrp_graph(state, sessions[0])
        assert state.qrp.poi_refs == [b, a]
        assert graphs_equal(
            state.qrp, build_qrp_graph(tree, adjacency, sessions[1:])
        )

    def test_no_structural_change_reuses_graph_object(self, world):
        """Repeat-only sessions leave the graph object untouched."""
        tree, adjacency = world
        maintainer = QRPGraphMaintainer(tree, adjacency)
        state = maintainer.new_state()
        update_qrp_graph(state, _sessions([[3, 7]])[0])
        before = state.qrp
        update_qrp_graph(state, _sessions([[7, 3, 3]], start=500.0)[0])
        assert state.qrp is before

    def test_stale_eviction_raises(self, world):
        tree, adjacency = world
        maintainer = QRPGraphMaintainer(tree, adjacency)
        sessions = _sessions([[1, 5], [9]])
        state = maintainer.build_state(sessions)
        with pytest.raises(StaleEvictionError):
            evict_qrp_graph(state, sessions[1])  # not the oldest

    def test_attention_masks_match_per_edge_reference(self, world):
        tree, adjacency = world
        qrp = build_qrp_graph(tree, adjacency, _sessions([[1, 5, 9], [33, 1]]))
        masks = attention_masks(qrp)
        n = qrp.graph.num_nodes
        for kind in EDGE_TYPES:
            reference = np.ones((n, n), dtype=bool)
            for src, dst in qrp.graph.edges[kind]:
                reference[dst, src] = False
            assert np.array_equal(masks[kind], reference)
        via_hgat = HGATEncoder.build_masks(qrp)
        assert all(np.array_equal(masks[k], via_hgat[k]) for k in EDGE_TYPES)

    def test_hgat_forward_identical_on_incremental_graph(self, world):
        """Attention-identity in the strongest sense: same HGAT output."""
        tree, adjacency = world
        sessions = _sessions([[1, 5], [9, 33], [40, 1, 9]])
        maintainer = QRPGraphMaintainer(tree, adjacency)
        state = maintainer.new_state()
        for session in sessions:
            update_qrp_graph(state, session)
        rebuilt = build_qrp_graph(tree, adjacency, sessions)
        encoder = HGATEncoder(dim=8, num_layers=2, rng=spawn(3))
        h0 = Tensor(spawn(4).normal(size=(state.qrp.graph.num_nodes, 8)))
        incremental = encoder(state.qrp, h0, masks=state.masks)
        full = encoder(rebuilt, h0)
        assert np.array_equal(incremental.data, full.data)


# ----------------------------------------------------------------------
# store integration: lazy materialisation, counted fallbacks, pushes
# ----------------------------------------------------------------------
class TestStoreIntegration:
    def test_attach_after_traffic_counts_one_rebuild(self, world):
        """Users predating the attach pay one lazy counted build."""
        tree, adjacency = world
        store = UserStateStore(StoreConfig(num_shards=1))
        events = list(_stream(np.random.default_rng(2), 1, 8))
        for event in events[:4]:
            store.append(event)
        assert store.stats()["graph_updates"] == 0  # nothing attached yet
        assert store.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
        rolled = False
        for index, event in enumerate(events[4:]):
            result = store.append(event)
            rolled = rolled or result.session_rolled
            if result.session_rolled:
                _assert_graph_matches(tree, adjacency, store.snapshot(1), index)
        stats = store.stats()
        if rolled:
            assert stats["graph_rebuilds"] == 1  # the lazy materialisation
            assert stats["graph_updates"] + 1 == stats["sessions_rolled"]

    def test_second_maintainer_rejected(self, world):
        tree, adjacency = world
        store = UserStateStore(StoreConfig(num_shards=1))
        first = QRPGraphMaintainer(tree, adjacency)
        assert store.attach_graph_maintainer(first)
        assert store.attach_graph_maintainer(first)  # idempotent
        assert not store.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
        assert store.graph_maintainer is first
        assert not store.attach_graph_maintainer(None)

    def test_append_result_carries_replacement_entry(self, world):
        tree, adjacency = world
        store = UserStateStore(StoreConfig(num_shards=1))
        assert store.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
        store.append(CheckinEvent(user_id=3, poi_id=5, timestamp=0.0))
        result = store.append(CheckinEvent(user_id=3, poi_id=9, timestamp=100.0))
        assert result.session_rolled
        assert result.invalidated_key == stream_history_key(3, 0)
        assert result.history_key == stream_history_key(3, result.state_version)
        qrp, masks = result.graph_entry
        expected = build_qrp_graph(tree, adjacency, store.snapshot(3).history)
        assert graphs_equal(qrp, expected)
        assert set(masks) == set(EDGE_TYPES)

    def test_no_maintainer_means_no_entry(self):
        store = UserStateStore(StoreConfig(num_shards=1))
        store.append(CheckinEvent(user_id=3, poi_id=5, timestamp=0.0))
        result = store.append(CheckinEvent(user_id=3, poi_id=9, timestamp=100.0))
        assert result.session_rolled
        assert result.graph_entry is None
        assert result.history_key == stream_history_key(3, result.state_version)
        assert store.snapshot(3).graph is None


# ----------------------------------------------------------------------
# snapshot / recovery: a restored shard converges to identical graphs
# ----------------------------------------------------------------------
class TestRecoveryGraphIdentity:
    def test_recovered_store_graphs_match_never_crashed_live(self, world, tmp_path):
        """Snapshot mid-session, restore, continue: graphs identical."""
        tree, adjacency = world
        config = StoreConfig(num_shards=2, max_sessions=3, max_session_visits=4)
        live = UserStateStore(config)
        assert live.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
        rng = np.random.default_rng(5)
        events = _interleave(
            rng, [_stream(rng, user, 30, start=user * 3.0) for user in (1, 2)]
        )
        half = len(events) // 2
        for event in events[:half]:
            live.append(event)
        assert live.stats()["open_visits"] > 0  # the cut lands mid-session
        path = save_snapshot(live, tmp_path, last_seq=half)

        recovered = load_snapshot(path).store
        assert recovered.attach_graph_maintainer(QRPGraphMaintainer(tree, adjacency))
        for event in events[half:]:
            live.append(event)
            recovered.append(event)

        post_restore_rolls = 0
        for user in live.users():
            ours, theirs = live.snapshot(user), recovered.snapshot(user)
            assert ours.state_version == theirs.state_version
            assert ours.history_version == theirs.history_version
            assert ours.history == theirs.history and ours.prefix == theirs.prefix
            _assert_graph_matches(tree, adjacency, ours, user)
            if theirs.graph is not None:  # materialised on a post-restore roll
                post_restore_rolls += 1
                _assert_graph_matches(tree, adjacency, theirs, user)
                assert graphs_equal(ours.graph[0], theirs.graph[0])
        assert post_restore_rolls > 0  # the identity check actually ran
        stats = recovered.stats()
        assert stats["graph_rebuilds"] >= 1  # lazy materialisation, counted
        # pre-crash lifetime counters survived via the snapshot meta
        assert stats["graph_updates"] >= live.stats()["graph_updates"] - stats["graph_rebuilds"]


# ----------------------------------------------------------------------
# serve path: packed block-diagonal HGAT == per-graph path
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_dataset():
    return build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)


@pytest.fixture(scope="module")
def model(tiny_dataset):
    """Untrained TSPN-RA: identity checks don't need trained weights."""
    model = TSPNRA.from_dataset(tiny_dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    model.eval()
    return model


@pytest.fixture(scope="module")
def mixed_batch(tiny_dataset):
    """Heterogeneous graph sizes + empty-graph (no-history) users."""
    samples = make_samples(tiny_dataset, last_only=False)
    samples.sort(key=lambda s: len(s.history))
    batch = samples[:: max(1, len(samples) // 14)][:14]
    empty = [s for s in samples if not s.history]
    assert empty, "need cold-start users in the batch"
    return batch + empty[:2]


class TestPackedServeIdentity:
    def test_packed_batch_matches_per_graph_path(self, model, mixed_batch):
        shared = model.compute_embeddings()
        model.clear_graph_cache()
        batched = model.predict_batch(mixed_batch, *shared)
        for sample, got in zip(mixed_batch, batched):
            want = model.predict(sample, *shared)
            assert got.ranked_pois == want.ranked_pois, sample.history_key
            assert got.ranked_tiles == want.ranked_tiles, sample.history_key

    def test_pack_cap_overflow_falls_back_identically(
        self, model, mixed_batch, monkeypatch
    ):
        """A tiny MAX_PACKED_NODES forces pack splits + solo overflow
        graphs; ranked lists must not move."""
        shared = model.compute_embeddings()
        reference = model.predict_batch(mixed_batch, *shared)
        monkeypatch.setattr(model_module, "MAX_PACKED_NODES", 8)
        capped = model.predict_batch(mixed_batch, *shared)
        for want, got in zip(reference, capped):
            assert got.ranked_pois == want.ranked_pois
            assert got.ranked_tiles == want.ranked_tiles

    def test_packed_identity_under_concurrent_server_load(
        self, model, tiny_dataset, mixed_batch
    ):
        shared = model.compute_embeddings()
        expected = [model.predict(s, *shared) for s in mixed_batch]
        config = ServerConfig(workers=2, max_batch_size=8, max_wait_ms=2, compile=False)
        with InferenceServer(model, config=config, dataset=tiny_dataset) as server:
            results = [None] * len(mixed_batch)
            errors = []

            def drive(indices):
                try:
                    for i in indices:
                        results[i] = server.predict(mixed_batch[i])
                except Exception as error:  # pragma: no cover - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=drive, args=(range(lane, len(mixed_batch), 4),))
                for lane in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        for want, got in zip(expected, results):
            assert got.ranked_pois == want.ranked_pois


# ----------------------------------------------------------------------
# end-to-end: pushed entries serve identical ranked lists
# ----------------------------------------------------------------------
class TestIngestPushes:
    def test_rollover_pushes_entry_that_matches_rebuild(self, model):
        predictor = Predictor(model, graph_cache_size=64, compile=False)
        ingest = StreamIngest(UserStateStore(StoreConfig(num_shards=1)))
        ingest.register_predictor(predictor)
        ingest.ingest(CheckinEvent(user_id=11, poi_id=3, timestamp=0.0))
        result = ingest.ingest(CheckinEvent(user_id=11, poi_id=5, timestamp=100.0))
        assert result.session_rolled
        entry = predictor.graph_cache.get(result.history_key)
        assert entry is not None, "rollover should push the fresh entry"
        snapshot = ingest.store.snapshot(11)
        expected = model.tile_system.build_graph(snapshot.history)
        assert graphs_equal(entry[0], expected)
        stats = ingest.stats()
        assert stats["graph_pushes"] == 1
        assert stats["push_caches"] == 1

    def test_drop_edge_ablation_opts_out_of_pushes(self, tiny_dataset):
        ablated = TSPNRA.from_dataset(
            tiny_dataset,
            TSPNRAConfig(drop_edge_type="road", **CFG),
            rng=spawn(1),
        )
        ablated.eval()
        assert ablated.stream_graph_maintainer() is None
        predictor = Predictor(ablated, graph_cache_size=16, compile=False)
        ingest = StreamIngest(UserStateStore(StoreConfig(num_shards=1)))
        ingest.register_predictor(predictor)
        ingest.ingest(CheckinEvent(user_id=1, poi_id=3, timestamp=0.0))
        result = ingest.ingest(CheckinEvent(user_id=1, poi_id=5, timestamp=100.0))
        assert result.session_rolled and result.graph_entry is None
        stats = ingest.stats()
        assert stats["push_caches"] == 0 and stats["graph_pushes"] == 0

    def test_replay_legs_identical_with_and_without_pushes(self, model, tiny_dataset):
        events = events_from_checkins(tiny_dataset.checkins)
        predictor = Predictor(model, graph_cache_size=256, compile=False)
        comparison = compare_replay(predictor, events, max_events=220)
        assert comparison["ranked_lists_identical"]
        assert comparison["incremental_ranked_identical"]
        incremental_stats = comparison["incremental"]["ingest"]
        assert incremental_stats["graph_pushes"] > 0
        assert incremental_stats["graph_rebuilds"] == 0
