"""Plan cache: compiled inference plans keyed by shape bucket.

The serving glue for :mod:`repro.autograd.trace`: a thread-safe,
LRU-bounded cache of :class:`~repro.core.model.EncodePlan` entries
keyed ``(weights_version, dtype, shape_bucket)``.  One cache is shared
by every worker of an :class:`~repro.serve.server.InferenceServer` —
replicas share parameter objects, so a plan traced by one worker is
valid (and bit-identical) for all of them.

Fallback ladder, never an error:

* models without the plan surface (baselines) are detected up front
  (:func:`supports_plans`) and served eagerly;
* a bucket whose trace raises :class:`~repro.autograd.TraceError`
  (an op without a replay kernel) is remembered as eager-only, so the
  failed trace is paid once, not per batch;
* a ``weights_version`` move (optimiser step, hot reload) changes the
  key, so stale plans are never replayed; the cache also drops the old
  generation eagerly to free its baked constants.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence

import numpy as np

from ..autograd import TraceError
from ..obs import MetricsRegistry
from ..obs.tracing import current_trace

__all__ = ["PlanCache", "supports_plans"]

_PLAN_METHODS = ("plan_bucket", "build_encode_plan", "predict_batch_compiled")

# Cached marker for buckets whose trace failed: serve those eagerly
# without re-tracing every batch.
_EAGER = object()


def supports_plans(model) -> bool:
    """Whether ``model`` exposes the compiled-inference surface."""
    return all(callable(getattr(model, name, None)) for name in _PLAN_METHODS)


class PlanCache:
    """Thread-safe LRU of compiled encode plans for one model scope.

    ``dtype`` picks the replay precision for every plan this cache
    builds: ``float64`` replays are bit-identical to eager, ``float32``
    halves bandwidth within the documented tolerance.  ``maxsize``
    bounds the number of *live* plans (buckets beyond it re-trace on
    return — shape bucketing keeps the working set tiny in practice).
    """

    def __init__(
        self,
        maxsize: int = 32,
        dtype="float64",
        registry: Optional[MetricsRegistry] = None,
    ):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.dtype = np.dtype(dtype)
        self._lock = threading.RLock()
        self._entries: "OrderedDict" = OrderedDict()
        self._version: Optional[int] = None
        # counters are registry instruments (private registry when the
        # cache stands alone), exposed as read-only properties below so
        # the long-standing `cache.hits` surface keeps working
        self.registry = registry if registry is not None else MetricsRegistry()
        labels = {"dtype": str(self.dtype)}
        self._traces = self.registry.counter(
            "plan_cache_traces", "Plans traced (cold buckets)", labels
        )
        self._hits = self.registry.counter(
            "plan_cache_hits", "Plan replays served from cache", labels
        )
        self._misses = self.registry.counter(
            "plan_cache_misses", "Plan lookups that missed", labels
        )
        self._fallbacks = self.registry.counter(
            "plan_cache_fallbacks", "Batches served eagerly (untraceable bucket)", labels
        )
        self.registry.gauge(
            "plan_cache_plans", "Live compiled plans", labels, fn=self.__len__
        )

    # -- historical counter surface ------------------------------------
    @property
    def traces(self) -> int:
        return int(self._traces.value)

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def fallbacks(self) -> int:
        return int(self._fallbacks.value)

    @staticmethod
    def _tag_trace(outcome: str) -> None:
        """Stamp the plan outcome onto the active trace's open span.

        During a traced request the worker's inference span is open
        when the lookup runs, so ``plan=hit|miss|trace|fallback`` lands
        exactly where a reader of ``/debug/slow`` looks to explain an
        encode that took a retrace."""
        trace = current_trace()
        if trace is not None:
            trace.tag_current(plan=outcome)

    # ------------------------------------------------------------------
    # lookup / build
    # ------------------------------------------------------------------
    def entry_for(
        self,
        model,
        samples: Sequence,
        tile_embeddings,
        poi_embeddings,
        version: Optional[int] = None,
    ):
        """The cached (or freshly traced) plan for this batch's bucket.

        Returns ``None`` when the batch must be served eagerly.  Tracing
        happens outside the lock — a worker building a plan never stalls
        the others; if two workers race the same cold bucket, both trace
        and the second insert wins (identical plans, wasted work once).

        ``version`` is the ``weights_version`` the embedding tables were
        captured at (see ``Predictor.shared_state_versioned``); it keys
        the cache so a plan is only ever stored under the generation its
        baked constants came from.  When omitted, the live version is
        read here (callers passing freshly computed tables).
        """
        if not samples:
            return None
        if version is None:
            version = model.weights_version()
        bucket = model.plan_bucket(samples)
        key = (version, str(self.dtype), bucket)
        with self._lock:
            if self._version is None or version > self._version:
                # new weights generation: drop the old plans eagerly so
                # their baked constants don't linger until LRU pressure.
                # Only move forward — a caller holding pre-reload tables
                # must not wipe plans already traced for the new weights.
                self._entries.clear()
                self._version = version
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                if cached is _EAGER:
                    self._fallbacks.inc()
                    self._tag_trace("fallback")
                    return None
                self._hits.inc()
                self._tag_trace("hit")
                return cached
            self._misses.inc()
        self._tag_trace("miss")
        try:
            entry = model.build_encode_plan(
                samples, bucket, self.dtype, tile_embeddings, poi_embeddings
            )
        except TraceError:
            with self._lock:
                if version == self._version:
                    self._put(key, _EAGER)
            self._fallbacks.inc()
            self._tag_trace("fallback")
            return None
        # A reload landing during the build mixes the caller's tables
        # with post-reload live parameters: usable for this one batch
        # (eager would read the same mix), but never cached — the next
        # batch captures post-reload tables and re-traces cleanly.
        fresh = model.weights_version() == version
        with self._lock:
            if fresh and version == self._version:
                self._put(key, entry)
        self._traces.inc()
        self._tag_trace("trace")
        return entry

    def _put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every cached plan (next batches re-trace)."""
        with self._lock:
            self._entries.clear()
            self._version = None

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for v in self._entries.values() if v is not _EAGER)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """JSON-ready snapshot for the ``/stats`` ``plans`` section."""
        with self._lock:
            entries = list(self._entries.items())
            out: Dict = {
                "enabled": True,
                "dtype": str(self.dtype),
                "traces": self.traces,
                "hits": self.hits,
                "misses": self.misses,
                "fallbacks": self.fallbacks,
            }
        plans = []
        for (version, _dtype, bucket), entry in entries:
            if entry is _EAGER:
                plans.append(
                    {"bucket": list(bucket), "weights_version": version, "eager": True}
                )
                continue
            plans.append(
                {
                    "bucket": list(bucket),
                    "weights_version": version,
                    **entry.plan.describe(),
                }
            )
        out["plans"] = plans
        return out
