"""Tests for the ``repro.serve`` subsystem: the unified predictor
protocol, checkpoint round-trips, the serving facade and its caches."""

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, BaselineResult, make_baseline
from repro.core import TSPNRA, TSPNRAConfig
from repro.core.model import PredictionResult
from repro.data import build_dataset, make_samples, split_samples
from repro.eval import collect_ranks, evaluate
from repro.serve import (
    CHECKPOINT_FORMAT,
    Predictor,
    PredictorProtocol,
    PredictorResult,
    compare_throughput,
    load_checkpoint,
    read_checkpoint,
    save_checkpoint,
)
from repro.train import TrainConfig, Trainer
from repro.utils import LRUCache, spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)


@pytest.fixture(scope="module")
def tiny():
    dataset = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=0)
    locations = np.array(
        [dataset.spec.bbox.normalize(x, y) for x, y in dataset.city.pois.xy]
    )
    return dataset, splits, locations


@pytest.fixture(scope="module")
def trained_tspnra(tiny):
    """A briefly-trained TSPN-RA (non-trivial weights for round-trips)."""
    dataset, splits, _ = tiny
    model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    Trainer(
        model, TrainConfig(epochs=2, batch_size=8, lr=5e-3, max_train_samples=32, seed=0)
    ).fit(splits.train)
    return model


class TestUnifiedResult:
    def test_legacy_names_are_one_type(self):
        assert PredictionResult is PredictorResult
        assert BaselineResult is PredictorResult

    def test_tile_rank_requires_tiles(self):
        result = PredictorResult(ranked_pois=[3, 1, 2], target_poi=1)
        assert result.poi_rank == 2
        with pytest.raises(ValueError):
            result.tile_rank

    def test_top_k(self):
        result = PredictorResult(ranked_pois=[5, 4, 3, 2], target_poi=3)
        assert result.top_k(2) == [5, 4]


class TestAbsentTargetRank:
    """The rank-inflation fix: a missed target ranks past the universe."""

    def test_absent_target_ranks_past_universe(self):
        # 3 candidates out of a 500-POI universe: a miss must rank 501,
        # not 4 (which would count as a Recall@5 "hit").
        result = PredictorResult(ranked_pois=[3, 1, 2], target_poi=99, num_pois=500)
        assert result.poi_rank == 501

    def test_present_target_rank_unchanged_by_universe(self):
        with_universe = PredictorResult(ranked_pois=[3, 1, 2], target_poi=1, num_pois=500)
        without = PredictorResult(ranked_pois=[3, 1, 2], target_poi=1)
        assert with_universe.poi_rank == without.poi_rank == 2

    def test_legacy_fallback_without_universe(self):
        result = PredictorResult(ranked_pois=[3, 1, 2], target_poi=99)
        assert result.poi_rank == 4  # full-vocabulary convention

    def test_tspnra_missed_target_ranks_past_all_pois(self, tiny, trained_tspnra):
        from repro.data.trajectory import PredictionSample, Visit

        dataset, splits, _ = tiny
        model = trained_tspnra
        model.eval()
        base = splits.test[0]
        first = model.predict(base, k=1)
        outside = sorted(set(range(model.num_pois)) - set(first.ranked_pois))
        assert outside, "k=1 candidate set should not cover the full POI set"
        missed = PredictionSample(
            user_id=base.user_id,
            history=base.history,
            prefix=base.prefix,
            target=Visit(poi_id=outside[0], timestamp=base.prefix[-1].timestamp + 1.0),
            history_key=base.history_key,
        )
        result = model.predict(missed, k=1)
        assert result.target_poi not in result.ranked_pois
        assert result.poi_rank == model.num_pois + 1
        # strictly beyond any reportable K, even with a tiny candidate set
        assert result.poi_rank > len(result.ranked_pois)
        assert result.poi_rank > 20

    def test_in_candidate_targets_keep_metric_ranks(self, tiny, trained_tspnra):
        from repro.serve import rank_of_target

        _, splits, _ = tiny
        trained_tspnra.eval()
        results = trained_tspnra.predict_batch(splits.test[:12])
        hits = [r for r in results if r.target_poi in r.ranked_pois]
        assert hits, "fixture should produce at least one in-candidate target"
        for r in hits:
            # universe-aware rank == legacy rank whenever the target is found
            assert r.poi_rank == rank_of_target(r.ranked_pois, r.target_poi)


class TestProtocolConformance:
    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_baselines_conform(self, tiny, name):
        dataset, splits, locations = tiny
        model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(1))
        if name == "MC":
            model.fit(splits.train)
        model.eval()
        assert isinstance(model, PredictorProtocol)
        sample = splits.test[0]
        shared = model.compute_embeddings()
        assert shared == ()
        result = model.predict(sample, *shared)
        assert isinstance(result, PredictorResult)
        assert result.ranked_tiles is None
        assert model.top_k(sample, 5) == result.ranked_pois[:5]
        assert model.target_rank(sample) == result.poi_rank
        scores = model.score_candidates(sample, result.ranked_pois[:10])
        assert scores.shape == (10,)

    def test_tspnra_conforms(self, tiny):
        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(2))
        model.eval()
        assert isinstance(model, PredictorProtocol)
        sample = splits.test[0]
        result = model.predict(sample)
        assert result.ranked_tiles is not None and result.tile_rank >= 1
        # cosine scores are descending along the model's own ranking
        scores = model.score_candidates(sample, result.ranked_pois[:8])
        assert np.all(np.diff(scores) <= 1e-9)

    def test_predict_without_target(self, tiny):
        from repro.data.trajectory import PredictionSample

        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(3))
        model.eval()
        base = splits.test[0]
        live = PredictionSample(
            user_id=base.user_id,
            history=base.history,
            prefix=base.prefix,
            target=None,
            history_key=base.history_key,
        )
        result = model.predict(live)
        assert result.target_poi == -1
        assert result.ranked_pois == model.predict(base).ranked_pois


class TestCheckpoint:
    def test_tspnra_roundtrip_bit_identical(self, tiny, trained_tspnra, tmp_path):
        dataset, splits, _ = tiny
        test = splits.test[:20]
        before = evaluate(trained_tspnra, test)
        path = save_checkpoint(trained_tspnra, tmp_path / "tspnra.npz", dataset=dataset)
        loaded = load_checkpoint(path, dataset=dataset)
        assert loaded.model is not trained_tspnra
        assert evaluate(loaded.model, test) == before
        # ranks, not just aggregates, must match
        assert collect_ranks(loaded.model, test) == collect_ranks(trained_tspnra, test)

    def test_roundtrip_rebuilds_dataset_from_recipe(self, tiny, trained_tspnra, tmp_path):
        dataset, splits, _ = tiny
        path = save_checkpoint(trained_tspnra, tmp_path / "tspnra.npz", dataset=dataset)
        loaded = load_checkpoint(path)  # no dataset passed: rebuild
        assert loaded.dataset is not dataset
        assert loaded.meta["dataset"]["scale"] == 0.12
        test = splits.test[:10]
        assert collect_ranks(loaded.model, test) == collect_ranks(trained_tspnra, test)

    def test_markov_roundtrip(self, tiny, tmp_path):
        dataset, splits, locations = tiny
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        test = splits.test[:20]
        before = evaluate(mc, test)
        path = save_checkpoint(mc, tmp_path / "mc.npz", dataset=dataset)
        loaded = load_checkpoint(path, dataset=dataset)
        assert evaluate(loaded.model, test) == before

    def test_graph_flashback_extra_state_roundtrip(self, tiny, tmp_path):
        dataset, splits, locations = tiny
        model = make_baseline(
            "Graph-Flashback", len(dataset.city.pois), locations, dim=16, rng=spawn(4)
        )
        model.fit_transition_graph(splits.train)
        test = splits.test[:10]
        before = collect_ranks(model, test)
        path = save_checkpoint(model, tmp_path / "gfb.npz", dataset=dataset)
        loaded = load_checkpoint(path, dataset=dataset)
        np.testing.assert_array_equal(loaded.model._adjacency, model._adjacency)
        assert collect_ranks(loaded.model, test) == before

    def test_without_recipe_requires_dataset(self, tiny, trained_tspnra, tmp_path):
        _, _, _ = tiny
        path = save_checkpoint(trained_tspnra, tmp_path / "bare.npz")  # no dataset
        with pytest.raises(ValueError, match="dataset"):
            load_checkpoint(path)

    def test_poi_count_mismatch_rejected(self, tiny, tmp_path):
        dataset, splits, locations = tiny
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        path = save_checkpoint(mc, tmp_path / "mc.npz", dataset=dataset)
        other = build_dataset("nyc", seed=1, scale=0.14, imagery_resolution=16)
        with pytest.raises(ValueError, match="POIs"):
            load_checkpoint(path, dataset=other)

    @staticmethod
    def _rewrite_checkpoint(path, out, meta_patch=None, extra_arrays=None):
        """Re-write a checkpoint with a patched meta / extra arrays."""
        import json

        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(arrays.pop("__meta__").item())
        meta.update(meta_patch or {})
        arrays.update(extra_arrays or {})
        with open(out, "wb") as fh:
            np.savez_compressed(fh, __meta__=np.array(json.dumps(meta)), **arrays)
        return out

    def test_format_mismatch_names_found_and_supported(self, tiny, trained_tspnra, tmp_path):
        dataset, _, _ = tiny
        path = save_checkpoint(trained_tspnra, tmp_path / "v1.npz", dataset=dataset)
        future = self._rewrite_checkpoint(
            path, tmp_path / "v9.npz", meta_patch={"format": 9}
        )
        with pytest.raises(ValueError) as excinfo:
            read_checkpoint(future)
        message = str(excinfo.value)
        assert "format 9" in message
        assert f"supports format {CHECKPOINT_FORMAT}" in message
        with pytest.raises(ValueError, match="format 9"):
            load_checkpoint(future, dataset=dataset)

    def test_strict_false_tolerates_unknown_extra_keys(self, tiny, trained_tspnra, tmp_path):
        """Weights-only forward compat: a checkpoint written by a newer
        schema with additional ``extra::`` side-state still loads with
        ``strict=False`` (unknown keys ignored and reported), while the
        default strict load rejects it."""
        dataset, splits, _ = tiny
        path = save_checkpoint(trained_tspnra, tmp_path / "v1.npz", dataset=dataset)
        newer = self._rewrite_checkpoint(
            path,
            tmp_path / "newer.npz",
            extra_arrays={"extra::future_side_state": np.arange(4.0)},
        )
        with pytest.raises(KeyError, match="future_side_state"):
            load_checkpoint(newer, dataset=dataset)
        loaded = load_checkpoint(newer, dataset=dataset, strict=False)
        assert loaded.meta["ignored_extra"] == ["future_side_state"]
        test = splits.test[:10]
        assert collect_ranks(loaded.model, test) == collect_ranks(trained_tspnra, test)

    def test_strict_false_still_applies_known_extra(self, tiny, tmp_path):
        """strict=False must not drop extra state the model consumes."""
        dataset, splits, locations = tiny
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        path = save_checkpoint(mc, tmp_path / "mc.npz", dataset=dataset)
        loaded = load_checkpoint(path, dataset=dataset, strict=False)
        assert "ignored_extra" not in loaded.meta
        test = splits.test[:20]
        assert evaluate(loaded.model, test) == evaluate(mc, test)


class TestPredictor:
    def test_predict_batch_matches_per_sample_and_reuses_embeddings(
        self, tiny, trained_tspnra
    ):
        _, splits, _ = tiny
        model = trained_tspnra
        model.eval()  # the legacy loop below predicts on the bare model
        test = splits.test[:15]
        calls = {"n": 0}
        original = type(model).compute_embeddings

        def counting(self):
            calls["n"] += 1
            return original(self)

        model.compute_embeddings = counting.__get__(model)
        try:
            predictor = Predictor(model)
            batch_ranks = [r.poi_rank for r in predictor.predict_batch(test)]
            assert calls["n"] == 1  # shared tables computed exactly once
            predictor.predict_batch(test)
            assert calls["n"] == 1  # second batch is a cache hit
            assert predictor.stats.embedding_cache_hits == 1
            # the legacy per-sample loop recomputes shared state per call
            legacy_ranks = [model.predict(s).poi_rank for s in test]
            assert calls["n"] == 1 + len(test)
        finally:
            del model.compute_embeddings
        assert batch_ranks == legacy_ranks

    def test_weight_update_invalidates_cache(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        model = trained_tspnra
        predictor = Predictor(model)
        predictor.predict(splits.test[0])
        assert predictor.stats.embedding_refreshes == 1
        model.load_state_dict(model.state_dict())  # bumps weights_version
        predictor.predict(splits.test[0])
        assert predictor.stats.embedding_refreshes == 2

    def test_optimizer_step_bumps_weights_version(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("GRU", len(dataset.city.pois), locations, dim=16, rng=spawn(5))
        v0 = model.weights_version()
        Trainer(
            model, TrainConfig(epochs=1, batch_size=8, max_train_samples=8, seed=0)
        ).fit(splits.train)
        assert model.weights_version() > v0

    def test_graph_cache_is_lru_bounded(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        model = trained_tspnra
        predictor = Predictor(model, graph_cache_size=2)
        assert predictor.graph_cache is model._graph_cache
        users = {}
        for sample in splits.test:
            users.setdefault(sample.history_key, sample)
        distinct = list(users.values())[:5]
        assert len(distinct) >= 3, "fixture needs several distinct trajectories"
        predictor.predict_batch(distinct)
        assert len(model._graph_cache) <= 2

    def test_recommend_returns_k_valid_pois(self, tiny, trained_tspnra):
        dataset, splits, _ = tiny
        predictor = Predictor(trained_tspnra)
        sample = next(s for s in splits.test if s.history)
        recs = predictor.recommend(
            sample.prefix, history=sample.history, user_id=sample.user_id, k=5
        )
        assert len(recs) == 5
        assert all(0 <= p < len(dataset.city.pois) for p in recs)

    def test_stats_accumulate(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        predictor = Predictor(trained_tspnra)
        predictor.predict_batch(splits.test[:4])
        predictor.predict(splits.test[0])
        stats = predictor.stats
        assert stats.requests == 5
        assert stats.batches == 2
        assert stats.total_seconds > 0
        assert stats.throughput > 0
        assert stats.mean_latency_ms > 0
        assert stats.as_dict()["requests"] == 5

    def test_from_checkpoint(self, tiny, trained_tspnra, tmp_path):
        dataset, splits, _ = tiny
        trained_tspnra.eval()
        path = save_checkpoint(trained_tspnra, tmp_path / "m.npz", dataset=dataset)
        predictor = Predictor.from_checkpoint(path, dataset=dataset)
        assert predictor.dataset is dataset
        ranks = [r.poi_rank for r in predictor.predict_batch(splits.test[:5])]
        assert ranks == [trained_tspnra.predict(s).poi_rank for s in splits.test[:5]]

    def test_restores_prior_mode_and_migrates_warm_graphs(self, tiny):
        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(6))
        sample = next(s for s in splits.test if s.history)
        model.eval()
        model.predict(sample)  # warms the model's own graph cache
        warm = len(model._graph_cache)
        assert warm == 1
        model.train()
        predictor = Predictor(model, graph_cache_size=8)
        assert len(model._graph_cache) == warm  # warm entries migrated
        predictor.predict(sample)
        assert model.training is True  # prior mode restored after serving

    def test_unregistered_model_rejected_at_save_time(self, tiny, tmp_path):
        from repro.baselines.base import NextPOIBaseline

        dataset, _, _ = tiny
        rogue = NextPOIBaseline(len(dataset.city.pois), dim=16)
        with pytest.raises(ValueError, match="BASELINE_NAMES"):
            save_checkpoint(rogue, tmp_path / "rogue.npz", dataset=dataset)

    def test_compare_throughput_reports(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        report = compare_throughput(trained_tspnra, splits.test[:6])
        assert report["samples"] == 6
        assert report["cached_sps"] > 0 and report["uncached_sps"] > 0
        assert report["batched_sps"] > 0
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(report)

    def test_compare_throughput_restores_mode(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        trained_tspnra.train()
        try:
            compare_throughput(trained_tspnra, splits.test[:3])
            assert trained_tspnra.training is True
            trained_tspnra.eval()
            compare_throughput(trained_tspnra, splits.test[:3])
            assert trained_tspnra.training is False
        finally:
            trained_tspnra.eval()

    def test_recommend_cache_key_is_namespaced(self, tiny, trained_tspnra):
        """A live request must never alias a dataset (user, index) key."""
        _, splits, _ = tiny
        predictor = Predictor(trained_tspnra)
        sample = next(s for s in splits.test if s.history)
        predictor.recommend(
            sample.prefix, history=sample.history, user_id=sample.user_id, k=3
        )
        serve_keys = [
            key
            for key, _ in trained_tspnra._graph_cache.items()
            if isinstance(key, tuple) and key and key[0] == "serve"
        ]
        assert serve_keys, "recommend() should cache under the serve namespace"
        assert all(len(key) == 3 for key in serve_keys)
        # dataset keys are (user, index) 2-tuples: disjoint by shape
        assert not any(len(key) == 2 for key in serve_keys)

    def test_stats_latency_percentiles(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        predictor = Predictor(trained_tspnra)
        for lo in range(0, 12, 4):
            predictor.predict_batch(splits.test[lo : lo + 4])
        stats = predictor.stats
        # latency lives in a fixed-bucket histogram: O(buckets) memory,
        # every batch counted, no unbounded per-batch list
        assert stats.latency.count == 3
        assert stats.latency.sum == pytest.approx(stats.total_seconds)
        pct = stats.latency_percentiles()
        assert pct["p50_ms"] > 0
        assert pct["p50_ms"] <= pct["p95_ms"] <= pct["p99_ms"]
        as_dict = stats.as_dict()
        assert "batch_seconds" not in as_dict
        assert as_dict["p99_ms"] == pct["p99_ms"]


class TestBatchedEquivalence:
    """predict_batch must reproduce the per-sample loop exactly."""

    def _edge_case_batch(self, splits):
        """Mixed batch: empty history, length-1 prefix, long prefixes,
        mixed lengths, and a target-less serving sample."""
        from repro.data.trajectory import PredictionSample

        batch = list(splits.test[:10])
        with_history = next(s for s in splits.test if s.history)
        no_history = next((s for s in splits.test if not s.history), None)
        if no_history is None:  # synthesise one: no trajectories, no QR-P graph
            no_history = PredictionSample(
                user_id=with_history.user_id,
                history=[],
                prefix=with_history.prefix,
                target=with_history.target,
                history_key=(with_history.user_id, -1),
            )
        length_one = PredictionSample(
            user_id=with_history.user_id,
            history=with_history.history,
            prefix=with_history.prefix[:1],
            target=with_history.target,
            history_key=with_history.history_key,
        )
        target_less = PredictionSample(
            user_id=with_history.user_id,
            history=with_history.history,
            prefix=with_history.prefix,
            target=None,
            history_key=with_history.history_key,
        )
        batch += [no_history, length_one, target_less]
        assert len({len(s.prefix) for s in batch}) > 1, "batch must mix lengths"
        return batch

    def test_tspnra_batch_matches_per_sample(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        model = trained_tspnra
        model.eval()
        batch = self._edge_case_batch(splits)
        shared = model.compute_embeddings()
        per_sample = [model.predict(s, *shared) for s in batch]
        batched = model.predict_batch(batch, *shared)
        for single, multi in zip(per_sample, batched):
            assert multi.ranked_pois == single.ranked_pois
            assert multi.ranked_tiles == single.ranked_tiles
            assert multi.target_poi == single.target_poi
            assert multi.poi_rank == single.poi_rank
            assert multi.num_pois == model.num_pois

    def test_untrained_tspnra_batch_matches_per_sample(self, tiny):
        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(11))
        model.eval()
        batch = self._edge_case_batch(splits)
        per_sample = [model.predict(s) for s in batch]
        batched = model.predict_batch(batch)
        assert [r.ranked_pois for r in batched] == [r.ranked_pois for r in per_sample]
        assert [r.ranked_tiles for r in batched] == [r.ranked_tiles for r in per_sample]

    def test_empty_batch(self, tiny, trained_tspnra):
        assert trained_tspnra.predict_batch([]) == []

    @pytest.mark.parametrize("name", ["GRU", "MC", "HMT-GRN", "STAN"])
    def test_baseline_batch_matches_per_sample(self, tiny, name):
        dataset, splits, locations = tiny
        model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(12))
        if name == "MC":
            model.fit(splits.train)
        model.eval()
        batch = splits.test[:10]
        per_sample = [model.predict(s) for s in batch]
        batched = model.predict_batch(batch)
        assert [r.ranked_pois for r in batched] == [r.ranked_pois for r in per_sample]
        assert all(r.num_pois == len(dataset.city.pois) for r in batched)

    def test_batched_paths_reject_empty_prefixes(self, tiny, trained_tspnra):
        """Per-sample scoring fails on an empty prefix; batched must too,
        not silently rank from pad-token states."""
        from repro.data.trajectory import PredictionSample

        dataset, splits, locations = tiny
        base = splits.test[0]
        empty = PredictionSample(
            user_id=base.user_id,
            history=base.history,
            prefix=[],
            target=base.target,
            history_key=base.history_key,
        )
        with pytest.raises(ValueError, match="non-empty"):
            trained_tspnra.predict_batch([base, empty])
        gru = make_baseline("GRU", len(dataset.city.pois), locations, dim=16, rng=spawn(14))
        gru.eval()
        with pytest.raises(ValueError, match="non-empty"):
            gru.predict_batch([base, empty])

    def test_gru_score_batch_matches_score(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("GRU", len(dataset.city.pois), locations, dim=16, rng=spawn(13))
        model.eval()
        batch = splits.test[:6]
        from repro.autograd import no_grad

        with no_grad():
            batched = model.score_batch(batch)
            per_sample = np.stack([model.score(s).data for s in batch])
        np.testing.assert_allclose(batched, per_sample, rtol=0, atol=1e-12)

    @pytest.mark.slow
    def test_large_batch_matches_per_sample(self, tiny, trained_tspnra):
        """Acceptance: >= 64 samples, identical ranked lists."""
        _, splits, _ = tiny
        model = trained_tspnra
        model.eval()
        batch = (splits.train + splits.test)[:80]
        assert len(batch) >= 64
        shared = model.compute_embeddings()
        per_sample = [model.predict(s, *shared) for s in batch]
        batched = model.predict_batch(batch, *shared)
        assert [r.ranked_pois for r in batched] == [r.ranked_pois for r in per_sample]
        assert [r.ranked_tiles for r in batched] == [r.ranked_tiles for r in per_sample]

    def test_evaluator_unchanged_by_batching(self, tiny, trained_tspnra):
        """collect_ranks (now batched) equals the explicit per-sample loop."""
        _, splits, _ = tiny
        model = trained_tspnra
        model.eval()
        test = splits.test[:15]
        shared = model.compute_embeddings()
        expected = [model.predict(s, *shared).poi_rank for s in test]
        assert collect_ranks(model, test) == expected


class TestEvaluatorModeRestore:
    def test_restores_training_mode(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        trained_tspnra.train()
        collect_ranks(trained_tspnra, splits.test[:3])
        assert trained_tspnra.training is True

    def test_restores_eval_mode(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        trained_tspnra.eval()
        collect_ranks(trained_tspnra, splits.test[:3])
        assert trained_tspnra.training is False


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_unbounded_and_counters(self):
        cache = LRUCache()
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 100
        assert cache.get(5) == 5
        assert cache.get("missing") is None
        assert cache.hits == 1 and cache.misses == 1
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestServeCLI:
    def test_predict_from_checkpoint(self, tiny, tmp_path, capsys):
        from repro.cli import main

        dataset, splits, locations = tiny
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        path = save_checkpoint(mc, tmp_path / "mc.npz", dataset=dataset)
        assert main(["predict", "--checkpoint", str(path), "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "served 3 requests" in out
        assert out.count("top-5") == 3

    def test_predict_requires_preset_or_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["predict"]) == 2
