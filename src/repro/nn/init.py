"""Parameter initialisers (Glorot/He/uniform/normal) with explicit RNGs.

Draws always come from the generator in float64 (so a seed produces
the same stream regardless of engine configuration) and are cast to
the engine default dtype on the way out — under a float32 default the
whole parameter set is float32 end-to-end.
"""

from __future__ import annotations

import numpy as np

from ..autograd.dtype import get_default_dtype


def _to_default(array: np.ndarray) -> np.ndarray:
    dtype = get_default_dtype()
    return array if array.dtype == dtype else array.astype(dtype)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform init; fan computed from the first two dims."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _to_default(rng.uniform(-bound, bound, size=shape))


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform init, appropriate before ReLU nonlinearities."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return _to_default(rng.uniform(-bound, bound, size=shape))


def normal(shape, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    return _to_default(rng.normal(0.0, std, size=shape))


def uniform(shape, rng: np.random.Generator, bound: float = 0.05) -> np.ndarray:
    return _to_default(rng.uniform(-bound, bound, size=shape))


def _fans(shape) -> tuple:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # conv weight (out, in, k, k): receptive field multiplies the fans
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
