"""Tests for TSPN-RA components: encoders, embedders, HGAT, fusion, loss."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.core import (
    FusionModule,
    HGATEncoder,
    POIEmbedder,
    SpatialEncoder,
    TSPNRAConfig,
    TemporalEncoder,
    arcface_loss,
    combined_loss,
    cosine_scores,
    rank_by_cosine,
    rank_of_target,
    spatial_encoding,
)
from repro.core.tile_embedding import ImageTileEmbedder, TableTileEmbedder
from repro.data.trajectory import Trajectory, Visit
from repro.geo import BoundingBox
from repro.graphs import build_qrp_graph
from repro.imagery import ImageryCatalog, LandUseMap, TileRenderer
from repro.spatial import RegionQuadTree
from repro.utils import spawn


class TestConfig:
    def test_defaults_valid(self):
        TSPNRAConfig()

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            TSPNRAConfig(dim=30, num_heads=4)

    def test_dim_mod_four(self):
        with pytest.raises(ValueError):
            TSPNRAConfig(dim=34, num_heads=2)

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            TSPNRAConfig(alpha=1.0)

    def test_variant(self):
        cfg = TSPNRAConfig()
        v = cfg.variant(use_graph=False)
        assert not v.use_graph and cfg.use_graph

    def test_bad_edge_type(self):
        with pytest.raises(ValueError):
            TSPNRAConfig(drop_edge_type="river")


class TestSpatialEncoding:
    def test_shape(self):
        out = spatial_encoding(np.random.rand(7, 2), dim=32)
        assert out.shape == (7, 32)

    def test_deterministic(self):
        locs = np.array([[0.3, 0.7]])
        assert np.array_equal(spatial_encoding(locs, 32), spatial_encoding(locs, 32))

    def test_nearby_more_similar_than_far(self):
        """The Fig. 8 property: cosine similarity decays with distance."""
        anchor = spatial_encoding(np.array([[0.5, 0.5]]), 64)[0]
        near = spatial_encoding(np.array([[0.52, 0.5]]), 64)[0]
        far = spatial_encoding(np.array([[0.9, 0.1]]), 64)[0]

        def cos(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

        assert cos(anchor, near) > cos(anchor, far)

    def test_x_and_y_occupy_separate_halves(self):
        a = spatial_encoding(np.array([[0.2, 0.5]]), 32)[0]
        b = spatial_encoding(np.array([[0.8, 0.5]]), 32)[0]
        assert not np.allclose(a[:16], b[:16])  # x changed -> first half changes
        assert np.allclose(a[16:], b[16:])  # y same -> second half unchanged

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            spatial_encoding(np.zeros((1, 2)), dim=30)

    def test_module_adds_code(self):
        enc = SpatialEncoder(dim=32)
        x = Tensor(np.zeros((3, 32)), requires_grad=True)
        out = enc(x, np.random.rand(3, 2))
        assert out.shape == (3, 32)
        assert not np.allclose(out.data, 0.0)


class TestTemporalEncoder:
    def test_learnable_slots(self):
        enc = TemporalEncoder(dim=16, rng=spawn(0))
        x = Tensor(np.zeros((2, 16)))
        out = enc(x, [9.4, 21.0])
        assert out.shape == (2, 16)
        # same slot -> same code
        out2 = enc(Tensor(np.zeros((1, 16))), [9.3])
        assert np.allclose(out.data[0], out2.data[0])

    def test_grad_reaches_table(self):
        enc = TemporalEncoder(dim=16, rng=spawn(1))
        out = enc(Tensor(np.zeros((2, 16)), requires_grad=True), [1.0, 13.0])
        out.sum().backward()
        assert enc.slots.weight.grad is not None


class TestPOIEmbedder:
    def test_alpha_blend(self):
        cats = np.array([0, 0, 1])
        emb = POIEmbedder(3, 2, cats, dim=8, alpha=0.7, rng=spawn(0))
        out = emb(np.array([0, 1, 2]))
        expected = 0.7 * emb.id_table.weight.data[0] + 0.3 * emb.cate_table.weight.data[0]
        assert np.allclose(out.data[0], expected)

    def test_same_category_shares_component(self):
        cats = np.array([0, 0])
        emb = POIEmbedder(2, 1, cats, dim=8, alpha=0.5, rng=spawn(1))
        out = emb(np.array([0, 1])).data
        # difference must equal the id-embedding difference (category cancels)
        id_diff = 0.5 * (emb.id_table.weight.data[0] - emb.id_table.weight.data[1])
        assert np.allclose(out[0] - out[1], id_diff)

    def test_no_category_mode(self):
        cats = np.array([0, 1])
        emb = POIEmbedder(2, 2, cats, dim=8, use_category=False, rng=spawn(2))
        out = emb(np.array([0]))
        assert np.allclose(out.data[0], emb.id_table.weight.data[0])

    def test_category_length_validation(self):
        with pytest.raises(ValueError):
            POIEmbedder(3, 2, np.array([0]), dim=8)


def _image_embedder(dim=16, resolution=16):
    box = BoundingBox(0, 0, 10, 10)
    points = np.random.default_rng(0).uniform(0.5, 9.5, (40, 2))
    tree = RegionQuadTree.build(box, points, max_depth=3, max_pois=10)
    renderer = TileRenderer(LandUseMap(bbox=box), resolution=resolution)
    catalog = ImageryCatalog(renderer).bind(tree)
    return ImageTileEmbedder(catalog, len(tree), dim, rng=spawn(3)), tree


class TestTileEmbedders:
    def test_image_embedder_shapes(self):
        emb, tree = _image_embedder()
        out = emb.all_embeddings()
        assert out.shape == (len(tree), 16)
        assert np.allclose(np.linalg.norm(out.data, axis=1), 1.0)

    def test_embeddings_spread_after_centering(self):
        emb, tree = _image_embedder()
        out = emb.all_embeddings().data
        cos = out @ out.T
        off = cos[~np.eye(len(out), dtype=bool)]
        assert abs(off.mean()) < 0.3  # no positive-cone collapse

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            _image_embedder(resolution=12)

    def test_table_embedder(self):
        emb = TableTileEmbedder(10, 8, rng=spawn(4))
        out = emb.all_embeddings()
        assert out.shape == (10, 8)
        assert np.allclose(np.linalg.norm(out.data, axis=1), 1.0)

    def test_grad_flows_through_cnn(self):
        emb, tree = _image_embedder()
        emb.all_embeddings().sum().backward()
        assert emb.conv1.weight.grad is not None
        assert emb.project.weight.grad is not None


class TestHGAT:
    def _graph(self):
        box = BoundingBox(0, 0, 10, 10)
        rng = np.random.default_rng(1)
        points = rng.uniform(0.5, 9.5, (60, 2))
        tree = RegionQuadTree.build(box, points, max_depth=4, max_pois=10)
        leaves = tree.leaves()
        adjacency = {(min(a, b), max(a, b)) for a, b in zip(leaves, leaves[1:])}
        history = [Trajectory(1, [Visit(p, float(p)) for p in range(10)])]
        return build_qrp_graph(tree, adjacency, history)

    def test_output_shape(self):
        qrp = self._graph()
        enc = HGATEncoder(dim=8, num_layers=2, rng=spawn(5))
        h0 = Tensor(np.random.default_rng(2).normal(size=(qrp.graph.num_nodes, 8)))
        out = enc(qrp, h0)
        assert out.shape == (qrp.graph.num_nodes, 8)

    def test_grad_flows(self):
        qrp = self._graph()
        enc = HGATEncoder(dim=8, num_layers=1, rng=spawn(6))
        h0 = Tensor(np.random.default_rng(3).normal(size=(qrp.graph.num_nodes, 8)), requires_grad=True)
        enc(qrp, h0).sum().backward()
        assert h0.grad is not None and np.abs(h0.grad).sum() > 0

    def test_messages_respect_graph(self):
        """An isolated node's output must not depend on others' features."""
        from repro.graphs import HeteroGraph, QRPGraph

        g = HeteroGraph()
        g.add_node("tile", 0)
        g.add_node("tile", 1)
        g.add_node("tile", 2)
        g.add_edge("road", 0, 1)  # node 2 isolated
        qrp = QRPGraph(g, [0, 1, 2], [0, 1, 2], [], [], {0, 1})
        enc = HGATEncoder(dim=8, num_layers=1, rng=spawn(7))
        base = np.random.default_rng(4).normal(size=(3, 8))
        changed = base.copy()
        changed[0] += 10.0
        out_a = enc(qrp, Tensor(base)).data[2]
        out_b = enc(qrp, Tensor(changed)).data[2]
        assert np.allclose(out_a, out_b)


class TestFusion:
    def test_output_is_vector(self):
        fusion = FusionModule(dim=16, num_heads=2, num_layers=2, rng=spawn(8))
        fusion.eval()
        seq = Tensor(np.random.default_rng(5).normal(size=(6, 16)))
        hist = Tensor(np.random.default_rng(6).normal(size=(9, 16)))
        assert fusion(seq, hist).shape == (16,)

    def test_handles_no_history(self):
        fusion = FusionModule(dim=16, num_heads=2, num_layers=1, rng=spawn(9))
        fusion.eval()
        seq = Tensor(np.random.default_rng(7).normal(size=(4, 16)))
        assert fusion(seq, None).shape == (16,)

    def test_causality(self):
        """Perturbing the middle of the sequence must not change... the
        output *does* depend on all positions (we read the last), but
        perturbing positions after the last is impossible; instead check
        that a single-element sequence works."""
        fusion = FusionModule(dim=16, num_heads=2, num_layers=1, rng=spawn(10))
        fusion.eval()
        seq = Tensor(np.random.default_rng(8).normal(size=(1, 16)))
        assert fusion(seq, None).shape == (16,)


class TestLosses:
    def _setup(self):
        rng = np.random.default_rng(9)
        out = Tensor(rng.normal(size=8), requires_grad=True)
        cands = Tensor(rng.normal(size=(5, 8)), requires_grad=True)
        return out, cands

    def test_cosine_scores_bounds(self):
        out, cands = self._setup()
        scores = cosine_scores(out, cands).data
        assert np.all(scores <= 1.0 + 1e-9) and np.all(scores >= -1.0 - 1e-9)

    def test_loss_positive(self):
        out, cands = self._setup()
        loss = arcface_loss(out, cands, 2)
        assert loss.item() > 0

    def test_perfect_alignment_lower_loss(self):
        rng = np.random.default_rng(10)
        cands = Tensor(rng.normal(size=(5, 8)))
        aligned = Tensor(cands.data[2].copy(), requires_grad=True)
        anti = Tensor(-cands.data[2], requires_grad=True)
        assert arcface_loss(aligned, cands, 2).item() < arcface_loss(anti, cands, 2).item()

    def test_margin_increases_loss(self):
        out, cands = self._setup()
        no_margin = arcface_loss(out, cands, 1, margin=0.0).item()
        with_margin = arcface_loss(out, cands, 1, margin=0.4).item()
        assert with_margin > no_margin

    def test_target_index_validation(self):
        out, cands = self._setup()
        with pytest.raises(IndexError):
            arcface_loss(out, cands, 7)

    def test_gradient_pulls_toward_target(self):
        """One gradient step should raise the target's cosine score."""
        rng = np.random.default_rng(11)
        out = Tensor(rng.normal(size=8), requires_grad=True)
        cands = Tensor(rng.normal(size=(5, 8)))
        before = cosine_scores(out, cands).data[3]
        loss = arcface_loss(out, cands, 3)
        loss.backward()
        out2 = Tensor(out.data - 0.1 * out.grad)
        after = cosine_scores(out2, cands).data[3]
        assert after > before

    def test_combined_loss_weighting(self):
        a, b = Tensor(np.array(2.0)), Tensor(np.array(3.0))
        assert combined_loss(a, b, beta=2.0).item() == pytest.approx(7.0)


class TestRanking:
    def test_rank_by_cosine_orders(self):
        out = np.array([1.0, 0.0])
        cands = np.array([[0.0, 1.0], [1.0, 0.1], [-1.0, 0.0]])
        order = rank_by_cosine(out, cands)
        assert order[0] == 1 and order[-1] == 2

    def test_rank_of_target(self):
        assert rank_of_target([7, 3, 9], 3) == 2
        assert rank_of_target([7, 3, 9], 42) == 4  # |R| + 1
